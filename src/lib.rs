//! `ropuf` — a reproduction of *"Key-recovery Attacks on Various RO PUF
//! Constructions via Helper Data Manipulation"* (Delvaux & Verbauwhede,
//! DATE 2014).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`numeric`] — bit vectors, linear algebra, 2-D polynomial regression,
//!   statistics, permutation coding;
//! * [`sim`] — the RO array simulator (process variation, temperature,
//!   noise);
//! * [`ecc`] — BCH / Hamming / repetition codes and the code-offset sketch;
//! * [`hash`] — SHA-256 and HMAC-SHA256;
//! * [`constructions`] — every helper-data construction the paper attacks,
//!   plus the fuzzy-extractor reference and the black-box [`Device`];
//! * [`attacks`] — the paper's four helper-data-manipulation attacks.
//!
//! # Quickstart
//!
//! ```
//! use ropuf::attacks::lisa::LisaAttack;
//! use ropuf::attacks::Oracle;
//! use ropuf::constructions::pairing::lisa::{LisaConfig, LisaScheme};
//! use ropuf::constructions::Device;
//! use ropuf::sim::{ArrayDims, RoArrayBuilder};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
//! let config = LisaConfig::default();
//! let mut device = Device::provision(array, Box::new(LisaScheme::new(config)), 1)?;
//! let truth = device.enrolled_key().clone();
//!
//! let mut oracle = Oracle::new(&mut device);
//! let report = LisaAttack::new(config).run(&mut oracle, &mut rng)?;
//! assert_eq!(report.recovered_key, truth); // full key recovery
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ropuf_attacks as attacks;
pub use ropuf_constructions as constructions;
pub use ropuf_ecc as ecc;
pub use ropuf_hash as hash;
pub use ropuf_numeric as numeric;
pub use ropuf_sim as sim;

pub use ropuf_constructions::{Device, DeviceResponse};
