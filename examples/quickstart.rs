//! Quickstart: enroll a group-based RO PUF and a fuzzy extractor on the
//! same simulated die, reconstruct the key across temperatures, and show
//! the helper-data sizes involved.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use ropuf::constructions::fuzzy::{FuzzyConfig, FuzzyExtractorScheme};
use ropuf::constructions::group::{GroupBasedConfig, GroupBasedScheme};
use ropuf::constructions::HelperDataScheme;
use ropuf::sim::{ArrayDims, Environment, RoArrayBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    // The paper's experiments use a 16×32 RO array; we keep 8×16 for a
    // quick run.
    let dims = ArrayDims::new(16, 8);
    let array = RoArrayBuilder::new(dims).build(&mut rng);
    println!(
        "manufactured a {dims} RO array ({} oscillators)",
        dims.len()
    );

    // --- Group-based RO PUF (DATE 2013, the paper's Fig. 4 pipeline) ---
    let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
    let enrollment = scheme.enroll(&array, &mut rng)?;
    println!(
        "[group-based] key: {} bits, helper data: {} bytes",
        enrollment.key.len(),
        enrollment.helper.len()
    );
    for t in [0.0, 25.0, 50.0] {
        let key = scheme.reconstruct(
            &array,
            &enrollment.helper,
            Environment::at_temperature(t),
            &mut rng,
        )?;
        println!(
            "[group-based] reconstruction at {t:>4} °C: {}",
            if key == enrollment.key {
                "exact"
            } else {
                "MISMATCH"
            }
        );
    }

    // --- Fuzzy extractor (the paper's recommended reference, Fig. 7) ---
    let fuzzy = FuzzyExtractorScheme::new(FuzzyConfig {
        robust: true,
        ..FuzzyConfig::default()
    });
    let fe = fuzzy.enroll(&array, &mut rng)?;
    println!(
        "[fuzzy]       key: {} bits (hashed), helper data: {} bytes",
        fe.key.len(),
        fe.helper.len()
    );
    let key = fuzzy.reconstruct(
        &array,
        &fe.helper,
        Environment::at_temperature(40.0),
        &mut rng,
    )?;
    println!(
        "[fuzzy]       reconstruction at   40 °C: {}",
        if key == fe.key { "exact" } else { "MISMATCH" }
    );
    Ok(())
}
