//! Paper Section VII-A / Fig. 7: the robust fuzzy extractor defeats
//! helper-data manipulation — every manipulated blob is rejected before a
//! key is released, so the failure-rate side channel carries no
//! hypothesis-dependent signal.
//!
//! Run with: `cargo run --release --example fuzzy_extractor_defense`

use rand::SeedableRng;
use ropuf::constructions::fuzzy::{FuzzyConfig, FuzzyExtractorScheme, FuzzyHelper};
use ropuf::constructions::{Device, HelperDataScheme};
use ropuf::sim::{ArrayDims, Environment, RoArrayBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);

    // Plain extractor: parity flips are silently corrected — the error
    // injection surface the Section VI attacks rely on.
    let plain = FuzzyExtractorScheme::new(FuzzyConfig::default());
    let e = plain.enroll(&array, &mut rng)?;
    let mut tampered = FuzzyHelper::from_bytes(&e.helper)?;
    tampered.parity.flip(0);
    let outcome = plain.reconstruct(
        &array,
        &tampered.to_bytes(),
        Environment::nominal(),
        &mut rng,
    );
    println!(
        "[plain ] one flipped parity bit: {}",
        match outcome {
            Ok(k) if k == e.key => "accepted and silently corrected (exploitable)",
            Ok(_) => "accepted with a different key",
            Err(ref err) => return Err(format!("unexpected: {err}").into()),
        }
    );

    // Robust extractor: the same manipulation is detected.
    let robust = FuzzyExtractorScheme::new(FuzzyConfig {
        robust: true,
        ..FuzzyConfig::default()
    });
    let mut device = Device::provision(array, Box::new(robust), 5)?;
    let genuine = device.helper().to_vec();
    let ok = device.respond(b"nonce", Environment::nominal());
    println!(
        "[robust] genuine helper data: {}",
        if ok.is_failure() {
            "failure"
        } else {
            "tag emitted"
        }
    );

    let mut tampered = FuzzyHelper::from_bytes(&genuine)?;
    tampered.parity.flip(0);
    device.write_helper(tampered.to_bytes());
    let r = device.respond(b"nonce", Environment::nominal());
    println!(
        "[robust] one flipped parity bit: {}",
        if r.is_failure() {
            "REJECTED (manipulation detected)"
        } else {
            "accepted?!"
        }
    );
    println!(
        "==> manipulation yields a constant reject: no differential failure-rate signal remains"
    );
    Ok(())
}
