//! Paper Section VI-C / Fig. 6a: full key recovery on the group-based RO
//! PUF by injecting steep polynomials into the entropy distiller and
//! repartitioning the groups.
//!
//! Run with: `cargo run --release --example attack_group_based`

use rand::SeedableRng;
use ropuf::attacks::group_based::GroupBasedAttack;
use ropuf::attacks::Oracle;
use ropuf::constructions::group::{GroupBasedConfig, GroupBasedScheme};
use ropuf::constructions::Device;
use ropuf::sim::{ArrayDims, RoArrayBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    // The paper's Fig. 6a illustrates a 4×10 array.
    let array = RoArrayBuilder::new(ArrayDims::new(10, 4)).build(&mut rng);
    let config = GroupBasedConfig::default();
    let mut device = Device::provision(array, Box::new(GroupBasedScheme::new(config)), 11)?;
    let truth = device.enrolled_key().clone();
    println!("device enrolled; key has {} bits (secret)", truth.len());

    let mut oracle = Oracle::new(&mut device);
    let report = GroupBasedAttack::new(config).run(&mut oracle, &mut rng)?;
    println!(
        "attack recovered {} Kendall bits with {} oracle queries",
        report.bits_recovered, report.queries
    );
    println!("recovered key: {}", report.recovered_key);
    println!("actual key:    {truth}");
    println!(
        "==> {}",
        if report.recovered_key == truth {
            "FULL KEY RECOVERED"
        } else {
            "recovery failed"
        }
    );
    Ok(())
}
