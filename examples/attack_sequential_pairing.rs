//! Paper Section VI-A: full key recovery on the sequential pairing
//! algorithm (LISA) by swapping pair positions in public helper NVM.
//!
//! Run with: `cargo run --release --example attack_sequential_pairing`

use rand::SeedableRng;
use ropuf::attacks::lisa::LisaAttack;
use ropuf::attacks::Oracle;
use ropuf::constructions::pairing::lisa::{LisaConfig, LisaScheme};
use ropuf::constructions::Device;
use ropuf::sim::{ArrayDims, RoArrayBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let config = LisaConfig::default();
    let mut device = Device::provision(array, Box::new(LisaScheme::new(config)), 7)?;
    let truth = device.enrolled_key().clone();
    println!("device enrolled; key has {} bits (secret)", truth.len());

    let mut oracle = Oracle::new(&mut device);
    let report = LisaAttack::new(config).run(&mut oracle, &mut rng)?;
    println!("attack finished after {} oracle queries", report.queries);
    println!("recovered key: {}", report.recovered_key);
    println!("actual key:    {truth}");
    println!(
        "==> {}",
        if report.recovered_key == truth {
            "FULL KEY RECOVERED"
        } else {
            "recovery failed"
        }
    );
    Ok(())
}
