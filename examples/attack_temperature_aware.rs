//! Paper Section VI-B: recovering the response-bit relations of all
//! cooperating pairs of a temperature-aware cooperative RO PUF by
//! substituting assist links and manipulating the crossover bounds.
//!
//! Run with: `cargo run --release --example attack_temperature_aware`

use rand::SeedableRng;
use ropuf::attacks::cooperative::CooperativeAttack;
use ropuf::attacks::Oracle;
use ropuf::constructions::cooperative::{CooperativeConfig, CooperativeScheme};
use ropuf::constructions::Device;
use ropuf::sim::{ArrayDims, RoArrayBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CooperativeConfig::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let mut device = Device::provision(array, Box::new(CooperativeScheme::new(config)), 21)?;
    println!(
        "device enrolled; key has {} bits (secret)",
        device.enrolled_key().len()
    );

    let mut oracle = Oracle::new(&mut device);
    let report = CooperativeAttack::new(config).run(&mut oracle, &mut rng)?;
    println!(
        "attack related {} cooperating pairs after {} queries (anchor: pair {})",
        report.coop_pairs.len(),
        report.queries,
        report.anchor_pair
    );
    for (i, &pair) in report.coop_pairs.iter().enumerate() {
        match report.relative_bits[i] {
            Some(rel) => println!(
                "  pair {pair:>3}: r = r_anchor {}",
                if rel {
                    "⊕ 1 (differs)"
                } else {
                    "    (equal)"
                }
            ),
            None => println!("  pair {pair:>3}: unresolved"),
        }
    }
    println!("==> every resolved pair leaks one bit relative to the anchor (partial key recovery, as in the paper)");
    Ok(())
}
