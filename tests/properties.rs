//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use ropuf::ecc::{BchCode, BinaryCode, BlockCode, CodeOffset};
use ropuf::numeric::permutation::{compact_code_bits, factorial};
use ropuf::numeric::{BitVec, Permutation};

proptest! {
    #[test]
    fn bitvec_xor_is_involutive(bits in proptest::collection::vec(any::<bool>(), 1..256),
                                mask in proptest::collection::vec(any::<bool>(), 1..256)) {
        let n = bits.len().min(mask.len());
        let a = BitVec::from_bools(bits[..n].iter().copied());
        let m = BitVec::from_bools(mask[..n].iter().copied());
        prop_assert_eq!(a.xor(&m).xor(&m), a);
    }

    #[test]
    fn bitvec_byte_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let bytes = v.to_bytes();
        prop_assert_eq!(BitVec::from_bytes(&bytes, v.len()), v);
    }

    #[test]
    fn permutation_rank_roundtrip(n in 1usize..9, seed in any::<u64>()) {
        let rank = seed % factorial(n);
        let p = Permutation::from_lehmer_rank(rank, n);
        prop_assert_eq!(p.lehmer_rank(), rank);
        prop_assert!(p.lehmer_rank() < (1u64 << compact_code_bits(n).max(1)));
    }

    #[test]
    fn kendall_roundtrip(n in 2usize..8, seed in any::<u64>()) {
        let rank = seed % factorial(n);
        let p = Permutation::from_lehmer_rank(rank, n);
        let bits = p.kendall_bits();
        prop_assert_eq!(Permutation::from_kendall_bits(&bits), Some(p));
    }

    #[test]
    fn bch_corrects_any_t_error_pattern(msg_seed in any::<u64>(),
                                        positions in proptest::collection::btree_set(0usize..15, 0..=2)) {
        let code = BchCode::new(4, 2).unwrap();
        let msg = BitVec::from_bools((0..code.k()).map(|i| (msg_seed >> (i % 64)) & 1 == 1));
        let mut w = code.encode(&msg);
        for &p in &positions {
            w.flip(p);
        }
        let d = code.decode(&w).unwrap();
        prop_assert_eq!(d.message, msg);
        prop_assert_eq!(d.corrected, positions.len());
    }

    #[test]
    fn code_offset_recovers_within_t(resp_seed in any::<u64>(),
                                     flips in proptest::collection::btree_set(0usize..31, 0..=3),
                                     rng_seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let code = BlockCode::new(BchCode::new(5, 3).unwrap(), 16);
        let sketch = CodeOffset::new(code);
        let w = BitVec::from_bools((0..31).map(|i| (resp_seed >> (i % 64)) & 1 == 1));
        let helper = sketch.sketch(&w, &mut rng);
        let mut noisy = w.clone();
        for &f in &flips {
            noisy.flip(f);
        }
        prop_assert_eq!(sketch.recover(&noisy, &helper).unwrap(), w);
    }

    #[test]
    fn grouping_invariant_holds(values in proptest::collection::vec(-1.0e6..1.0e6f64, 4..128),
                                th in 1.0e3..5.0e5f64) {
        use ropuf::constructions::group::group_ros;
        let g = group_ros(&values, th);
        prop_assert!(g.is_valid(&values, th));
        let total: usize = g.groups.iter().map(|m| m.len()).sum();
        prop_assert_eq!(total, values.len());
    }

    #[test]
    fn lisa_pairs_disjoint_and_above_threshold(values in proptest::collection::vec(190.0e6..210.0e6f64, 8..96),
                                               th in 1.0e3..2.0e6f64) {
        use ropuf::constructions::pairing::lisa::LisaScheme;
        let pairs = LisaScheme::sequential_pairing(&values, th);
        let mut used = std::collections::HashSet::new();
        for (a, b) in pairs {
            prop_assert!(values[a] - values[b] > th);
            prop_assert!(used.insert(a));
            prop_assert!(used.insert(b));
        }
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..300),
                                         split in 0usize..300) {
        use ropuf::hash::{sha256, Sha256};
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }
}
