//! Cross-crate integration tests: every construction enrolls and
//! reconstructs against the simulator, across temperatures and noise, and
//! rejects malformed helper data gracefully.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf::constructions::cooperative::{CooperativeConfig, CooperativeScheme};
use ropuf::constructions::fuzzy::{FuzzyConfig, FuzzyExtractorScheme};
use ropuf::constructions::group::{GroupBasedConfig, GroupBasedScheme};
use ropuf::constructions::pairing::distilled::{
    DistilledConfig, DistilledPairingScheme, PairSource,
};
use ropuf::constructions::pairing::lisa::{LisaConfig, LisaScheme};
use ropuf::constructions::{HelperDataScheme, ReconstructError};
use ropuf::sim::{ArrayDims, Environment, RoArray, RoArrayBuilder, VariationProfile};

fn array(seed: u64) -> RoArray {
    let mut rng = StdRng::seed_from_u64(seed);
    RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng)
}

fn schemes() -> Vec<Box<dyn HelperDataScheme>> {
    vec![
        Box::new(LisaScheme::new(LisaConfig::default())),
        Box::new(GroupBasedScheme::new(GroupBasedConfig::default())),
        Box::new(CooperativeScheme::new(CooperativeConfig::default())),
        Box::new(DistilledPairingScheme::new(DistilledConfig::default())),
        Box::new(DistilledPairingScheme::new(DistilledConfig {
            source: PairSource::OverlappingChain,
            ..DistilledConfig::default()
        })),
        Box::new(DistilledPairingScheme::new(DistilledConfig {
            source: PairSource::OneOutOfK { k: 5 },
            ..DistilledConfig::default()
        })),
        Box::new(FuzzyExtractorScheme::new(FuzzyConfig::default())),
        Box::new(FuzzyExtractorScheme::new(FuzzyConfig {
            robust: true,
            ..FuzzyConfig::default()
        })),
    ]
}

#[test]
fn every_scheme_roundtrips_at_nominal_conditions() {
    let a = array(1);
    let mut rng = StdRng::seed_from_u64(2);
    for scheme in schemes() {
        let e = scheme
            .enroll(&a, &mut rng)
            .unwrap_or_else(|err| panic!("{}: {err}", scheme.name()));
        for trial in 0..5 {
            let k = scheme
                .reconstruct(&a, &e.helper, Environment::nominal(), &mut rng)
                .unwrap_or_else(|err| panic!("{} trial {trial}: {err}", scheme.name()));
            assert_eq!(k, e.key, "{} trial {trial}", scheme.name());
        }
    }
}

#[test]
fn every_scheme_survives_moderate_temperature_shift() {
    let a = array(3);
    let mut rng = StdRng::seed_from_u64(4);
    for scheme in schemes() {
        let e = scheme.enroll(&a, &mut rng).unwrap();
        let k = scheme
            .reconstruct(&a, &e.helper, Environment::at_temperature(35.0), &mut rng)
            .unwrap_or_else(|err| panic!("{}: {err}", scheme.name()));
        assert_eq!(k, e.key, "{}", scheme.name());
    }
}

#[test]
fn truncated_helper_data_never_panics() {
    let a = array(5);
    let mut rng = StdRng::seed_from_u64(6);
    for scheme in schemes() {
        let e = scheme.enroll(&a, &mut rng).unwrap();
        for cut in 0..e.helper.len().min(40) {
            let r = scheme.reconstruct(&a, &e.helper[..cut], Environment::nominal(), &mut rng);
            assert!(
                matches!(r, Err(ReconstructError::Helper(_))),
                "{} cut {cut}: {r:?}",
                scheme.name()
            );
        }
    }
}

#[test]
fn cross_scheme_helper_rejected() {
    // Helper data from one scheme must never be accepted by another
    // (scheme tag in the wire format).
    let a = array(7);
    let mut rng = StdRng::seed_from_u64(8);
    let all = schemes();
    let enrollments: Vec<_> = all
        .iter()
        .map(|s| s.enroll(&a, &mut rng).unwrap())
        .collect();
    for (i, scheme) in all.iter().enumerate() {
        for (j, e) in enrollments.iter().enumerate() {
            // Same tag family (plain/robust fuzzy) shares the format.
            let same_family = scheme.name() == all[j].name();
            if i == j || same_family {
                continue;
            }
            let r = scheme.reconstruct(&a, &e.helper, Environment::nominal(), &mut rng);
            assert!(
                r.is_err(),
                "{} accepted helper of {}",
                scheme.name(),
                all[j].name()
            );
        }
    }
}

#[test]
fn higher_noise_degrades_into_ecc_failure_not_panic() {
    let mut rng = StdRng::seed_from_u64(9);
    let noisy = RoArrayBuilder::new(ArrayDims::new(16, 8))
        .profile(VariationProfile::default())
        .noise_sigma_hz(400e3) // extreme noise ≈ variation scale
        .build(&mut rng);
    let scheme = LisaScheme::new(LisaConfig::default());
    let e = match scheme.enroll(&noisy, &mut rng) {
        Ok(e) => e,
        Err(_) => return, // enrollment may legitimately fail at this noise
    };
    let mut failures = 0;
    for _ in 0..20 {
        match scheme.reconstruct(&noisy, &e.helper, Environment::nominal(), &mut rng) {
            Ok(_) => {}
            Err(ReconstructError::EccFailure) => failures += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }
    assert!(
        failures > 0,
        "extreme noise should produce observable failures"
    );
}

#[test]
fn distinct_devices_produce_distinct_keys() {
    let mut rng = StdRng::seed_from_u64(10);
    let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
    let e1 = scheme.enroll(&array(100), &mut rng).unwrap();
    let e2 = scheme.enroll(&array(200), &mut rng).unwrap();
    // Keys may differ in length; if equal length they must differ in
    // content with overwhelming probability.
    if e1.key.len() == e2.key.len() {
        assert_ne!(e1.key, e2.key);
    }
}
