//! Integration tests: each paper attack runs end-to-end against a
//! black-box device and is defeated by the robust fuzzy extractor.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf::attacks::distiller_pairing::DistillerPairingAttack;
use ropuf::attacks::group_based::GroupBasedAttack;
use ropuf::attacks::lisa::LisaAttack;
use ropuf::attacks::Oracle;
use ropuf::constructions::fuzzy::{FuzzyConfig, FuzzyExtractorScheme, FuzzyHelper};
use ropuf::constructions::group::{GroupBasedConfig, GroupBasedScheme};
use ropuf::constructions::pairing::distilled::{
    DistilledConfig, DistilledPairingScheme, PairSource,
};
use ropuf::constructions::pairing::lisa::{LisaConfig, LisaScheme};
use ropuf::constructions::Device;
use ropuf::sim::{ArrayDims, Environment, RoArrayBuilder};

#[test]
fn lisa_attack_recovers_key_through_facade() {
    let mut rng = StdRng::seed_from_u64(11);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let config = LisaConfig::default();
    let mut device = Device::provision(array, Box::new(LisaScheme::new(config)), 12).unwrap();
    let truth = device.enrolled_key().clone();
    let mut oracle = Oracle::new(&mut device);
    let report = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
    assert_eq!(report.recovered_key, truth);
}

#[test]
fn group_based_attack_recovers_key_through_facade() {
    let mut rng = StdRng::seed_from_u64(13);
    let array = RoArrayBuilder::new(ArrayDims::new(10, 4)).build(&mut rng);
    let config = GroupBasedConfig::default();
    let mut device = Device::provision(array, Box::new(GroupBasedScheme::new(config)), 14).unwrap();
    let truth = device.enrolled_key().clone();
    let mut oracle = Oracle::new(&mut device);
    let report = GroupBasedAttack::new(config)
        .run(&mut oracle, &mut rng)
        .unwrap();
    assert_eq!(report.recovered_key, truth);
}

#[test]
fn masking_attack_recovers_key_through_facade() {
    let mut rng = StdRng::seed_from_u64(15);
    let array = RoArrayBuilder::new(ArrayDims::new(10, 4)).build(&mut rng);
    let config = DistilledConfig {
        source: PairSource::OneOutOfK { k: 5 },
        ..DistilledConfig::default()
    };
    let mut device =
        Device::provision(array, Box::new(DistilledPairingScheme::new(config)), 16).unwrap();
    let truth = device.enrolled_key().clone();
    let mut oracle = Oracle::new(&mut device);
    let report = DistillerPairingAttack::new(config)
        .run(&mut oracle, &mut rng)
        .unwrap();
    assert_eq!(report.recovered_key, truth);
}

#[test]
fn robust_fuzzy_extractor_defeats_parity_injection() {
    // Replay the attacks' error-injection primitive against the robust
    // extractor: every manipulated helper is rejected identically, so the
    // failure rate carries no hypothesis-dependent information.
    let mut rng = StdRng::seed_from_u64(17);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let scheme = FuzzyExtractorScheme::new(FuzzyConfig {
        robust: true,
        ..FuzzyConfig::default()
    });
    let mut device = Device::provision(array, Box::new(scheme), 18).unwrap();
    let genuine = device.helper().to_vec();
    let reference = device.respond(b"n", Environment::nominal());
    assert!(!reference.is_failure());

    let parsed = FuzzyHelper::from_bytes(&genuine).unwrap();
    // Every single-bit parity manipulation is rejected — constant signal.
    let mut rejected = 0;
    let total = parsed.parity.len().min(16);
    for i in 0..total {
        let mut tampered = parsed.clone();
        tampered.parity.flip(i);
        device.write_helper(tampered.to_bytes());
        if device.respond(b"n", Environment::nominal()).is_failure() {
            rejected += 1;
        }
    }
    assert_eq!(rejected, total, "all manipulations must be detected");
}

#[test]
fn attack_query_budgets_are_reported() {
    let mut rng = StdRng::seed_from_u64(19);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    let config = LisaConfig::default();
    let mut device = Device::provision(array, Box::new(LisaScheme::new(config)), 20).unwrap();
    let mut oracle = Oracle::new(&mut device);
    let report = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
    assert_eq!(report.queries, oracle.queries());
    assert!(report.queries > 0);
}
