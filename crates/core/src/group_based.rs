//! Full key recovery on group-based RO PUFs (paper Section VI-C,
//! Fig. 6a).
//!
//! The attacker rewrites all three helper fields: a steep quadratic is
//! superimposed onto the original distiller coefficients, the groups are
//! repartitioned into two-RO groups whose order the pattern forces, and
//! fresh ECC redundancy is computed per hypothesis. One group — the
//! target pair, chosen inside an *original* group — is left symmetric
//! under the pattern, so its single bit is decided by the genuine random
//! variation: exactly one original Kendall bit. Iterating the target over
//! all in-group pairs recovers every original Kendall bit, hence the full
//! key.

use rand::RngCore;
use ropuf_constructions::ecc_helper::ParityHelper;
use ropuf_constructions::group::packing::pack_order;
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedHelper};
use ropuf_numeric::{BitVec, Permutation};
use ropuf_sim::Environment;

use crate::framework::{inject_parity_errors, Hypothesis, HypothesisTester};
use crate::injection::{forced_pairs, pattern_values, ridge_for_pair, superimpose};
use crate::lisa::AttackError;
use crate::oracle::Oracle;

/// Result of the group-based key-recovery attack.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBasedReport {
    /// The recovered key (matches the device's enrolled key on success).
    pub recovered_key: BitVec,
    /// Number of original Kendall bits recovered.
    pub bits_recovered: usize,
    /// Oracle queries spent.
    pub queries: u64,
}

/// The Section VI-C attack.
#[derive(Debug, Clone)]
pub struct GroupBasedAttack {
    config: GroupBasedConfig,
    trials: usize,
    /// Ridge steepness in Hz per squared grid unit.
    scale: f64,
    /// Orthogonal tilt in Hz per grid unit.
    tilt: f64,
    /// Minimum pattern gap for a comparison to count as forced, in Hz.
    margin: f64,
}

impl GroupBasedAttack {
    /// Creates the attack against a device with the given public
    /// configuration. The injection magnitudes default to values that
    /// overshadow the default variability profile by more than an order
    /// of magnitude.
    pub fn new(config: GroupBasedConfig) -> Self {
        Self {
            config,
            trials: 3,
            scale: 50.0e6,
            tilt: 8.0e6,
            margin: 10.0e6,
        }
    }

    /// Overrides the per-hypothesis query count.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Recovers one original Kendall bit: the comparison of the original
    /// residuals of ROs `u < v` (1 iff `v` is faster).
    fn recover_comparison(
        &self,
        oracle: &mut Oracle<'_>,
        original: &GroupBasedHelper,
        dims: ropuf_sim::ArrayDims,
        u: usize,
        v: usize,
    ) -> Result<bool, AttackError> {
        let pattern = ridge_for_pair(dims, u, v, self.scale, self.tilt);
        let poly = superimpose(&original.poly(), &pattern);
        let values = pattern_values(dims, &pattern);
        let (pairs, singles) = forced_pairs(dims, &values, &[u, v], self.margin);

        // Repartition: group 0 = target {u, v}; then one group per forced
        // pair; then singletons.
        let mut assignments = vec![0u16; dims.len()];
        let mut next = 1u16;
        for &(a, b) in &pairs {
            assignments[a] = next;
            assignments[b] = next;
            next += 1;
        }
        for &s in &singles {
            assignments[s] = next;
            next += 1;
        }
        // Forced Kendall bit of a pair group {a, b}: with residual' ≈
        // −pattern dominant, the canonical bit (min, max) is 1 iff
        // pattern(max) < pattern(min).
        let forced_bit = |a: usize, b: usize| -> bool {
            let (lo, hi) = (a.min(b), a.max(b));
            values[hi] < values[lo]
        };
        // Kendall vector layout: groups ascending id, only ≥2-member
        // groups contribute. Group 0 (target) is bit 0.
        let mut template = BitVec::new();
        template.push(false); // placeholder for the target bit
        for &(a, b) in &pairs {
            template.push(forced_bit(a, b));
        }
        let ecc = ParityHelper::new(template.len(), self.config.ecc_t)
            .map_err(AttackError::UnexpectedHelper)?;

        let hypotheses: Vec<Hypothesis> = (0..2u8)
            .map(|hyp| {
                let mut reference = template.clone();
                reference.set(0, hyp == 1);
                let mut parity = ecc.parity(&reference);
                inject_parity_errors(
                    &mut parity,
                    ecc.block_of_bit(0),
                    ecc.parity_per_block(),
                    ecc.t(),
                );
                let helper = GroupBasedHelper {
                    cols: original.cols,
                    rows: original.rows,
                    degree: poly.degree() as u8,
                    coefficients: poly.coefficients().to_vec(),
                    assignments: assignments.clone(),
                    parity,
                };
                // Under the correct hypothesis the device reconstructs
                // exactly `reference` (packed two-RO groups reproduce the
                // Kendall bits), so the expected tag is attacker-computable.
                Hypothesis {
                    label: hyp as u64,
                    helper: helper.to_bytes(),
                    expected: Some(oracle.expected_response(&reference)),
                }
            })
            .collect();
        // Adaptive tournament: the losing hypothesis is cut as soon as it
        // exceeds the winner's failure count. The `reference` argument is
        // never consulted because both hypotheses carry explicit
        // expectations, so any of them serves as the placeholder.
        let placeholder = hypotheses[0]
            .expected
            .clone()
            .expect("hypotheses carry explicit expectations");
        let outcome = HypothesisTester::new(self.trials).run_adaptive(
            oracle,
            &hypotheses,
            Environment::nominal(),
            &placeholder,
        );
        Ok(outcome.winner == 1)
    }

    /// Runs the attack to full key recovery.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when the device's helper data is not a
    /// group-based blob or carries no multi-member groups.
    pub fn run(
        &self,
        oracle: &mut Oracle<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<GroupBasedReport, AttackError> {
        let original = GroupBasedHelper::from_bytes(oracle.original_helper())
            .map_err(|e| AttackError::UnexpectedHelper(e.to_string()))?;
        let dims = ropuf_sim::ArrayDims::new(original.cols as usize, original.rows as usize);
        let grouping = original.grouping();
        if grouping.groups.iter().all(|g| g.len() < 2) {
            return Err(AttackError::InsufficientTargets { got: 0 });
        }

        // Recover every original Kendall bit, group by group.
        let mut bits_recovered = 0usize;
        let mut key = BitVec::new();
        for members in &grouping.groups {
            let mut canon = members.clone();
            canon.sort_unstable();
            let g = canon.len();
            if g < 2 {
                continue;
            }
            let mut group_bits = Vec::with_capacity(g * (g - 1) / 2);
            for a in 0..g {
                for b in a + 1..g {
                    let bit =
                        self.recover_comparison(oracle, &original, dims, canon[a], canon[b])?;
                    group_bits.push(bit);
                    bits_recovered += 1;
                }
            }
            // Rebuild this group's contribution to the key.
            let order = Permutation::from_kendall_bits(&group_bits)
                .unwrap_or_else(|| Permutation::nearest_from_kendall_bits(&group_bits));
            if self.config.packing {
                key.extend_bits(&pack_order(&order));
            } else {
                key.extend(order.kendall_bits());
            }
        }
        oracle.restore();
        Ok(GroupBasedReport {
            recovered_key: key,
            bits_recovered,
            queries: oracle.queries(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::group::GroupBasedScheme;
    use ropuf_constructions::Device;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn provision(seed: u64, config: GroupBasedConfig) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        // The paper's Fig. 6a uses a 4×10 array.
        let array = RoArrayBuilder::new(ArrayDims::new(10, 4)).build(&mut rng);
        Device::provision(
            array,
            Box::new(GroupBasedScheme::new(config)),
            seed ^ 0xBEEF,
        )
        .unwrap()
    }

    #[test]
    fn recovers_full_key_fig6a() {
        let config = GroupBasedConfig::default();
        let mut device = provision(1, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(2);
        let report = GroupBasedAttack::new(config)
            .run(&mut oracle, &mut rng)
            .unwrap();
        assert_eq!(report.recovered_key, truth);
        assert!(report.bits_recovered > 0);
    }

    #[test]
    fn recovers_key_without_packing() {
        let config = GroupBasedConfig {
            packing: false,
            ..GroupBasedConfig::default()
        };
        let mut device = provision(3, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(4);
        let report = GroupBasedAttack::new(config)
            .run(&mut oracle, &mut rng)
            .unwrap();
        assert_eq!(report.recovered_key, truth);
    }

    #[test]
    fn recovers_across_devices() {
        let config = GroupBasedConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 10..13u64 {
            let mut device = provision(seed, config);
            let truth = device.enrolled_key().clone();
            let mut oracle = Oracle::new(&mut device);
            let report = GroupBasedAttack::new(config)
                .run(&mut oracle, &mut rng)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(report.recovered_key, truth, "seed {seed}");
        }
    }

    #[test]
    fn rejects_foreign_helper() {
        let config = GroupBasedConfig::default();
        let mut device = provision(20, config);
        device.write_helper(vec![9u8; 12]);
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(21);
        assert!(matches!(
            GroupBasedAttack::new(config).run(&mut oracle, &mut rng),
            Err(AttackError::UnexpectedHelper(_))
        ));
    }
}
