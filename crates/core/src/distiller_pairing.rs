//! Attacks on entropy distillers combined with RO pairing (paper
//! Section VI-D, Figs. 6b and 6c).
//!
//! Same pattern-injection methodology as the group-based attack, applied
//! to the two pairing front-ends the paper illustrates:
//!
//! * **1-out-of-k masking** (Fig. 6b): the attacker also rewrites the
//!   per-group selections so every non-target group compares a pair the
//!   pattern forces; the target group keeps its original selection, whose
//!   comparison the symmetric pattern leaves to the genuine variation.
//! * **overlapping chain of neighbors** (Fig. 6c): the pair set is fixed,
//!   so several comparisons around the pattern extremum stay undetermined
//!   — "by increasing the number of hypotheses (2⁴), one can still
//!   perform the attack". Unknown bits recovered earlier are reused to
//!   keep the hypothesis space small.

use rand::RngCore;
use ropuf_constructions::ecc_helper::ParityHelper;
use ropuf_constructions::pairing::distilled::{DistilledConfig, DistilledHelper, PairSource};
use ropuf_constructions::pairing::neighbor::{
    disjoint_chain_pairs, overlapping_chain_pairs, RoPair,
};
use ropuf_numeric::polyfit::Poly2d;
use ropuf_numeric::BitVec;
use ropuf_sim::{ArrayDims, Environment};

use crate::framework::inject_parity_errors;
use crate::injection::{pattern_values, ridge_for_pair, superimpose};
use crate::lisa::AttackError;
use crate::oracle::Oracle;

/// Result of a distiller+pairing key-recovery attack.
#[derive(Debug, Clone, PartialEq)]
pub struct DistillerPairingReport {
    /// The recovered key (the response bits of the original pair list).
    pub recovered_key: BitVec,
    /// Oracle queries spent.
    pub queries: u64,
    /// Largest hypothesis set enumerated for a single target.
    pub max_hypotheses: usize,
}

/// The Section VI-D attack.
#[derive(Debug, Clone)]
pub struct DistillerPairingAttack {
    config: DistilledConfig,
    trials: usize,
    scale: f64,
    tilt: f64,
    margin: f64,
    /// Cap on jointly enumerated unknown bits.
    max_unknowns: usize,
}

impl DistillerPairingAttack {
    /// Creates the attack against a device with the given public
    /// configuration.
    pub fn new(config: DistilledConfig) -> Self {
        Self {
            config,
            trials: 3,
            scale: 50.0e6,
            tilt: 15.0e6,
            margin: 10.0e6,
            max_unknowns: 8,
        }
    }

    /// Overrides the per-hypothesis query count.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Runs the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] on foreign helper data, an unexpected pair
    /// source, or a hypothesis space larger than the configured cap.
    pub fn run(
        &self,
        oracle: &mut Oracle<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<DistillerPairingReport, AttackError> {
        let original = DistilledHelper::from_bytes(oracle.original_helper())
            .map_err(|e| AttackError::UnexpectedHelper(e.to_string()))?;
        let dims = ArrayDims::new(original.cols as usize, original.rows as usize);
        let orig_poly =
            Poly2d::from_coefficients(original.degree as usize, original.coefficients.clone())
                .map_err(|e| AttackError::UnexpectedHelper(e.to_string()))?;

        match self.config.source {
            PairSource::OneOutOfK { k } => {
                self.attack_masking(oracle, &original, dims, &orig_poly, k)
            }
            PairSource::OverlappingChain | PairSource::DisjointChain => {
                self.attack_chain(oracle, &original, dims, &orig_poly)
            }
        }
    }

    /// Fig. 6b: distiller + 1-out-of-k masking.
    fn attack_masking(
        &self,
        oracle: &mut Oracle<'_>,
        original: &DistilledHelper,
        dims: ArrayDims,
        orig_poly: &Poly2d,
        k: usize,
    ) -> Result<DistillerPairingReport, AttackError> {
        let base = disjoint_chain_pairs(dims);
        let groups: Vec<&[RoPair]> = base.chunks_exact(k).collect();
        if original.selections.len() != groups.len() {
            return Err(AttackError::UnexpectedHelper(
                "selection count mismatch".into(),
            ));
        }
        let orig_sel: Vec<usize> = original.selections.iter().map(|&s| s as usize).collect();
        let mut key = BitVec::new();
        let mut max_hyp = 1usize;
        for target_group in 0..groups.len() {
            let (tu, tv) = groups[target_group][orig_sel[target_group]];
            let pattern = ridge_for_pair(dims, tu, tv, self.scale, self.tilt);
            let poly = superimpose(orig_poly, &pattern);
            let values = pattern_values(dims, &pattern);
            // Selections: target keeps its original pair; other groups
            // pick the pair the pattern forces hardest.
            let mut selections = Vec::with_capacity(groups.len());
            let mut bits = BitVec::new();
            let mut unknowns = vec![target_group];
            for (gi, group) in groups.iter().enumerate() {
                if gi == target_group {
                    selections.push(orig_sel[gi] as u16);
                    bits.push(false); // placeholder (unknown)
                    continue;
                }
                let (best, &(a, b)) = group
                    .iter()
                    .enumerate()
                    .max_by(|&(_, &(a1, b1)), &(_, &(a2, b2))| {
                        let d1 = (values[a1] - values[b1]).abs();
                        let d2 = (values[a2] - values[b2]).abs();
                        d1.partial_cmp(&d2).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("k ≥ 1");
                selections.push(best as u16);
                if (values[a] - values[b]).abs() >= self.margin {
                    // residual' ≈ −pattern: first wins iff its pattern is
                    // smaller.
                    bits.push(values[a] < values[b]);
                } else {
                    bits.push(false);
                    unknowns.push(gi);
                }
            }
            max_hyp = max_hyp.max(1 << unknowns.len());
            let bit = self.solve(
                oracle,
                &bits,
                &unknowns,
                target_group,
                |_reference, parity| {
                    DistilledHelper {
                        cols: original.cols,
                        rows: original.rows,
                        degree: poly.degree() as u8,
                        coefficients: poly.coefficients().to_vec(),
                        selections: selections.clone(),
                        parity,
                    }
                    .to_bytes()
                },
            )?;
            key.push(bit);
        }
        oracle.restore();
        Ok(DistillerPairingReport {
            recovered_key: key,
            queries: oracle.queries(),
            max_hypotheses: max_hyp,
        })
    }

    /// Fig. 6c: distiller + (overlapping or disjoint) neighbor chain.
    fn attack_chain(
        &self,
        oracle: &mut Oracle<'_>,
        original: &DistilledHelper,
        dims: ArrayDims,
        orig_poly: &Poly2d,
    ) -> Result<DistillerPairingReport, AttackError> {
        let pairs = match self.config.source {
            PairSource::OverlappingChain => overlapping_chain_pairs(dims),
            PairSource::DisjointChain => disjoint_chain_pairs(dims),
            PairSource::OneOutOfK { .. } => unreachable!("dispatched in run()"),
        };
        let mut known: Vec<Option<bool>> = vec![None; pairs.len()];
        let mut max_hyp = 1usize;
        for target in 0..pairs.len() {
            if known[target].is_some() {
                continue;
            }
            let (tu, tv) = pairs[target];
            let pattern = ridge_for_pair(dims, tu, tv, self.scale, self.tilt);
            let poly = superimpose(orig_poly, &pattern);
            let values = pattern_values(dims, &pattern);
            // Forced pairs take the pattern-dictated bit; every pair the
            // pattern leaves partially undetermined (|ΔP| < margin) is a
            // nuisance unknown — its device-side bit mixes pattern and
            // genuine variation, so it can be neither predicted nor
            // reused, only enumerated. Exactly the target (ΔP = 0)
            // reveals a *genuine* comparison.
            let mut bits = BitVec::new();
            let mut unknowns = Vec::new();
            for (pi, &(a, b)) in pairs.iter().enumerate() {
                if pi != target && (values[a] - values[b]).abs() >= self.margin {
                    bits.push(values[a] < values[b]);
                } else {
                    bits.push(false);
                    unknowns.push(pi);
                }
            }
            max_hyp = max_hyp.max(1 << unknowns.len());
            if unknowns.len() > self.max_unknowns {
                return Err(AttackError::UnexpectedHelper(format!(
                    "hypothesis space 2^{} exceeds cap",
                    unknowns.len()
                )));
            }
            let build = |_reference: &BitVec, parity: BitVec| {
                DistilledHelper {
                    cols: original.cols,
                    rows: original.rows,
                    degree: poly.degree() as u8,
                    coefficients: poly.coefficients().to_vec(),
                    selections: Vec::new(),
                    parity,
                }
                .to_bytes()
            };
            let winning = self.solve_multi(oracle, &bits, &unknowns, build)?;
            // Refinement: chain pairs carry no reliability margin, so a
            // marginal target comparison flips under noise. With the
            // nuisance bits settled, re-test the target alone with a
            // larger majority vote.
            let refined = self.clone().with_trials(self.trials * 3).solve(
                oracle,
                &winning,
                &[target],
                target,
                build,
            )?;
            known[target] = Some(refined);
        }
        oracle.restore();
        let key = BitVec::from_bools(known.into_iter().map(|b| b.expect("all targets visited")));
        Ok(DistillerPairingReport {
            recovered_key: key,
            queries: oracle.queries(),
            max_hypotheses: max_hyp,
        })
    }

    /// Solves for a single target bit (possibly with nuisance unknowns)
    /// and returns the target's value.
    fn solve(
        &self,
        oracle: &mut Oracle<'_>,
        bits: &BitVec,
        unknowns: &[usize],
        target: usize,
        build: impl Fn(&BitVec, BitVec) -> Vec<u8>,
    ) -> Result<bool, AttackError> {
        let winning = self.solve_multi(oracle, bits, unknowns, build)?;
        Ok(winning.get(target))
    }

    /// Enumerates all assignments of the unknown bits, injects `t` parity
    /// errors into every block containing an unknown, and returns the
    /// assignment with the fewest failures.
    fn solve_multi(
        &self,
        oracle: &mut Oracle<'_>,
        bits: &BitVec,
        unknowns: &[usize],
        build: impl Fn(&BitVec, BitVec) -> Vec<u8>,
    ) -> Result<BitVec, AttackError> {
        if unknowns.len() > self.max_unknowns {
            return Err(AttackError::UnexpectedHelper(format!(
                "hypothesis space 2^{} exceeds cap",
                unknowns.len()
            )));
        }
        let ecc = ParityHelper::new(bits.len(), self.config.ecc_t)
            .map_err(AttackError::UnexpectedHelper)?;
        let mut blocks: Vec<usize> = unknowns.iter().map(|&u| ecc.block_of_bit(u)).collect();
        blocks.sort_unstable();
        blocks.dedup();

        let mut best: Option<(u64, BitVec)> = None;
        for assignment in 0u64..(1 << unknowns.len()) {
            let mut reference = bits.clone();
            for (bi, &pos) in unknowns.iter().enumerate() {
                reference.set(pos, (assignment >> bi) & 1 == 1);
            }
            let mut parity = ecc.parity(&reference);
            for &b in &blocks {
                inject_parity_errors(&mut parity, b, ecc.parity_per_block(), ecc.t());
            }
            let helper = build(&reference, parity);
            let expected = oracle.expected_response(&reference);
            let failures =
                oracle.failure_count(&helper, Environment::nominal(), &expected, self.trials);
            if best.as_ref().is_none_or(|(f, _)| failures < *f) {
                best = Some((failures, reference));
            }
            // Early exit: a perfect hypothesis cannot be beaten.
            if best.as_ref().is_some_and(|(f, _)| *f == 0) {
                break;
            }
        }
        best.map(|(_, r)| r).ok_or(AttackError::Ambiguous)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::pairing::distilled::DistilledPairingScheme;
    use ropuf_constructions::Device;
    use ropuf_sim::RoArrayBuilder;

    fn provision(seed: u64, config: DistilledConfig) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(10, 4)).build(&mut rng);
        Device::provision(
            array,
            Box::new(DistilledPairingScheme::new(config)),
            seed ^ 0xCAFE,
        )
        .unwrap()
    }

    #[test]
    fn fig6b_masking_key_recovery() {
        let config = DistilledConfig {
            source: PairSource::OneOutOfK { k: 5 },
            ..DistilledConfig::default()
        };
        let mut device = provision(1, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(2);
        let report = DistillerPairingAttack::new(config)
            .run(&mut oracle, &mut rng)
            .unwrap();
        assert_eq!(report.recovered_key, truth);
    }

    #[test]
    fn fig6c_overlapping_chain_key_recovery() {
        let config = DistilledConfig {
            source: PairSource::OverlappingChain,
            ..DistilledConfig::default()
        };
        let mut device = provision(3, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(4);
        let report = DistillerPairingAttack::new(config)
            .run(&mut oracle, &mut rng)
            .unwrap();
        assert_eq!(report.recovered_key, truth);
        // The paper's observation: several bits stay undetermined at once.
        assert!(report.max_hypotheses >= 2, "{}", report.max_hypotheses);
    }

    #[test]
    fn disjoint_chain_key_recovery() {
        let config = DistilledConfig {
            source: PairSource::DisjointChain,
            ..DistilledConfig::default()
        };
        let mut device = provision(5, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(6);
        let report = DistillerPairingAttack::new(config)
            .run(&mut oracle, &mut rng)
            .unwrap();
        assert_eq!(report.recovered_key, truth);
    }

    #[test]
    fn rejects_foreign_helper() {
        let config = DistilledConfig::default();
        let mut device = provision(7, config);
        device.write_helper(vec![1u8; 6]);
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(matches!(
            DistillerPairingAttack::new(config).run(&mut oracle, &mut rng),
            Err(AttackError::UnexpectedHelper(_))
        ));
    }
}
