//! The attacker's interface to a device.
//!
//! An [`Oracle`] wraps a [`Device`] and restricts the attacker to the
//! paper's capabilities: read the original helper data once, write
//! arbitrary helper bytes, query the application at a chosen operating
//! point, and observe the response. It also counts queries, the attack's
//! cost metric.

use ropuf_constructions::{Device, DeviceResponse};
use ropuf_sim::Environment;

/// One failure-rate probe in a batch: a helper blob plus the response
/// that counts as *success* for it.
///
/// Probes are the unit of the batched oracle API
/// ([`Oracle::probe_failures`]): the helper bytes are written to device
/// NVM **once** per probe and then queried repeatedly, instead of being
/// re-encoded and rewritten on every trial as the scalar
/// [`Oracle::query`] path does.
#[derive(Debug, Clone, Copy)]
pub struct Probe<'a> {
    /// Manipulated helper bytes to install for this probe.
    pub helper: &'a [u8],
    /// The response that counts as success (anything else is a failure).
    pub expected: &'a DeviceResponse,
}

/// Defender-side observer of oracle traffic.
///
/// The paper's §VII countermeasure discussion assumes the defender sees
/// exactly what the attacker sends: the helper bytes presented for a
/// query and the key-dependent response that came back. A monitor
/// attached to an [`Oracle`] receives every query through
/// [`TrafficMonitor::observe`] and answers whether *this* query tripped
/// an online attack detector; the oracle records the first flagged
/// query index ([`Oracle::first_flagged`]) so closed-loop campaigns can
/// report time-to-detection next to attack success.
///
/// Monitoring is strictly passive: responses are never altered, so
/// attack trajectories (and campaign determinism) are unchanged.
pub trait TrafficMonitor: std::fmt::Debug {
    /// Observes one query (the helper installed for it and the response
    /// it produced); returns `true` when the detector flags it.
    fn observe(&mut self, helper: &[u8], response: &DeviceResponse) -> bool;

    /// Human-readable reason for the monitor's (first) flag, once
    /// flagged.
    fn flag_reason(&self) -> Option<String> {
        None
    }
}

/// Attacker-side device handle.
///
/// The fixed nonce means the application output is deterministic given
/// the reconstructed key, so "behavior changed" reduces to "tag changed".
#[derive(Debug)]
pub struct Oracle<'a> {
    device: &'a mut Device,
    original_helper: Vec<u8>,
    nonce: Vec<u8>,
    queries: u64,
    monitor: Option<Box<dyn TrafficMonitor + 'a>>,
    first_flagged: Option<u64>,
}

impl<'a> Oracle<'a> {
    /// Captures the device, reading (and keeping a copy of) its helper
    /// NVM.
    pub fn new(device: &'a mut Device) -> Self {
        let original_helper = device.helper().to_vec();
        Self {
            device,
            original_helper,
            nonce: b"attack-nonce".to_vec(),
            queries: 0,
            monitor: None,
            first_flagged: None,
        }
    }

    /// Attaches a defender-side [`TrafficMonitor`] that observes every
    /// subsequent query. Replaces any previously attached monitor (and
    /// resets the recorded first flag).
    pub fn attach_monitor(&mut self, monitor: Box<dyn TrafficMonitor + 'a>) {
        self.monitor = Some(monitor);
        self.first_flagged = None;
    }

    /// The attached monitor, for post-run inspection.
    pub fn monitor(&self) -> Option<&(dyn TrafficMonitor + 'a)> {
        self.monitor.as_deref()
    }

    /// 1-based index of the first query the attached monitor flagged
    /// (`None`: never flagged, or no monitor attached).
    pub fn first_flagged(&self) -> Option<u64> {
        self.first_flagged
    }

    /// The helper bytes as found on the device.
    pub fn original_helper(&self) -> &[u8] {
        &self.original_helper
    }

    /// Total queries issued through this oracle.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Writes helper bytes and performs one application query. The NVM
    /// write reuses the device's helper buffer, so a query loop does
    /// not allocate per query.
    pub fn query(&mut self, helper: &[u8], env: Environment) -> DeviceResponse {
        self.device.set_helper(helper);
        self.respond_monitored(helper, env)
    }

    /// One counted device query with the helper already installed,
    /// passed through the attached monitor (if any).
    fn respond_monitored(&mut self, helper: &[u8], env: Environment) -> DeviceResponse {
        self.queries += 1;
        let response = self.device.respond(&self.nonce, env);
        if let Some(monitor) = self.monitor.as_mut() {
            if monitor.observe(helper, &response) && self.first_flagged.is_none() {
                self.first_flagged = Some(self.queries);
            }
        }
        response
    }

    /// Queries with the *original* helper data (e.g. to capture the
    /// nominal reference tag).
    pub fn query_original(&mut self, env: Environment) -> DeviceResponse {
        // Borrow dance instead of a clone: the original helper is only
        // parked while the query runs.
        let helper = std::mem::take(&mut self.original_helper);
        let response = self.query(&helper, env);
        self.original_helper = helper;
        response
    }

    /// Restores the original helper data on the device (covering tracks).
    pub fn restore(&mut self) {
        self.device.set_helper(&self.original_helper);
    }

    /// The response the device *would* give if it reconstructed exactly
    /// `key` — computable attacker-side because the application function
    /// (HMAC over the public nonce) is known. Used by attacks that
    /// reprogram the key and predict the resulting behavior (paper
    /// Sections VI-C/D and the LISA candidate resolution).
    pub fn expected_response(&self, key: &ropuf_numeric::BitVec) -> DeviceResponse {
        DeviceResponse::Tag(ropuf_hash::hmac_sha256(&key.to_bytes(), &self.nonce))
    }

    /// Counts failures among `trials` queries of the same helper, where
    /// "failure" means the response differs from `expected`.
    ///
    /// Equivalent to a one-probe [`Oracle::probe_failures`] call: the
    /// helper is written once and queried `trials` times.
    pub fn failure_count(
        &mut self,
        helper: &[u8],
        env: Environment,
        expected: &DeviceResponse,
        trials: usize,
    ) -> u64 {
        self.run_probe(helper, env, expected, trials, None)
    }

    /// Batched failure-rate estimation: for every probe, writes its
    /// helper to device NVM once and issues `trials` queries, returning
    /// the per-probe failure counts.
    ///
    /// This is the hot path of every statistical attack (paper Section
    /// VI, Fig. 5). Compared to looping over [`Oracle::query`], the
    /// helper rewrite — an allocation plus NVM store — is amortized
    /// across the probe's trials; the responses themselves are
    /// unchanged, since key reconstruction re-samples PUF noise on each
    /// query regardless.
    pub fn probe_failures(
        &mut self,
        probes: &[Probe<'_>],
        env: Environment,
        trials: usize,
    ) -> Vec<u64> {
        probes
            .iter()
            .map(|p| self.run_probe(p.helper, env, p.expected, trials, None))
            .collect()
    }

    /// Like [`Oracle::probe_failures`], but abandons a probe as soon as
    /// its failure count *exceeds* `cap`.
    ///
    /// Majority-vote decisions at threshold `cap` are unaffected (the
    /// comparison `failures > cap` is already decided), while hopeless
    /// hypotheses stop burning queries. Returned counts are therefore
    /// exact up to `cap + 1` and saturate there.
    pub fn probe_failures_capped(
        &mut self,
        probes: &[Probe<'_>],
        env: Environment,
        trials: usize,
        cap: u64,
    ) -> Vec<u64> {
        probes
            .iter()
            .map(|p| self.run_probe(p.helper, env, p.expected, trials, Some(cap)))
            .collect()
    }

    fn run_probe(
        &mut self,
        helper: &[u8],
        env: Environment,
        expected: &DeviceResponse,
        trials: usize,
        cap: Option<u64>,
    ) -> u64 {
        self.device.set_helper(helper);
        let mut failures = 0u64;
        for _ in 0..trials {
            if &self.respond_monitored(helper, env) != expected {
                failures += 1;
                if cap.is_some_and(|c| failures > c) {
                    break;
                }
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn device(seed: u64) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        Device::provision(
            array,
            Box::new(LisaScheme::new(LisaConfig::default())),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn query_counting_and_reference() {
        let mut d = device(1);
        let mut o = Oracle::new(&mut d);
        let r1 = o.query_original(Environment::nominal());
        let r2 = o.query_original(Environment::nominal());
        assert_eq!(r1, r2);
        assert_eq!(o.queries(), 2);
    }

    #[test]
    fn failure_count_zero_for_genuine_helper() {
        let mut d = device(2);
        let mut o = Oracle::new(&mut d);
        let expected = o.query_original(Environment::nominal());
        let helper = o.original_helper().to_vec();
        let f = o.failure_count(&helper, Environment::nominal(), &expected, 10);
        assert_eq!(f, 0);
    }

    #[test]
    fn failure_count_full_for_garbage() {
        let mut d = device(3);
        let mut o = Oracle::new(&mut d);
        let expected = o.query_original(Environment::nominal());
        let f = o.failure_count(&[1, 2, 3], Environment::nominal(), &expected, 5);
        assert_eq!(f, 5);
    }

    #[test]
    fn batched_probes_match_scalar_counts() {
        let mut d = device(5);
        let mut o = Oracle::new(&mut d);
        let expected = o.query_original(Environment::nominal());
        let good = o.original_helper().to_vec();
        let garbage = vec![9u8; 16];
        let probes = [
            Probe {
                helper: &good,
                expected: &expected,
            },
            Probe {
                helper: &garbage,
                expected: &expected,
            },
        ];
        let failures = o.probe_failures(&probes, Environment::nominal(), 6);
        assert_eq!(failures, vec![0, 6]);
        assert_eq!(o.queries(), 1 + 12, "1 reference + 2 probes x 6 trials");
    }

    #[test]
    fn capped_probes_saturate_and_save_queries() {
        let mut d = device(6);
        let mut o = Oracle::new(&mut d);
        let expected = o.query_original(Environment::nominal());
        let garbage = vec![7u8; 16];
        let before = o.queries();
        let probes = [Probe {
            helper: &garbage,
            expected: &expected,
        }];
        let failures = o.probe_failures_capped(&probes, Environment::nominal(), 10, 2);
        assert_eq!(failures, vec![3], "count saturates at cap + 1");
        assert_eq!(
            o.queries() - before,
            3,
            "probe abandoned after cap + 1 failures"
        );
    }

    /// Toy monitor: flags every query whose helper differs from the
    /// blob it was born with.
    #[derive(Debug)]
    struct DiffMonitor {
        enrolled: Vec<u8>,
        flags: u64,
    }

    impl TrafficMonitor for DiffMonitor {
        fn observe(&mut self, helper: &[u8], _response: &DeviceResponse) -> bool {
            if helper != self.enrolled {
                self.flags += 1;
                true
            } else {
                false
            }
        }

        fn flag_reason(&self) -> Option<String> {
            (self.flags > 0).then(|| "helper differs".to_string())
        }
    }

    #[test]
    fn monitor_sees_every_query_and_first_flag_is_recorded() {
        let mut d = device(7);
        let mut o = Oracle::new(&mut d);
        let enrolled = o.original_helper().to_vec();
        o.attach_monitor(Box::new(DiffMonitor {
            enrolled: enrolled.clone(),
            flags: 0,
        }));

        let expected = o.query_original(Environment::nominal());
        assert_eq!(o.first_flagged(), None, "genuine helper never flags");

        let garbage = vec![0xEEu8; 12];
        let probes = [Probe {
            helper: &garbage,
            expected: &expected,
        }];
        o.probe_failures(&probes, Environment::nominal(), 3);
        assert_eq!(
            o.first_flagged(),
            Some(2),
            "first manipulated query (after 1 reference query) is flagged"
        );
        assert_eq!(
            o.monitor().unwrap().flag_reason().as_deref(),
            Some("helper differs")
        );

        // The flag index latches at the first offence.
        o.query(&garbage, Environment::nominal());
        assert_eq!(o.first_flagged(), Some(2));
    }

    #[test]
    fn restore_recovers_original_behavior() {
        let mut d = device(4);
        let expected;
        {
            let mut o = Oracle::new(&mut d);
            expected = o.query_original(Environment::nominal());
            o.query(&[0xFF; 8], Environment::nominal());
            o.restore();
        }
        assert_eq!(d.respond(b"attack-nonce", Environment::nominal()), expected);
    }
}
