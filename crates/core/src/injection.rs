//! Attack polynomial construction (paper Section VI-C/D, Fig. 6).
//!
//! "By injecting steep polynomials into the entropy distiller, one can
//! completely overshadow random frequency variations. The attacker's
//! intended pattern can be superimposed onto the original spatial
//! correlation map."
//!
//! The workhorse is a quadratic *ridge*: for a target RO pair `(u, v)`
//! the pattern value is `c·(proj − m)² + ε·orth`, where `proj` projects
//! positions onto the `u → v` direction and `m` is the pair's midpoint
//! projection. The pattern is **symmetric in `u` and `v`** (their values
//! are exactly equal, so their residual comparison is untouched — the
//! "free" bit) and steep everywhere else; the orthogonal tilt `ε·orth`
//! breaks mirror degeneracies for ROs displaced off the `u → v` axis.

use ropuf_numeric::polyfit::{coefficient_count, Poly2d};
use ropuf_sim::ArrayDims;

/// Sum of two polynomials, embedded at the larger degree (the attacker
/// superimposes the steep pattern onto the original coefficients so the
/// genuine systematic component stays cancelled).
///
/// # Panics
///
/// Panics if either polynomial is internally inconsistent (cannot happen
/// for values produced by [`Poly2d::fit`]).
pub fn superimpose(base: &Poly2d, pattern: &Poly2d) -> Poly2d {
    let degree = base.degree().max(pattern.degree());
    let mut coeffs = vec![0.0; coefficient_count(degree)];
    for (poly, _) in [(base, 0), (pattern, 1)] {
        let mut c = 0;
        for i in 0..=poly.degree() {
            for j in 0..=i {
                // Position of β_{i,j} in the target layout.
                let pos = i * (i + 1) / 2 + j;
                coeffs[pos] += poly.coefficients()[c];
                c += 1;
            }
        }
    }
    Poly2d::from_coefficients(degree, coeffs).expect("count matches degree")
}

/// Builds the quadratic ridge pattern for target pair `(u, v)`:
/// `P(x, y) = c·(proj − m)² + ε·orth` with `proj` along `u → v`.
///
/// `scale` is `c` in Hz per squared grid unit; `tilt` is `ε` in Hz per
/// grid unit. `P(u) == P(v)` exactly.
///
/// # Panics
///
/// Panics if `u == v` or either index is out of range.
pub fn ridge_for_pair(dims: ArrayDims, u: usize, v: usize, scale: f64, tilt: f64) -> Poly2d {
    assert_ne!(u, v, "target pair must be two distinct ROs");
    let (ux, uy) = dims.xy(u);
    let (vx, vy) = dims.xy(v);
    let (ux, uy, vx, vy) = (ux as f64, uy as f64, vx as f64, vy as f64);
    let (dx, dy) = (vx - ux, vy - uy);
    let norm = (dx * dx + dy * dy).sqrt();
    let (dx, dy) = (dx / norm, dy / norm);
    // proj(x, y) = dx·x + dy·y ; m = proj(midpoint).
    let m = dx * (ux + vx) / 2.0 + dy * (uy + vy) / 2.0;
    // P = c·(dx·x + dy·y − m)² + ε·(−dy·x + dx·y)
    // expand: c·(dx²x² + dy²y² + m² + 2dxdy·xy − 2mdx·x − 2mdy·y) + …
    let c = scale;
    let coeffs = vec![
        c * m * m,                     // 1
        -2.0 * c * m * dx - tilt * dy, // x
        -2.0 * c * m * dy + tilt * dx, // y
        c * dx * dx,                   // x²
        2.0 * c * dx * dy,             // xy
        c * dy * dy,                   // y²
    ];
    Poly2d::from_coefficients(2, coeffs).expect("six quadratic coefficients")
}

/// Pattern values at every RO position.
pub fn pattern_values(dims: ArrayDims, pattern: &Poly2d) -> Vec<f64> {
    dims.iter_coords()
        .map(|(_, x, y)| pattern.eval(x as f64, y as f64))
        .collect()
}

/// Forced pairing: sorts all ROs except `exclude` by pattern value and
/// pairs the low half against the high half (`L[i]` with `H[i]`), keeping
/// only pairs whose pattern gap reaches `margin` (forced comparisons).
/// Low-vs-high pairing sidesteps the mirror degeneracy of quadratic
/// patterns — ROs at symmetric positions around the extremum share a
/// pattern value and could never be forced against each other.
///
/// Returns `(pairs, singletons)` where each pair is `(lower-value RO,
/// higher-value RO)` in *pattern* terms.
pub fn forced_pairs(
    dims: ArrayDims,
    pattern_values: &[f64],
    exclude: &[usize],
    margin: f64,
) -> (Vec<(usize, usize)>, Vec<usize>) {
    let mut order: Vec<usize> = (0..dims.len()).filter(|i| !exclude.contains(i)).collect();
    order.sort_by(|&a, &b| {
        pattern_values[a]
            .partial_cmp(&pattern_values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = order.len();
    let half = n / 2;
    let mut pairs = Vec::new();
    let mut singletons = Vec::new();
    if n % 2 == 1 {
        singletons.push(order[half]);
    }
    for i in 0..half {
        let lo = order[i];
        let hi = order[i + half + n % 2];
        if pattern_values[hi] - pattern_values[lo] >= margin {
            pairs.push((lo, hi));
        } else {
            singletons.push(lo);
            singletons.push(hi);
        }
    }
    (pairs, singletons)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superimpose_adds_coefficients() {
        let a = Poly2d::from_coefficients(1, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Poly2d::from_coefficients(2, vec![0.5, 0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let s = superimpose(&a, &b);
        assert_eq!(s.degree(), 2);
        assert!((s.eval(2.0, 1.0) - (a.eval(2.0, 1.0) + b.eval(2.0, 1.0))).abs() < 1e-9);
    }

    #[test]
    fn ridge_is_symmetric_in_target_pair() {
        let dims = ArrayDims::new(10, 4);
        for (u, v) in [(0usize, 1usize), (5, 15), (3, 24), (12, 13)] {
            let ridge = ridge_for_pair(dims, u, v, 1e7, 1e6);
            let vals = pattern_values(dims, &ridge);
            assert!(
                (vals[u] - vals[v]).abs() < 1e-3,
                "pair ({u},{v}): {} vs {}",
                vals[u],
                vals[v]
            );
        }
    }

    #[test]
    fn ridge_is_steep_away_from_target() {
        let dims = ArrayDims::new(10, 4);
        let ridge = ridge_for_pair(dims, 4, 5, 1e7, 1e6);
        let vals = pattern_values(dims, &ridge);
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1e8, "spread {spread}");
    }

    #[test]
    fn forced_pairs_respect_margin_and_partition() {
        let dims = ArrayDims::new(10, 4);
        let ridge = ridge_for_pair(dims, 4, 5, 1e7, 1e6);
        let vals = pattern_values(dims, &ridge);
        let margin = 5e6;
        let (pairs, singles) = forced_pairs(dims, &vals, &[4, 5], margin);
        let mut covered = vec![false; dims.len()];
        covered[4] = true;
        covered[5] = true;
        for &(a, b) in &pairs {
            assert!(vals[b] - vals[a] >= margin);
            assert!(!covered[a] && !covered[b]);
            covered[a] = true;
            covered[b] = true;
        }
        for &s in &singles {
            assert!(!covered[s]);
            covered[s] = true;
        }
        assert!(covered.iter().all(|&c| c), "not a partition");
        assert!(
            pairs.len() >= dims.len() / 2 - 6,
            "too few forced pairs: {}",
            pairs.len()
        );
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn identical_target_rejected() {
        ridge_for_pair(ArrayDims::new(4, 4), 3, 3, 1.0, 0.0);
    }
}
