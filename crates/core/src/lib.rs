//! Key-recovery attacks on RO PUF constructions via helper-data
//! manipulation — the primary contribution of the DATE 2014 paper,
//! reproduced end-to-end against black-box [`Device`] oracles.
//!
//! The common statistical framework (paper Section VI, Fig. 5): response
//! bits are considered one by one (or in small groups); two or more
//! hypotheses make a statement about them, each mapped to a specific
//! manipulation of the public helper data; differences in **key
//! regeneration failure rate** reveal the correct hypothesis. Errors are
//! injected "intentionally and symmetrically" — here by flipping stored
//! ECC parity bits, each flip adding exactly one error at the decoder
//! input — to push the error count against the correction bound `t` where
//! a single hypothesis-dependent error becomes observable.
//!
//! | module | attack | paper |
//! |--------|--------|-------|
//! | [`lisa`] | full key recovery on the sequential pairing algorithm by swapping pair positions | VI-A |
//! | [`cooperative`] | recovery of all cooperating-pair bit relations by substituting assist links (plus `Tl`/`Th` manipulation) | VI-B |
//! | [`group_based`] | full key recovery on group-based RO PUFs via steep polynomial injection and group repartitioning | VI-C, Fig. 6a |
//! | [`distiller_pairing`] | key recovery on distiller + 1-out-of-k masking and distiller + neighbor chains (multi-bit hypotheses) | VI-D, Fig. 6b/6c |
//! | [`framework`] | failure-rate hypothesis testing, error injection | VI, Fig. 5 |
//! | [`injection`] | attack polynomial construction (superimposed quadratic ridges) | VI-C/D |
//! | [`relations`] | parity union-find for combining learned bit relations | VI-A |
//! | [`analysis`] | entropy accounting (`log₂ N!`, Fig. 1) | II |
//!
//! # Examples
//!
//! ```no_run
//! use ropuf_attacks::lisa::LisaAttack;
//! use ropuf_attacks::oracle::Oracle;
//! use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};
//! use ropuf_constructions::Device;
//! use ropuf_sim::{ArrayDims, RoArrayBuilder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
//! let config = LisaConfig::default();
//! let mut device = Device::provision(array, Box::new(LisaScheme::new(config)), 2).unwrap();
//! let truth = device.enrolled_key().clone();
//! let mut oracle = Oracle::new(&mut device);
//! let report = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
//! assert_eq!(report.recovered_key, truth);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cooperative;
pub mod distiller_pairing;
pub mod framework;
pub mod group_based;
pub mod injection;
pub mod lisa;
pub mod oracle;
pub mod relations;

pub use oracle::{Oracle, TrafficMonitor};
pub use ropuf_constructions::{Device, DeviceResponse};
