//! Full key recovery on the sequential pairing algorithm (paper
//! Section VI-A).
//!
//! "Key recovery is fairly straightforward for the sequential pairing
//! algorithm." For pairs `p` and `q` the attacker swaps their positions
//! in public helper NVM: if `r_p = r_q` the response vector — and thus
//! the key — is unchanged (H0); if `r_p ≠ r_q` two bit errors appear at
//! the ECC input (H1). To make the two-error difference observable, `t`
//! additional errors are injected into the block holding bit `p` by
//! flipping stored parity bits, so H0 sits exactly at the correction
//! bound and H1 exceeds it.
//!
//! Matching bit 0 against every other bit leaves two key candidates;
//! "the performance of two corresponding sets of ECC helper data can be
//! compared" for the final decision: the attacker writes a fresh parity
//! blob computed for each candidate and the matching one reconstructs
//! without failure.

use rand::RngCore;
use ropuf_constructions::ecc_helper::ParityHelper;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaHelper};
use ropuf_constructions::SanityPolicy;
use ropuf_numeric::BitVec;
use ropuf_sim::Environment;

use crate::framework::inject_parity_errors;
use crate::oracle::{Oracle, Probe};
use crate::relations::ParityUnionFind;

/// Errors the attack itself can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// The device's genuine helper data failed to parse — not a LISA
    /// device or wrong configuration assumption.
    UnexpectedHelper(String),
    /// The device fails even with genuine helper data (no stable
    /// reference behavior to compare against).
    NoReference,
    /// The final candidate resolution was ambiguous (both or neither
    /// candidate behaved consistently).
    Ambiguous,
    /// Too few usable targets to attack.
    InsufficientTargets {
        /// Targets found.
        got: usize,
    },
}

impl std::fmt::Display for AttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackError::UnexpectedHelper(s) => write!(f, "unexpected helper data: {s}"),
            AttackError::NoReference => write!(f, "device has no stable reference behavior"),
            AttackError::Ambiguous => write!(f, "candidate resolution ambiguous"),
            AttackError::InsufficientTargets { got } => {
                write!(f, "too few attackable targets ({got})")
            }
        }
    }
}

impl std::error::Error for AttackError {}

/// Result of a completed LISA attack.
#[derive(Debug, Clone, PartialEq)]
pub struct LisaReport {
    /// The recovered key.
    pub recovered_key: BitVec,
    /// Learned relations `r_0 ⊕ r_m` for `m = 1..P`.
    pub relations: Vec<bool>,
    /// Oracle queries spent.
    pub queries: u64,
}

/// The Section VI-A attack.
#[derive(Debug, Clone)]
pub struct LisaAttack {
    /// The device's (public) scheme parameters.
    config: LisaConfig,
    /// Queries per hypothesis test (majority vote).
    trials: usize,
    /// Abandon a majority vote once it is decided (see
    /// [`LisaAttack::with_early_exit`]).
    early_exit: bool,
}

impl LisaAttack {
    /// Creates the attack against a device with the given public
    /// configuration.
    pub fn new(config: LisaConfig) -> Self {
        Self {
            config,
            trials: 3,
            early_exit: false,
        }
    }

    /// Overrides the per-test query count.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Enables early exit: each majority vote stops as soon as its
    /// outcome is decided (failure count strictly exceeds `trials / 2`),
    /// via [`Oracle::probe_failures_capped`].
    ///
    /// Each vote's decision rule is unchanged — a cut vote had already
    /// crossed the majority threshold — so recovery quality is
    /// unaffected; only the query count drops (wrong-relation hypotheses
    /// settle after `⌊trials/2⌋ + 1` failures instead of `trials`
    /// queries). Off by default so reported query complexities stay
    /// comparable to the paper's `≈ 3(P − 1)` figure.
    pub fn with_early_exit(mut self, on: bool) -> Self {
        self.early_exit = on;
        self
    }

    /// Majority-vote failure count for one helper blob: exhaustive or
    /// capped at decision threshold, depending on configuration.
    fn vote(
        &self,
        oracle: &mut Oracle<'_>,
        helper: &[u8],
        env: Environment,
        expected: &ropuf_constructions::DeviceResponse,
    ) -> u64 {
        let probe = Probe { helper, expected };
        if self.early_exit {
            let cap = (self.trials as u64) / 2;
            oracle.probe_failures_capped(&[probe], env, self.trials, cap)[0]
        } else {
            oracle.probe_failures(&[probe], env, self.trials)[0]
        }
    }

    /// Runs the attack to full key recovery.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when the device is not attackable (wrong
    /// scheme, unstable reference, …). The `rng` parameter is unused by
    /// the decision logic and only kept for interface symmetry with the
    /// randomized attacks.
    pub fn run(
        &self,
        oracle: &mut Oracle<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<LisaReport, AttackError> {
        let env = Environment::nominal();
        let parsed = LisaHelper::from_bytes(oracle.original_helper(), SanityPolicy::Lenient)
            .map_err(|e| AttackError::UnexpectedHelper(e.to_string()))?;
        let p = parsed.pairs.len();
        if p < 2 {
            return Err(AttackError::InsufficientTargets { got: p });
        }
        // Reference behavior with genuine helper data.
        let reference = oracle.query_original(env);
        if reference.is_failure() {
            return Err(AttackError::NoReference);
        }

        let ecc = ParityHelper::new(p, self.config.ecc_t).map_err(AttackError::UnexpectedHelper)?;
        let t = ecc.t();
        let ppb = ecc.parity_per_block();

        // Phase 1: learn r_0 ⊕ r_m for every m.
        let mut uf = ParityUnionFind::new(p);
        let mut relations = Vec::with_capacity(p - 1);
        for m in 1..p {
            let mut manipulated = parsed.clone();
            manipulated.pairs.swap(0, m);
            // Inject t errors into the block of bit 0: H0 → exactly t
            // errors (corrected); H1 → t+1 or t+2 (failure).
            inject_parity_errors(&mut manipulated.parity, ecc.block_of_bit(0), ppb, t);
            let helper = manipulated.to_bytes();
            let failures = self.vote(oracle, &helper, env, &reference);
            let differs = failures * 2 > self.trials as u64;
            relations.push(differs);
            uf.relate(0, m, differs);
        }

        // Phase 2: two candidates; compare two sets of ECC helper data.
        let c0: Vec<bool> = uf
            .candidate(false)
            .into_iter()
            .map(|b| b.expect("all bits related to bit 0"))
            .collect();
        let mut best: Option<(BitVec, u64)> = None;
        let mut ambiguous = false;
        for anchor in [false, true] {
            let key = BitVec::from_bools(c0.iter().map(|&b| b ^ anchor));
            let mut candidate_helper = parsed.clone();
            candidate_helper.parity = ecc.parity(&key);
            let expected = oracle.expected_response(&key);
            let fails = self.vote(oracle, &candidate_helper.to_bytes(), env, &expected);
            let ok = fails * 2 <= self.trials as u64;
            match (&best, ok) {
                (None, true) => best = Some((key, fails)),
                (Some(_), true) => ambiguous = true,
                _ => {}
            }
        }
        oracle.restore();
        if ambiguous {
            return Err(AttackError::Ambiguous);
        }
        let (recovered_key, _) = best.ok_or(AttackError::Ambiguous)?;
        Ok(LisaReport {
            recovered_key,
            relations,
            queries: oracle.queries(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::pairing::lisa::LisaScheme;
    use ropuf_constructions::Device;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn provision(seed: u64, config: LisaConfig) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        Device::provision(array, Box::new(LisaScheme::new(config)), seed ^ 0xABCD).unwrap()
    }

    #[test]
    fn recovers_full_key() {
        let config = LisaConfig::default();
        let mut device = provision(1, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(99);
        let report = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        assert_eq!(report.recovered_key, truth);
        assert!(report.queries > 0);
    }

    #[test]
    fn recovers_across_multiple_devices() {
        let config = LisaConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 10..15u64 {
            let mut device = provision(seed, config);
            let truth = device.enrolled_key().clone();
            let mut oracle = Oracle::new(&mut device);
            let report = LisaAttack::new(config)
                .run(&mut oracle, &mut rng)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(report.recovered_key, truth, "seed {seed}");
        }
    }

    #[test]
    fn relations_match_ground_truth() {
        let config = LisaConfig::default();
        let mut device = provision(2, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(3);
        let report = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        for (m, &rel) in report.relations.iter().enumerate() {
            assert_eq!(
                rel,
                truth.get(0) != truth.get(m + 1),
                "relation 0↔{}",
                m + 1
            );
        }
    }

    #[test]
    fn query_complexity_is_linear_in_pairs() {
        let config = LisaConfig::default();
        let mut device = provision(3, config);
        let p = device.enrolled_key().len() as u64;
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(4);
        let attack = LisaAttack::new(config).with_trials(3);
        let report = attack.run(&mut oracle, &mut rng).unwrap();
        // 1 reference + 3(P−1) relation + ≤ 2·3 resolution queries.
        assert!(
            report.queries <= 3 * (p - 1) + 7,
            "queries {} for {p} pairs",
            report.queries
        );
    }

    #[test]
    fn works_with_stronger_ecc() {
        // Error injection adapts to t: the attack succeeds regardless.
        let config = LisaConfig {
            ecc_t: 5,
            ..LisaConfig::default()
        };
        let mut device = provision(5, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(6);
        let report = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        assert_eq!(report.recovered_key, truth);
    }

    #[test]
    fn early_exit_recovers_key_with_fewer_queries() {
        let config = LisaConfig::default();
        let mut rng = StdRng::seed_from_u64(42);

        let mut device = provision(21, config);
        let truth = device.enrolled_key().clone();
        let mut oracle = Oracle::new(&mut device);
        let exhaustive = LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        assert_eq!(exhaustive.recovered_key, truth);

        let mut device = provision(21, config);
        let mut oracle = Oracle::new(&mut device);
        let early = LisaAttack::new(config)
            .with_early_exit(true)
            .run(&mut oracle, &mut rng)
            .unwrap();
        assert_eq!(early.recovered_key, truth, "same key either way");
        assert!(
            early.queries < exhaustive.queries,
            "early exit must save queries: {} vs {}",
            early.queries,
            exhaustive.queries
        );
    }

    #[test]
    fn device_left_functional_after_attack() {
        let config = LisaConfig::default();
        let mut device = provision(6, config);
        {
            let mut oracle = Oracle::new(&mut device);
            let mut rng = StdRng::seed_from_u64(7);
            LisaAttack::new(config).run(&mut oracle, &mut rng).unwrap();
        }
        // restore() ran: the device still answers with its genuine key.
        assert!(!device.respond(b"post", Environment::nominal()).is_failure());
    }

    #[test]
    fn rejects_non_lisa_helper() {
        let config = LisaConfig::default();
        let mut device = provision(8, config);
        device.write_helper(vec![0u8; 16]);
        let mut oracle = Oracle::new(&mut device);
        let mut rng = StdRng::seed_from_u64(9);
        let r = LisaAttack::new(config).run(&mut oracle, &mut rng);
        assert!(matches!(r, Err(AttackError::UnexpectedHelper(_))));
    }
}
