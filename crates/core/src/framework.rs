//! The statistical attack framework (paper Section VI, Fig. 5).
//!
//! Each hypothesis about a set of response bits corresponds to a
//! manipulated helper blob. The attacker estimates the key-regeneration
//! failure rate of every blob and picks the hypothesis with the lowest
//! rate; with calibrated error injection the correct hypothesis sits at
//! `t` errors (rarely failing) while every wrong one sits at `> t`
//! (almost always failing), so few queries suffice.

use ropuf_constructions::DeviceResponse;
use ropuf_numeric::stats::two_proportion_z;
use ropuf_sim::Environment;

use crate::oracle::{Oracle, Probe};

/// One hypothesis: a label plus the helper bytes that encode it.
#[derive(Debug, Clone)]
pub struct Hypothesis {
    /// Attacker-side label (e.g. the assumed bit values).
    pub label: u64,
    /// Manipulated helper blob.
    pub helper: Vec<u8>,
    /// Response the attacker expects when this hypothesis is correct
    /// (`None`: expect the nominal reference behavior).
    pub expected: Option<DeviceResponse>,
}

/// Outcome of a hypothesis tournament.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Index of the winning hypothesis.
    pub winner: usize,
    /// Failure counts per hypothesis.
    pub failures: Vec<u64>,
    /// Trials per hypothesis.
    pub trials: usize,
    /// Pooled z-statistic between the best and second-best hypothesis
    /// (larger ⇒ more confident decision).
    pub confidence_z: f64,
}

/// Failure-rate hypothesis tester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HypothesisTester {
    /// Queries per hypothesis.
    pub trials: usize,
}

impl Default for HypothesisTester {
    fn default() -> Self {
        Self { trials: 5 }
    }
}

impl HypothesisTester {
    /// Creates a tester issuing `trials` queries per hypothesis.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        Self { trials }
    }

    /// Runs the tournament: queries every hypothesis `trials` times and
    /// returns the one with the fewest failures.
    ///
    /// `reference` is the expected nominal response used for hypotheses
    /// with `expected: None`.
    ///
    /// # Panics
    ///
    /// Panics if `hypotheses` is empty.
    pub fn run(
        &self,
        oracle: &mut Oracle<'_>,
        hypotheses: &[Hypothesis],
        env: Environment,
        reference: &DeviceResponse,
    ) -> TestOutcome {
        assert!(!hypotheses.is_empty(), "need at least one hypothesis");
        let probes: Vec<Probe<'_>> = hypotheses
            .iter()
            .map(|h| Probe {
                helper: &h.helper,
                expected: h.expected.as_ref().unwrap_or(reference),
            })
            .collect();
        let failures = oracle.probe_failures(&probes, env, self.trials);
        self.outcome(failures)
    }

    /// Adaptive tournament: like [`HypothesisTester::run`] but each
    /// hypothesis is abandoned as soon as its failure count exceeds the
    /// best count seen so far — it can no longer win.
    ///
    /// The winner is **identical** to the exhaustive tournament (a probe
    /// is only cut once it strictly exceeds the running minimum, so
    /// order among survivors is preserved); the per-hypothesis failure
    /// counts of losers saturate early, making `confidence_z` a lower
    /// bound. With `H` hypotheses of which `H − 1` are wrong and fail
    /// near-always, query cost drops from `H · trials` to roughly
    /// `trials + (H − 1) · (best + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `hypotheses` is empty.
    pub fn run_adaptive(
        &self,
        oracle: &mut Oracle<'_>,
        hypotheses: &[Hypothesis],
        env: Environment,
        reference: &DeviceResponse,
    ) -> TestOutcome {
        assert!(!hypotheses.is_empty(), "need at least one hypothesis");
        let mut failures = Vec::with_capacity(hypotheses.len());
        let mut best = u64::MAX;
        for h in hypotheses {
            let probe = Probe {
                helper: &h.helper,
                expected: h.expected.as_ref().unwrap_or(reference),
            };
            let f = if best == u64::MAX {
                oracle.probe_failures(&[probe], env, self.trials)[0]
            } else {
                oracle.probe_failures_capped(&[probe], env, self.trials, best)[0]
            };
            best = best.min(f);
            failures.push(f);
        }
        self.outcome(failures)
    }

    fn outcome(&self, failures: Vec<u64>) -> TestOutcome {
        let winner = failures
            .iter()
            .enumerate()
            .min_by_key(|&(_, f)| *f)
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut sorted = failures.clone();
        sorted.sort_unstable();
        let confidence_z = if failures.len() > 1 {
            two_proportion_z(sorted[1], self.trials as u64, sorted[0], self.trials as u64)
        } else {
            0.0
        };
        TestOutcome {
            winner,
            failures,
            trials: self.trials,
            confidence_z,
        }
    }
}

/// Flips the first `count` parity bits of ECC block `block` inside a
/// parity bit-vector laid out as consecutive per-block parity runs of
/// `parity_per_block` bits — the paper's error-injection primitive
/// ("we just compute the ECC redundancy given some inverted bit values").
///
/// # Panics
///
/// Panics if the requested range exceeds the block's parity run.
pub fn inject_parity_errors(
    parity: &mut ropuf_numeric::BitVec,
    block: usize,
    parity_per_block: usize,
    count: usize,
) {
    assert!(
        count <= parity_per_block,
        "cannot flip more bits than a block holds"
    );
    let start = block * parity_per_block;
    assert!(start + count <= parity.len(), "block out of range");
    for i in 0..count {
        parity.flip(start + i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::pairing::lisa::{LisaConfig, LisaHelper, LisaScheme};
    use ropuf_constructions::{Device, SanityPolicy};
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    #[test]
    fn tournament_picks_unmanipulated_helper() {
        let mut rng = StdRng::seed_from_u64(1);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        let mut device =
            Device::provision(array, Box::new(LisaScheme::new(LisaConfig::default())), 2).unwrap();
        let mut oracle = Oracle::new(&mut device);
        let reference = oracle.query_original(Environment::nominal());

        let good = oracle.original_helper().to_vec();
        // A destructive manipulation: flip many parity bits.
        let mut parsed = LisaHelper::from_bytes(&good, SanityPolicy::Lenient).unwrap();
        for i in 0..parsed.parity.len().min(20) {
            parsed.parity.flip(i);
        }
        let bad = parsed.to_bytes();

        let hypotheses = vec![
            Hypothesis {
                label: 0,
                helper: good,
                expected: None,
            },
            Hypothesis {
                label: 1,
                helper: bad,
                expected: None,
            },
        ];
        let outcome = HypothesisTester::new(4).run(
            &mut oracle,
            &hypotheses,
            Environment::nominal(),
            &reference,
        );
        assert_eq!(outcome.winner, 0);
        assert_eq!(outcome.failures[0], 0);
        assert!(outcome.failures[1] > 0);
        assert!(outcome.confidence_z > 0.0);
    }

    #[test]
    fn adaptive_tournament_agrees_with_exhaustive_winner() {
        let mut rng = StdRng::seed_from_u64(5);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        let mut device =
            Device::provision(array, Box::new(LisaScheme::new(LisaConfig::default())), 6).unwrap();
        let mut oracle = Oracle::new(&mut device);
        let reference = oracle.query_original(Environment::nominal());

        let good = oracle.original_helper().to_vec();
        let mut parsed = LisaHelper::from_bytes(&good, SanityPolicy::Lenient).unwrap();
        for i in 0..parsed.parity.len().min(20) {
            parsed.parity.flip(i);
        }
        let bad = parsed.to_bytes();
        let hypotheses = vec![
            Hypothesis {
                label: 0,
                helper: bad.clone(),
                expected: None,
            },
            Hypothesis {
                label: 1,
                helper: good,
                expected: None,
            },
            Hypothesis {
                label: 2,
                helper: bad,
                expected: None,
            },
        ];

        let tester = HypothesisTester::new(6);
        let before = oracle.queries();
        let outcome =
            tester.run_adaptive(&mut oracle, &hypotheses, Environment::nominal(), &reference);
        let adaptive_queries = oracle.queries() - before;
        assert_eq!(outcome.winner, 1, "genuine helper wins");
        assert_eq!(outcome.failures[1], 0);
        assert!(
            adaptive_queries < 3 * 6,
            "losers were cut early: {adaptive_queries} queries"
        );
    }

    #[test]
    fn inject_flips_requested_range() {
        let mut parity = ropuf_numeric::BitVec::zeros(24);
        inject_parity_errors(&mut parity, 1, 8, 3);
        assert_eq!(parity.count_ones(), 3);
        assert!(parity.get(8) && parity.get(9) && parity.get(10));
    }

    #[test]
    #[should_panic(expected = "cannot flip more bits")]
    fn inject_overflow_panics() {
        let mut parity = ropuf_numeric::BitVec::zeros(16);
        inject_parity_errors(&mut parity, 0, 8, 9);
    }
}
