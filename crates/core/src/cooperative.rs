//! Relation recovery on the temperature-aware cooperative RO PUF (paper
//! Section VI-B).
//!
//! "An attacker can retrieve the response bit relations for all
//! cooperating pairs." For a target cooperating pair `c` (requesting
//! assistance, reference bit `r_c`, original donor `a` with
//! `r_c ⊕ r_g = r_a`), the attacker re-points the assist link at another
//! cooperating pair `d`: the device then reconstructs
//! `r_g ⊕ r_d = r_c ⊕ (r_a ⊕ r_d)`. H0 (`r_d = r_a`): failure rate
//! unchanged; H1: one bit error. Error injection (parity flips into the
//! target bit's block) and manipulation of the interval bounds `Tl`/`Th`
//! (to force assistance at an attacker-chosen temperature) accelerate the
//! attack, exactly as the paper sketches.

use rand::RngCore;
use ropuf_constructions::cooperative::{CooperativeConfig, CooperativeHelper, PairEntry};
use ropuf_constructions::ecc_helper::ParityHelper;
use ropuf_constructions::SanityPolicy;
use ropuf_sim::Environment;

use crate::framework::inject_parity_errors;
use crate::lisa::AttackError;
use crate::oracle::Oracle;
use crate::relations::ParityUnionFind;

/// Result of the cooperative relation-recovery attack.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativeReport {
    /// Pair indices (into the helper's pair list) of the cooperating
    /// pairs whose bits were related.
    pub coop_pairs: Vec<usize>,
    /// For every cooperating pair `j` (aligned with `coop_pairs`):
    /// `r_cj ⊕ r_anchor` relative to the anchor pair, or `None` when the
    /// relation graph did not connect that pair.
    pub relative_bits: Vec<Option<bool>>,
    /// Pair index of the anchor (the first target's original donor).
    pub anchor_pair: usize,
    /// Oracle queries spent.
    pub queries: u64,
}

/// The Section VI-B attack.
#[derive(Debug, Clone)]
pub struct CooperativeAttack {
    config: CooperativeConfig,
    trials: usize,
}

impl CooperativeAttack {
    /// Creates the attack against a device with the given public
    /// configuration.
    pub fn new(config: CooperativeConfig) -> Self {
        Self { config, trials: 5 }
    }

    /// Overrides the per-test query count.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        self.trials = trials;
        self
    }

    /// Picks the range extreme farthest from the crossover intervals of
    /// **both** the substituted donor and the original assist — both
    /// appear in the paired test (substituted vs control helper), and a
    /// cooperating pair's `|Δf|` grows linearly away from its interval,
    /// so maximal distance minimizes noise flips. Returns `None` when
    /// neither extreme is at least 5 °C clear of both intervals.
    fn donor_safe_temperature(
        helper: &CooperativeHelper,
        donor: usize,
        orig_assist: usize,
    ) -> Option<f64> {
        let interval = |idx: usize| -> Option<(f64, f64)> {
            match helper.entries[idx] {
                PairEntry::Coop { tl, th, .. } | PairEntry::CoopDiscarded { tl, th } => {
                    Some((tl, th))
                }
                _ => None,
            }
        };
        let (dtl, dth) = interval(donor)?;
        let (atl, ath) = interval(orig_assist)?;
        // A cooperating pair's |Δf| grows as slope × distance beyond its
        // band edge, and the band width is public: width = 2·Δf_th /
        // |slope|. Requiring clearance ≥ 0.65 × width therefore
        // guarantees |Δf| ≳ 2.3 × Δf_th at the test point — far enough
        // above the noise floor for a dependable donor bit. Interior
        // temperatures are preferred over the range extremes: the rest of
        // the key (the common-mode baseline of the paired test) is most
        // fragile exactly at the extremes, where every good pair attains
        // its worst-case margin.
        let need = |tl: f64, th: f64| (0.65 * (th - tl)).max(5.0);
        let slack_at = |temp: f64| -> f64 {
            let d_clear = if temp <= dtl { dtl - temp } else { temp - dth };
            let a_clear = if temp <= atl { atl - temp } else { temp - ath };
            if (dtl..=dth).contains(&temp) || (atl..=ath).contains(&temp) {
                return f64::MIN;
            }
            (d_clear - need(dtl, dth)).min(a_clear - need(atl, ath))
        };
        let mut best: Option<(f64, f64)> = None;
        let steps = 29;
        for i in 0..=steps {
            let temp = helper.t_min + (helper.t_max - helper.t_min) * i as f64 / steps as f64;
            let slack = slack_at(temp);
            // Clearance beyond ~5 °C of slack adds nothing (the donor bit
            // is already firmly outside its band), so cap it — otherwise
            // the range extremes always win on raw slack, and the
            // extremes are exactly where the rest of the key is noisiest.
            let interior_bonus = (temp - helper.t_min).min(helper.t_max - temp).min(20.0) / 100.0;
            let score = slack.min(5.0) + interior_bonus;
            if slack >= 0.0 && best.map_or(true, |(s, _)| score > s) {
                best = Some((score, temp));
            }
        }
        best.map(|(_, temp)| temp)
    }

    /// Runs the attack, learning the XOR relations among all cooperating
    /// pairs' response bits.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when the helper data is not a cooperative
    /// blob, fewer than two cooperating pairs exist, or the device has no
    /// stable reference behavior.
    pub fn run(
        &self,
        oracle: &mut Oracle<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<CooperativeReport, AttackError> {
        let parsed = CooperativeHelper::from_bytes(oracle.original_helper(), SanityPolicy::Lenient)
            .map_err(|e| AttackError::UnexpectedHelper(e.to_string()))?;

        // Cooperating pairs that carry key bits, in key order.
        let good_count = parsed
            .entries
            .iter()
            .filter(|e| matches!(e, PairEntry::Good))
            .count();
        let coop_pairs: Vec<usize> = parsed
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, PairEntry::Coop { .. }).then_some(i))
            .collect();
        if coop_pairs.len() < 2 {
            return Err(AttackError::InsufficientTargets {
                got: coop_pairs.len(),
            });
        }
        let key_len = good_count + coop_pairs.len();
        let ecc =
            ParityHelper::new(key_len, self.config.ecc_t).map_err(AttackError::UnexpectedHelper)?;

        let reference = oracle.query_original(Environment::nominal());
        if reference.is_failure() {
            return Err(AttackError::NoReference);
        }

        // All pairs that can act as donors (their reference bit is
        // measurable outside their interval), including cooperating pairs
        // that were discarded from the key.
        let cooperating: Vec<usize> = parsed
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                matches!(e, PairEntry::Coop { .. } | PairEntry::CoopDiscarded { .. }).then_some(i)
            })
            .collect();

        let mut uf = ParityUnionFind::new(parsed.entries.len());

        // One hypothesis test: re-point `target`'s assist link at `donor`,
        // force the cooperative path at a donor-safe temperature, inject
        // t parity errors into the target's block, and compare the
        // failure rate against a *control* helper that is identical except
        // that it keeps the original assist — the paper's "intentionally
        // and symmetrically introduced" errors. Common-mode noise (a
        // marginal mask or background bit flipping at the test
        // temperature) hits both helpers equally; only a genuine bit
        // difference (H1) separates them. Ambiguous margins escalate to
        // more trials.
        #[allow(unused_mut)]
        let mut test = |oracle: &mut Oracle<'_>,
                        uf: &mut ParityUnionFind,
                        target: usize,
                        donor: usize|
         -> bool {
            let PairEntry::Coop { assist, mask, .. } = parsed.entries[target] else {
                return false;
            };
            if donor == target || donor == assist as usize {
                return false;
            }
            let Some(temp) = Self::donor_safe_temperature(&parsed, donor, assist as usize) else {
                return false;
            };
            let coop_rank = coop_pairs
                .iter()
                .position(|&c| c == target)
                .expect("target is a keyed coop pair");
            let make = |assist_link: usize| -> Vec<u8> {
                let mut m = parsed.clone();
                m.entries[target] = PairEntry::Coop {
                    tl: temp - 0.5,
                    th: temp + 0.5,
                    assist: assist_link as u16,
                    mask,
                };
                inject_parity_errors(
                    &mut m.parity,
                    ecc.block_of_bit(good_count + coop_rank),
                    ecc.parity_per_block(),
                    ecc.t(),
                );
                m.to_bytes()
            };
            let substituted = make(donor);
            let control = make(assist as usize);
            let env = Environment::at_temperature(temp);
            // Decision: under H1 the substituted helper holds t+1 errors
            // and fails (essentially) every query, while the control
            // fails only at the common-mode baseline rate; under H0 both
            // share the baseline. So H1 requires a near-certain failure
            // rate *and* a clear gap to the control. Ambiguous outcomes
            // escalate to more trials; H1 verdicts (the error-prone
            // direction when the baseline is high) are re-confirmed by a
            // best-of-three majority — a true H1 is deterministic, so
            // re-confirmation is nearly free in accuracy.
            let mut decide = |oracle: &mut Oracle<'_>| -> bool {
                let mut n = 0u64;
                let mut f_sub = 0u64;
                let mut f_ctl = 0u64;
                loop {
                    let round = self.trials.max(8) as u64;
                    f_sub += oracle.failure_count(&substituted, env, &reference, round as usize);
                    f_ctl += oracle.failure_count(&control, env, &reference, round as usize);
                    n += round;
                    let rate_sub = f_sub as f64 / n as f64;
                    let diff = rate_sub - f_ctl as f64 / n as f64;
                    if n >= 2 * self.trials.max(8) as u64 && rate_sub >= 0.9 && diff >= 0.3 {
                        break true;
                    }
                    if rate_sub <= 0.7 {
                        break false;
                    }
                    if n >= 4 * self.trials.max(8) as u64 {
                        break rate_sub >= 0.85 && diff >= 0.3;
                    }
                }
            };
            let mut differs = decide(oracle);
            if differs {
                let second = decide(oracle);
                if second != differs {
                    differs = decide(oracle);
                }
                let _ = second;
            }
            // H0: r_donor = r_orig_assist.
            uf.relate(donor, assist as usize, differs);
            true
        };

        // Round 1: first keyed coop pair relates every other cooperating
        // pair to its original donor (the anchor).
        let target1 = coop_pairs[0];
        let PairEntry::Coop { assist: anchor, .. } = parsed.entries[target1] else {
            unreachable!("coop_pairs holds Coop entries");
        };
        let anchor = anchor as usize;
        for &donor in &cooperating {
            test(oracle, &mut uf, target1, donor);
        }
        // Round 2: connect target1's own bit via a second target whose
        // original donor is not target1 itself.
        for &target2 in coop_pairs.iter().skip(1) {
            let PairEntry::Coop { assist, .. } = parsed.entries[target2] else {
                continue;
            };
            if assist as usize != target1 && test(oracle, &mut uf, target2, target1) {
                break;
            }
        }
        oracle.restore();

        let relative_bits: Vec<Option<bool>> =
            coop_pairs.iter().map(|&c| uf.relation(c, anchor)).collect();
        Ok(CooperativeReport {
            coop_pairs,
            relative_bits,
            anchor_pair: anchor,
            queries: oracle.queries(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::cooperative::{classify_pair, CooperativeScheme, PairClass};
    use ropuf_constructions::Device;
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    /// Provisions a device and returns it with the ground-truth bits of
    /// its cooperating pairs (by pair index).
    fn provision(seed: u64, config: CooperativeConfig) -> Option<(Device, Vec<(usize, bool)>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        let scheme = CooperativeScheme::new(config);
        // Ground truth from noise-free lines.
        let mut truth_rng = StdRng::seed_from_u64(seed ^ 0x5555);
        let lines = scheme.measure_lines(&array, &mut truth_rng);
        let truths: Vec<(usize, bool)> = lines
            .iter()
            .enumerate()
            .filter_map(|(i, &(_, line))| {
                match classify_pair(line, config.range, config.delta_f_th) {
                    PairClass::Cooperating { bit, .. } => Some((i, bit)),
                    _ => None,
                }
            })
            .collect();
        let device = Device::provision(array, Box::new(scheme), seed ^ 0x1234).ok()?;
        Some((device, truths))
    }

    #[test]
    fn recovers_coop_relations() {
        let config = CooperativeConfig::default();
        let mut rng = StdRng::seed_from_u64(50);
        let mut verified_devices = 0;
        let mut total_checked = 0u64;
        let mut total_wrong = 0u64;
        for seed in 0..12u64 {
            let Some((mut device, truths)) = provision(seed, config) else {
                continue;
            };
            let mut oracle = Oracle::new(&mut device);
            let report = match CooperativeAttack::new(config).run(&mut oracle, &mut rng) {
                Ok(r) => r,
                Err(AttackError::InsufficientTargets { .. }) => continue,
                Err(e) => panic!("seed {seed}: {e}"),
            };
            // Verify every *connected* relative relation against ground
            // truth: r_i ⊕ r_j as reported must match the true bits.
            let truth_of = |pair: usize| -> Option<bool> {
                truths.iter().find(|&&(i, _)| i == pair).map(|&(_, b)| b)
            };
            let mut checked = 0u64;
            let mut wrong = 0u64;
            for (idx_i, &ci) in report.coop_pairs.iter().enumerate() {
                for (idx_j, &cj) in report.coop_pairs.iter().enumerate().skip(idx_i + 1) {
                    let (Some(ri), Some(rj)) =
                        (report.relative_bits[idx_i], report.relative_bits[idx_j])
                    else {
                        continue;
                    };
                    let (Some(ti), Some(tj)) = (truth_of(ci), truth_of(cj)) else {
                        continue;
                    };
                    checked += 1;
                    if ri ^ rj != ti ^ tj {
                        wrong += 1;
                    }
                }
            }
            total_checked += checked;
            total_wrong += wrong;
            if checked > 0 {
                verified_devices += 1;
            }
        }
        assert!(
            verified_devices >= 3,
            "verified only {verified_devices} devices"
        );
        // The attack is statistical; demand ≥ 95% correct relations
        // across the population (the paper claims relation recovery, not
        // a zero error rate at finite query budgets).
        assert!(
            total_checked >= 20,
            "too few relations checked: {total_checked}"
        );
        assert!(
            (total_wrong as f64) <= 0.05 * total_checked as f64,
            "{total_wrong}/{total_checked} relations wrong"
        );
    }

    #[test]
    fn too_few_coop_pairs_rejected() {
        // A huge threshold makes (almost) everything bad/good.
        let config = CooperativeConfig {
            delta_f_th: 1.0, // virtually no cooperating pairs
            ..CooperativeConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(51);
        if let Some((mut device, _)) = provision(999, config) {
            let mut oracle = Oracle::new(&mut device);
            let r = CooperativeAttack::new(config).run(&mut oracle, &mut rng);
            if let Err(e) = r {
                assert!(matches!(e, AttackError::InsufficientTargets { .. }), "{e}");
            }
        }
    }

    #[test]
    fn donor_safe_temperature_avoids_interval() {
        let helper = CooperativeHelper {
            array_len: 8,
            t_min: 0.0,
            t_max: 70.0,
            entries: vec![
                PairEntry::CoopDiscarded { tl: 30.0, th: 40.0 }, // covers midpoint
                PairEntry::CoopDiscarded { tl: 60.0, th: 70.0 },
                PairEntry::Good,
            ],
            parity: ropuf_numeric::BitVec::zeros(4),
        };
        // Intervals [30, 40] and [60, 70], clearance requirement 6.5 °C
        // each: the chosen point must be outside both intervals with the
        // required clearance.
        for (d, a) in [(0usize, 1usize), (1, 0)] {
            let t = CooperativeAttack::donor_safe_temperature(&helper, d, a).unwrap();
            assert!((0.0..=70.0).contains(&t));
            assert!(!(30.0..=40.0).contains(&t), "t = {t}");
            assert!(!(60.0..=70.0).contains(&t), "t = {t}");
            assert!(
                (30.0 - t >= 6.5) || (t - 40.0 >= 6.5 && 60.0 - t >= 6.5),
                "clearance violated at t = {t}"
            );
        }
        // A good pair has no interval ⇒ no safe donor temperature.
        assert!(CooperativeAttack::donor_safe_temperature(&helper, 2, 0).is_none());
    }
}
