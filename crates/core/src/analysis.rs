//! Entropy accounting for RO PUFs (paper Sections II and V).

use ropuf_numeric::stats::ln_factorial;

/// Total entropy of an `n`-RO PUF under the ideal model: `log₂(n!)` bits
/// (paper Section II — all `n!` frequency orders equally likely).
pub fn total_entropy_bits(n: usize) -> f64 {
    ln_factorial(n as u64) / std::f64::consts::LN_2
}

/// Number of pairwise comparisons `n(n−1)/2` — the raw (interdependent)
/// response bit count of Fig. 1.
pub fn pairwise_comparisons(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Bits leaked by the deterministic-scan assist selection (paper
/// Section IV-D): each skipped candidate reveals one inequality relation,
/// worth up to one bit.
pub fn deterministic_scan_leakage_bits(skipped_candidates: usize) -> f64 {
    skipped_candidates as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_matches_small_cases() {
        assert!((total_entropy_bits(1)).abs() < 1e-9);
        assert!((total_entropy_bits(3) - (6f64).log2()).abs() < 1e-9);
        assert!((total_entropy_bits(4) - (24f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn entropy_grows_subquadratically() {
        // log2(n!) ≪ n(n-1)/2 for large n — the paper's point that the
        // N(N−1)/2 comparison bits are heavily interdependent.
        let n = 128;
        assert!(total_entropy_bits(n) < pairwise_comparisons(n) as f64 / 8.0);
    }

    #[test]
    fn comparisons_counts() {
        assert_eq!(pairwise_comparisons(0), 0);
        assert_eq!(pairwise_comparisons(3), 3);
        assert_eq!(pairwise_comparisons(128), 8128);
    }
}
