//! Parity union-find: combining learned XOR relations between secret
//! bits.
//!
//! The LISA attack (paper Section VI-A) learns relations of the form
//! `r_i ⊕ r_j = d`. A union-find structure with parity edges aggregates
//! them until every bit is related to bit 0, leaving exactly two key
//! candidates.

/// Union-find over bit indices with XOR parities.
///
/// # Examples
///
/// ```
/// use ropuf_attacks::relations::ParityUnionFind;
///
/// let mut uf = ParityUnionFind::new(3);
/// uf.relate(0, 1, true);  // r0 ⊕ r1 = 1
/// uf.relate(1, 2, false); // r1 ⊕ r2 = 0
/// assert_eq!(uf.relation(0, 2), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct ParityUnionFind {
    parent: Vec<usize>,
    /// Parity of the path from node to its parent.
    parity: Vec<bool>,
    rank: Vec<u32>,
}

impl ParityUnionFind {
    /// Creates a structure over `n` bits, all initially unrelated.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            parity: vec![false; n],
            rank: vec![0; n],
        }
    }

    /// Number of bits tracked.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when no bits are tracked.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    fn find(&mut self, i: usize) -> (usize, bool) {
        if self.parent[i] == i {
            return (i, false);
        }
        let (root, parent_parity) = self.find(self.parent[i]);
        let total = self.parity[i] ^ parent_parity;
        self.parent[i] = root;
        self.parity[i] = total;
        (root, total)
    }

    /// Records `r_i ⊕ r_j = d`. Returns `false` when the relation
    /// contradicts previously recorded ones (evidence of a measurement
    /// error).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn relate(&mut self, i: usize, j: usize, d: bool) -> bool {
        let (ri, pi) = self.find(i);
        let (rj, pj) = self.find(j);
        if ri == rj {
            return (pi ^ pj) == d;
        }
        // Union by rank; parity chosen so that the invariant holds.
        let edge = pi ^ pj ^ d;
        if self.rank[ri] < self.rank[rj] {
            self.parent[ri] = rj;
            self.parity[ri] = edge;
        } else {
            self.parent[rj] = ri;
            self.parity[rj] = edge;
            if self.rank[ri] == self.rank[rj] {
                self.rank[ri] += 1;
            }
        }
        true
    }

    /// The relation `r_i ⊕ r_j` if both bits are connected.
    pub fn relation(&mut self, i: usize, j: usize) -> Option<bool> {
        let (ri, pi) = self.find(i);
        let (rj, pj) = self.find(j);
        (ri == rj).then_some(pi ^ pj)
    }

    /// `true` when every bit is related to bit 0 (two candidates remain).
    pub fn fully_connected(&mut self) -> bool {
        if self.parent.is_empty() {
            return true;
        }
        let (root0, _) = self.find(0);
        (1..self.parent.len()).all(|i| self.find(i).0 == root0)
    }

    /// Materializes the candidate key with `r_0 = anchor`, for bits
    /// connected to bit 0; unconnected bits are `None`.
    pub fn candidate(&mut self, anchor: bool) -> Vec<Option<bool>> {
        let n = self.parent.len();
        if n == 0 {
            return Vec::new();
        }
        let (root0, _) = self.find(0);
        (0..n)
            .map(|i| {
                let (r, p) = self.find(i);
                (r == root0).then_some(anchor ^ p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_of_relations() {
        let mut uf = ParityUnionFind::new(5);
        assert!(uf.relate(0, 1, true));
        assert!(uf.relate(1, 2, true));
        assert!(uf.relate(2, 3, false));
        assert!(uf.relate(3, 4, true));
        assert_eq!(uf.relation(0, 4), Some(true)); // 1^1^0^1 = 1
        assert!(uf.fully_connected());
    }

    #[test]
    fn contradiction_detected() {
        let mut uf = ParityUnionFind::new(3);
        assert!(uf.relate(0, 1, true));
        assert!(uf.relate(1, 2, true));
        assert!(!uf.relate(0, 2, true)); // should be 0
        assert!(uf.relate(0, 2, false));
    }

    #[test]
    fn unconnected_bits_unknown() {
        let mut uf = ParityUnionFind::new(4);
        uf.relate(0, 1, false);
        assert_eq!(uf.relation(0, 2), None);
        assert!(!uf.fully_connected());
        let cand = uf.candidate(true);
        assert_eq!(cand[0], Some(true));
        assert_eq!(cand[1], Some(true));
        assert_eq!(cand[2], None);
    }

    #[test]
    fn candidates_are_complementary_patterns() {
        let mut uf = ParityUnionFind::new(4);
        uf.relate(0, 1, true);
        uf.relate(0, 2, false);
        uf.relate(0, 3, true);
        let c0: Vec<bool> = uf.candidate(false).into_iter().flatten().collect();
        let c1: Vec<bool> = uf.candidate(true).into_iter().flatten().collect();
        for (a, b) in c0.iter().zip(&c1) {
            assert_ne!(a, b);
        }
        assert_eq!(c0, vec![false, true, false, true]);
    }

    #[test]
    fn star_topology_random_order() {
        let mut uf = ParityUnionFind::new(10);
        for i in (1..10).rev() {
            assert!(uf.relate(i, 0, i % 3 == 0));
        }
        for i in 1..10 {
            assert_eq!(uf.relation(0, i), Some(i % 3 == 0));
        }
    }
}
