//! Process-variation profile of an RO array.
//!
//! The model mirrors the paper's Fig. 2: the frequency topology of a real
//! array is a smooth systematic trend (spatially correlated, caused by
//! systematic manufacturing variation) plus random per-RO "surface
//! roughness" (the desired entropy). All magnitudes are expressed in Hz so
//! they can be compared directly against noise and threshold parameters.

use rand::Rng;
use ropuf_numeric::polyfit::Poly2d;
use ropuf_numeric::sampling::Normal;

use crate::layout::ArrayDims;

/// Magnitudes of the variability components of an RO array.
///
/// The defaults model a mid-size FPGA RO population at ~200 MHz nominal:
///
/// | component | default | rationale |
/// |-----------|---------|-----------|
/// | `nominal_hz` | 200 MHz | typical short inverter chain |
/// | `systematic_peak_hz` | 1.5 MHz | trend of Fig. 2, same order as random |
/// | `random_sigma_hz` | 500 kHz | ≈0.25% of nominal within-die variation |
/// | `temp_slope_hz_per_c` | −20 kHz/°C | frequency decreases with T |
/// | `temp_slope_sigma` | 3 kHz/°C | per-RO spread ⇒ pair crossovers |
/// | `volt_slope_hz_per_v` | +50 MHz/V | frequency increases with V |
/// | `volt_slope_sigma` | 1 MHz/V | per-RO spread |
///
/// # Examples
///
/// ```
/// use ropuf_sim::VariationProfile;
///
/// let p = VariationProfile::default();
/// assert!(p.random_sigma_hz > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationProfile {
    /// Nominal RO frequency in Hz.
    pub nominal_hz: f64,
    /// Approximate peak-to-peak magnitude of the systematic surface in Hz.
    pub systematic_peak_hz: f64,
    /// Standard deviation of the i.i.d. per-RO random component in Hz.
    pub random_sigma_hz: f64,
    /// Mean temperature slope in Hz per °C (negative: frequency drops as
    /// the die heats up).
    pub temp_slope_hz_per_c: f64,
    /// Per-RO standard deviation of the temperature slope in Hz per °C.
    pub temp_slope_sigma: f64,
    /// Mean supply-voltage slope in Hz per volt (positive).
    pub volt_slope_hz_per_v: f64,
    /// Per-RO standard deviation of the voltage slope in Hz per volt.
    pub volt_slope_sigma: f64,
}

impl Default for VariationProfile {
    fn default() -> Self {
        Self {
            nominal_hz: 200.0e6,
            systematic_peak_hz: 1.5e6,
            random_sigma_hz: 500.0e3,
            temp_slope_hz_per_c: -20.0e3,
            temp_slope_sigma: 3.0e3,
            volt_slope_hz_per_v: 50.0e6,
            volt_slope_sigma: 1.0e6,
        }
    }
}

impl VariationProfile {
    /// A profile with **no systematic component**, useful for isolating the
    /// behavior of constructions on purely random variation.
    pub fn random_only() -> Self {
        Self {
            systematic_peak_hz: 0.0,
            ..Self::default()
        }
    }

    /// Draws a random smooth systematic surface: a tilted plane plus a mild
    /// quadratic bowl, scaled so the peak-to-peak excursion across the array
    /// is approximately `systematic_peak_hz`. Mirrors the linear trend of
    /// the paper's Fig. 2 with a small curvature term, which a degree-2
    /// distiller can capture.
    pub fn sample_systematic<R: Rng + ?Sized>(&self, dims: ArrayDims, rng: &mut R) -> Poly2d {
        if self.systematic_peak_hz == 0.0 {
            return Poly2d::zero(2);
        }
        let (w, h) = (dims.cols() as f64 - 1.0, dims.rows() as f64 - 1.0);
        let w = w.max(1.0);
        let h = h.max(1.0);
        // Random direction for the linear trend; random curvature sign.
        let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let lin = 0.7 * self.systematic_peak_hz;
        let quad = 0.3 * self.systematic_peak_hz;
        let bx = lin * theta.cos() / w;
        let by = lin * theta.sin() / h;
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        // Quadratic bowl centered mid-array.
        let cx = w / 2.0;
        let cy = h / 2.0;
        let ax = sign * quad / (cx * cx + cy * cy).max(1.0);
        // f = c0 + bx·x + by·y + ax·((x-cx)² + (y-cy)²), expanded:
        let c0 = ax * (cx * cx + cy * cy);
        let cx1 = bx - 2.0 * ax * cx;
        let cy1 = by - 2.0 * ax * cy;
        Poly2d::from_coefficients(2, vec![c0, cx1, cy1, ax, 0.0, ax])
            .expect("coefficient count is correct by construction")
    }

    /// Draws the per-RO random frequency offsets (i.i.d. Gaussian).
    pub fn sample_random<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        Normal::new(0.0, self.random_sigma_hz).sample_n(rng, n)
    }

    /// Draws the per-RO temperature slopes.
    pub fn sample_temp_slopes<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        Normal::new(self.temp_slope_hz_per_c, self.temp_slope_sigma).sample_n(rng, n)
    }

    /// Draws the per-RO voltage slopes.
    pub fn sample_volt_slopes<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        Normal::new(self.volt_slope_hz_per_v, self.volt_slope_sigma).sample_n(rng, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn systematic_surface_has_requested_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = VariationProfile::default();
        let dims = ArrayDims::new(32, 16);
        let poly = p.sample_systematic(dims, &mut rng);
        let vals: Vec<f64> = dims
            .iter_coords()
            .map(|(_, x, y)| poly.eval(x as f64, y as f64))
            .collect();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let pp = max - min;
        assert!(
            pp > 0.3 * p.systematic_peak_hz && pp < 3.0 * p.systematic_peak_hz,
            "peak-to-peak {pp}"
        );
    }

    #[test]
    fn random_only_profile_is_flat() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = VariationProfile::random_only();
        let poly = p.sample_systematic(ArrayDims::new(8, 8), &mut rng);
        assert!(poly.coefficients().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn slopes_have_expected_signs() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = VariationProfile::default();
        let ts = p.sample_temp_slopes(500, &mut rng);
        let vs = p.sample_volt_slopes(500, &mut rng);
        let mean_t: f64 = ts.iter().sum::<f64>() / ts.len() as f64;
        let mean_v: f64 = vs.iter().sum::<f64>() / vs.len() as f64;
        assert!(mean_t < 0.0, "temperature slope should be negative");
        assert!(mean_v > 0.0, "voltage slope should be positive");
    }

    #[test]
    fn random_offsets_have_requested_sigma() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = VariationProfile::default();
        let xs = p.sample_random(20_000, &mut rng);
        let sd = ropuf_numeric::stats::std_dev(&xs);
        assert!((sd - p.random_sigma_hz).abs() / p.random_sigma_hz < 0.05);
    }
}
