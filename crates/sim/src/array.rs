//! The simulated RO array itself.
//!
//! An [`RoArray`] holds the manufacturing outcome of one device: per-RO
//! base frequencies (systematic + random, at nominal conditions) and per-RO
//! environmental slopes. Measurements add Gaussian noise and counter
//! quantization, mirroring the multiplexer–counter architecture of the
//! paper's Fig. 1.

use rand::Rng;
use ropuf_numeric::polyfit::Poly2d;
use ropuf_numeric::sampling::Normal;

use crate::env::Environment;
use crate::layout::ArrayDims;
use crate::variation::VariationProfile;

/// One manufactured RO array: the PUF secret.
///
/// Cloning an `RoArray` models having the *same physical device*; building
/// a new one from the same [`VariationProfile`] models manufacturing a new
/// sample of the same design.
///
/// # Examples
///
/// ```
/// use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
/// let env = Environment::nominal();
/// // Enrollment-grade averaged measurement:
/// let f0 = array.measure_averaged(0, env, 16, &mut rng);
/// assert!((f0 - array.true_frequency(0, env)).abs() < 50e3);
/// ```
#[derive(Debug, Clone)]
pub struct RoArray {
    dims: ArrayDims,
    /// Noise-free frequency of each RO at nominal conditions (Hz).
    base_hz: Vec<f64>,
    /// Frequency slope vs temperature for each RO (Hz/°C).
    temp_slope: Vec<f64>,
    /// Frequency slope vs supply voltage for each RO (Hz/V).
    volt_slope: Vec<f64>,
    /// Per-measurement Gaussian noise sigma (Hz).
    noise_sigma_hz: f64,
    /// Counter quantization step (Hz); 0 disables quantization.
    resolution_hz: f64,
    /// Reference conditions at which `base_hz` is defined.
    reference: Environment,
    /// The systematic surface used at manufacturing (kept for analysis and
    /// figure generation; a real attacker does not see this).
    systematic: Poly2d,
}

impl RoArray {
    /// Array dimensions.
    pub fn dims(&self) -> ArrayDims {
        self.dims
    }

    /// Number of ROs.
    pub fn len(&self) -> usize {
        self.base_hz.len()
    }

    /// Returns `true` if the array has no ROs (never happens via the
    /// builder; dimensions are positive).
    pub fn is_empty(&self) -> bool {
        self.base_hz.is_empty()
    }

    /// Measurement noise sigma in Hz.
    pub fn noise_sigma_hz(&self) -> f64 {
        self.noise_sigma_hz
    }

    /// Counter quantization step in Hz.
    pub fn resolution_hz(&self) -> f64 {
        self.resolution_hz
    }

    /// The systematic surface injected at "manufacturing". Ground truth for
    /// analysis; not available to attackers or to the device firmware.
    pub fn systematic_truth(&self) -> &Poly2d {
        &self.systematic
    }

    /// Noise-free frequency of RO `i` under environment `env`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn true_frequency(&self, i: usize, env: Environment) -> f64 {
        assert!(i < self.len(), "RO index {i} out of range");
        self.base_hz[i]
            + self.temp_slope[i] * (env.temperature_c - self.reference.temperature_c)
            + self.volt_slope[i] * (env.voltage_v - self.reference.voltage_v)
    }

    /// One noisy, quantized frequency measurement of RO `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn measure<R: Rng + ?Sized>(&self, i: usize, env: Environment, rng: &mut R) -> f64 {
        let noisy = self.true_frequency(i, env) + Normal::new(0.0, self.noise_sigma_hz).sample(rng);
        self.quantize(noisy)
    }

    /// Measures every RO once; index order.
    pub fn measure_all<R: Rng + ?Sized>(&self, env: Environment, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.measure_all_into(env, rng, &mut out);
        out
    }

    /// Measures every RO once into `out` (cleared first, capacity
    /// reused) — the allocation-free twin of [`RoArray::measure_all`]
    /// for hot loops that issue many full-array measurements (every
    /// oracle query reconstructs the key from a fresh sweep). Consumes
    /// the RNG identically to `measure_all`, so swapping one for the
    /// other never perturbs a seeded replay.
    pub fn measure_all_into<R: Rng + ?Sized>(
        &self,
        env: Environment,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(self.len());
        out.extend((0..self.len()).map(|i| self.measure(i, env, rng)));
    }

    /// Averages `n` measurements of RO `i` (enrollment-grade measurement;
    /// averaging suppresses noise by √n, quantization applied at the end).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `i` is out of range.
    pub fn measure_averaged<R: Rng + ?Sized>(
        &self,
        i: usize,
        env: Environment,
        n: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(n > 0, "need at least one measurement");
        let noise = Normal::new(0.0, self.noise_sigma_hz);
        let sum: f64 = (0..n)
            .map(|_| self.true_frequency(i, env) + noise.sample(rng))
            .sum();
        self.quantize(sum / n as f64)
    }

    /// Averages `n` measurements of every RO.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn measure_all_averaged<R: Rng + ?Sized>(
        &self,
        env: Environment,
        n: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.measure_averaged(i, env, n, rng))
            .collect()
    }

    /// Noise-free pair discrepancy `f_i − f_j` under `env`.
    pub fn true_delta(&self, i: usize, j: usize, env: Environment) -> f64 {
        self.true_frequency(i, env) - self.true_frequency(j, env)
    }

    /// Temperature at which the noise-free Δf of pair `(i, j)` crosses
    /// zero, if the pair's temperature slopes differ.
    pub fn crossover_temperature(&self, i: usize, j: usize) -> Option<f64> {
        let dslope = self.temp_slope[i] - self.temp_slope[j];
        if dslope.abs() < f64::EPSILON {
            return None;
        }
        let d0 = self.true_delta(i, j, self.reference);
        Some(self.reference.temperature_c - d0 / dslope)
    }

    fn quantize(&self, f: f64) -> f64 {
        if self.resolution_hz > 0.0 {
            (f / self.resolution_hz).round() * self.resolution_hz
        } else {
            f
        }
    }
}

/// Builder for [`RoArray`].
///
/// # Examples
///
/// ```
/// use ropuf_sim::{ArrayDims, RoArrayBuilder, VariationProfile};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let array = RoArrayBuilder::new(ArrayDims::new(32, 16))
///     .profile(VariationProfile::default())
///     .noise_sigma_hz(25e3)
///     .resolution_hz(1e3)
///     .build(&mut rng);
/// assert_eq!(array.len(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct RoArrayBuilder {
    dims: ArrayDims,
    profile: VariationProfile,
    noise_sigma_hz: f64,
    resolution_hz: f64,
    reference: Environment,
}

impl RoArrayBuilder {
    /// Starts a builder for an array of the given dimensions.
    pub fn new(dims: ArrayDims) -> Self {
        Self {
            dims,
            profile: VariationProfile::default(),
            noise_sigma_hz: 25.0e3,
            resolution_hz: 1.0e3,
            reference: Environment::nominal(),
        }
    }

    /// Sets the variability profile.
    pub fn profile(mut self, profile: VariationProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the per-measurement noise sigma in Hz.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn noise_sigma_hz(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma_hz = sigma;
        self
    }

    /// Sets the counter quantization step in Hz (0 disables quantization).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn resolution_hz(mut self, res: f64) -> Self {
        assert!(res >= 0.0, "resolution must be non-negative");
        self.resolution_hz = res;
        self
    }

    /// Sets the reference (enrollment) environment.
    pub fn reference(mut self, env: Environment) -> Self {
        self.reference = env;
        self
    }

    /// Manufactures one device.
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> RoArray {
        let n = self.dims.len();
        let systematic = self.profile.sample_systematic(self.dims, rng);
        let random = self.profile.sample_random(n, rng);
        let base_hz: Vec<f64> = self
            .dims
            .iter_coords()
            .map(|(i, x, y)| {
                self.profile.nominal_hz + systematic.eval(x as f64, y as f64) + random[i]
            })
            .collect();
        RoArray {
            dims: self.dims,
            base_hz,
            temp_slope: self.profile.sample_temp_slopes(n, rng),
            volt_slope: self.profile.sample_volt_slopes(n, rng),
            noise_sigma_hz: self.noise_sigma_hz,
            resolution_hz: self.resolution_hz,
            reference: self.reference,
            systematic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_array(seed: u64) -> RoArray {
        let mut rng = StdRng::seed_from_u64(seed);
        RoArrayBuilder::new(ArrayDims::new(8, 4)).build(&mut rng)
    }

    #[test]
    fn frequencies_near_nominal() {
        let a = small_array(1);
        let env = Environment::nominal();
        for i in 0..a.len() {
            let f = a.true_frequency(i, env);
            assert!((f - 200e6).abs() < 10e6, "RO {i} at {f}");
        }
    }

    #[test]
    fn temperature_lowers_frequency() {
        let a = small_array(2);
        let cold = a.true_frequency(0, Environment::at_temperature(0.0));
        let hot = a.true_frequency(0, Environment::at_temperature(80.0));
        assert!(hot < cold, "frequency must drop with temperature");
    }

    #[test]
    fn voltage_raises_frequency() {
        let a = small_array(3);
        let low = a.true_frequency(0, Environment::at_voltage(1.1));
        let high = a.true_frequency(0, Environment::at_voltage(1.3));
        assert!(high > low, "frequency must rise with voltage");
    }

    #[test]
    fn measurement_noise_has_requested_scale() {
        let a = small_array(4);
        let mut rng = StdRng::seed_from_u64(99);
        let env = Environment::nominal();
        let truth = a.true_frequency(5, env);
        let xs: Vec<f64> = (0..4000)
            .map(|_| a.measure(5, env, &mut rng) - truth)
            .collect();
        let sd = ropuf_numeric::stats::std_dev(&xs);
        assert!(
            (sd - a.noise_sigma_hz()).abs() / a.noise_sigma_hz() < 0.1,
            "sd {sd}"
        );
    }

    #[test]
    fn averaging_reduces_noise() {
        let a = small_array(5);
        let mut rng = StdRng::seed_from_u64(100);
        let env = Environment::nominal();
        let truth = a.true_frequency(3, env);
        let xs: Vec<f64> = (0..500)
            .map(|_| a.measure_averaged(3, env, 25, &mut rng) - truth)
            .collect();
        let sd = ropuf_numeric::stats::std_dev(&xs);
        assert!(sd < 0.35 * a.noise_sigma_hz(), "sd {sd} not ~sigma/5");
    }

    #[test]
    fn quantization_to_grid() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = RoArrayBuilder::new(ArrayDims::new(4, 4))
            .resolution_hz(1000.0)
            .build(&mut rng);
        let f = a.measure(0, Environment::nominal(), &mut rng);
        assert!((f / 1000.0 - (f / 1000.0).round()).abs() < 1e-9);
    }

    #[test]
    fn crossover_temperature_solves_linear_delta() {
        let a = small_array(7);
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                if let Some(tc) = a.crossover_temperature(i, j) {
                    let d = a.true_delta(i, j, Environment::at_temperature(tc));
                    assert!(d.abs() < 1e-3, "pair ({i},{j}) delta {d} at {tc}");
                }
            }
        }
    }

    #[test]
    fn clone_is_same_device() {
        let a = small_array(8);
        let b = a.clone();
        let env = Environment::nominal();
        for i in 0..a.len() {
            assert_eq!(a.true_frequency(i, env), b.true_frequency(i, env));
        }
    }

    #[test]
    fn different_seeds_are_different_devices() {
        let a = small_array(10);
        let b = small_array(11);
        let env = Environment::nominal();
        let same = (0..a.len())
            .filter(|&i| (a.true_frequency(i, env) - b.true_frequency(i, env)).abs() < 1.0)
            .count();
        assert!(same < a.len() / 4, "devices should differ");
    }

    #[test]
    fn measure_all_matches_single() {
        let a = small_array(12);
        let env = Environment::nominal();
        let mut r1 = StdRng::seed_from_u64(55);
        let mut r2 = StdRng::seed_from_u64(55);
        let all = a.measure_all(env, &mut r1);
        let single: Vec<f64> = (0..a.len()).map(|i| a.measure(i, env, &mut r2)).collect();
        assert_eq!(all, single);
    }

    #[test]
    fn measure_all_into_reuses_buffer_and_matches_allocating_path() {
        let a = small_array(13);
        let env = Environment::nominal();
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        // Dirty, over-sized scratch: contents must be fully replaced.
        let mut scratch = vec![f64::NAN; a.len() + 9];
        let cap = {
            scratch.clear();
            scratch.capacity()
        };
        for round in 0..3 {
            a.measure_all_into(env, &mut r1, &mut scratch);
            let fresh = a.measure_all(env, &mut r2);
            assert_eq!(scratch, fresh, "round {round}");
            assert_eq!(scratch.capacity(), cap, "no reallocation, round {round}");
        }
    }
}
