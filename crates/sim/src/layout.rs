//! Physical layout of the RO array.
//!
//! ROs are laid out as a two-dimensional grid (paper Section II) but are
//! labelled with a univariate index `i ∈ [0, N)` everywhere else in the
//! workspace. This module fixes the index ↔ coordinate mapping:
//! `i = y * cols + x` (row-major, x increasing left-to-right).

use std::fmt;

/// Dimensions of a rectangular RO array.
///
/// # Examples
///
/// ```
/// use ropuf_sim::ArrayDims;
///
/// let d = ArrayDims::new(10, 4); // the 4×10 array of the paper's Fig. 6a
/// assert_eq!(d.len(), 40);
/// assert_eq!(d.xy(13), (3, 1));
/// assert_eq!(d.index(3, 1), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayDims {
    cols: usize,
    rows: usize,
}

impl ArrayDims {
    /// Creates dimensions with `cols` columns (x axis) and `rows` rows
    /// (y axis).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "array dimensions must be positive");
        Self { cols, rows }
    }

    /// Number of columns (x extent).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (y extent).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of ROs, `N = cols × rows`.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Returns `false`; dimensions are never empty (both extents positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Coordinates `(x, y)` of RO `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn xy(&self, i: usize) -> (usize, usize) {
        assert!(i < self.len(), "RO index {i} out of range");
        (i % self.cols, i / self.cols)
    }

    /// Univariate index of the RO at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn index(&self, x: usize, y: usize) -> usize {
        assert!(x < self.cols && y < self.rows, "coordinates out of range");
        y * self.cols + x
    }

    /// Iterates over all `(i, x, y)` triples in index order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.len()).map(move |i| {
            let (x, y) = self.xy(i);
            (i, x, y)
        })
    }

    /// The 4-neighborhood of RO `i` (up to four adjacent indices).
    pub fn neighbors4(&self, i: usize) -> Vec<usize> {
        let (x, y) = self.xy(i);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(self.index(x - 1, y));
        }
        if x + 1 < self.cols {
            out.push(self.index(x + 1, y));
        }
        if y > 0 {
            out.push(self.index(x, y - 1));
        }
        if y + 1 < self.rows {
            out.push(self.index(x, y + 1));
        }
        out
    }

    /// A serpentine (boustrophedon) path visiting every RO exactly once,
    /// with each step moving to a 4-neighbor. This is the canonical
    /// "chain of neighbors" used by the pairing schemes (paper
    /// Section IV-A).
    pub fn serpentine(&self) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.len());
        for y in 0..self.rows {
            if y % 2 == 0 {
                for x in 0..self.cols {
                    path.push(self.index(x, y));
                }
            } else {
                for x in (0..self.cols).rev() {
                    path.push(self.index(x, y));
                }
            }
        }
        path
    }
}

impl fmt::Display for ArrayDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_xy_roundtrip() {
        let d = ArrayDims::new(7, 5);
        for i in 0..d.len() {
            let (x, y) = d.xy(i);
            assert_eq!(d.index(x, y), i);
        }
    }

    #[test]
    fn serpentine_is_hamiltonian_neighbor_path() {
        let d = ArrayDims::new(6, 4);
        let p = d.serpentine();
        assert_eq!(p.len(), d.len());
        let mut seen = vec![false; d.len()];
        for &i in &p {
            assert!(!seen[i], "revisit of {i}");
            seen[i] = true;
        }
        for w in p.windows(2) {
            assert!(
                d.neighbors4(w[0]).contains(&w[1]),
                "{} and {} are not neighbors",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn neighbors_of_corner_and_center() {
        let d = ArrayDims::new(4, 4);
        assert_eq!(d.neighbors4(0).len(), 2);
        let center = d.index(1, 1);
        assert_eq!(d.neighbors4(center).len(), 4);
    }

    #[test]
    fn iter_coords_in_order() {
        let d = ArrayDims::new(3, 2);
        let v: Vec<_> = d.iter_coords().collect();
        assert_eq!(v[0], (0, 0, 0));
        assert_eq!(v[4], (4, 1, 1));
        assert_eq!(v.len(), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        ArrayDims::new(0, 3);
    }

    #[test]
    fn display_rows_by_cols() {
        assert_eq!(ArrayDims::new(32, 16).to_string(), "16x32");
    }
}
