//! Ring-oscillator (RO) array simulator.
//!
//! The DATE 2014 paper evaluates its helper-data-manipulation attacks
//! against RO PUF prototypes on FPGA. This crate is the workspace's
//! substitute substrate (see `DESIGN.md` §5): a Monte-Carlo model of an
//! RO array with exactly the structure the paper assumes:
//!
//! * a **systematic** spatially-correlated component, modelled as a
//!   low-degree polynomial surface `f(x, y)` (paper Fig. 2 shows a linear
//!   trend plus roughness; the entropy distiller of Section V-A models it
//!   with polynomial regression);
//! * a **random** per-RO component (the "surface roughness", the only
//!   desired entropy source);
//! * **measurement noise** plus counter quantization (discrete counter
//!   values make Δf = 0 possible, paper Section III-B);
//! * **linear environmental dependence**: frequencies increase with supply
//!   voltage and decrease with temperature (Section III-A), with per-RO
//!   slope spread so that pair frequency curves can cross over temperature
//!   (the premise of the temperature-aware cooperative construction,
//!   Fig. 3).
//!
//! # Examples
//!
//! ```
//! use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let array = RoArrayBuilder::new(ArrayDims::new(8, 4)).build(&mut rng);
//! let f = array.measure(0, Environment::nominal(), &mut rng);
//! assert!(f > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod env;
pub mod layout;
pub mod variation;

pub use array::{RoArray, RoArrayBuilder};
pub use env::{Environment, TemperatureRange};
pub use layout::ArrayDims;
pub use variation::VariationProfile;
