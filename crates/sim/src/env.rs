//! Environmental operating point of the device.

/// Temperature and supply voltage at which a measurement is taken.
///
/// The paper's reliability model (Section III-A): RO frequencies increase
/// with supply voltage and decrease with temperature. The temperature-aware
/// cooperative construction operates within a user-defined range
/// `[t_min, t_max]`.
///
/// # Examples
///
/// ```
/// use ropuf_sim::Environment;
///
/// let hot = Environment::at_temperature(80.0);
/// assert_eq!(hot.temperature_c, 80.0);
/// assert_eq!(hot.voltage_v, Environment::nominal().voltage_v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Die temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Supply voltage in volts.
    pub voltage_v: f64,
}

impl Environment {
    /// Nominal enrollment conditions: 25 °C, 1.20 V.
    pub fn nominal() -> Self {
        Self {
            temperature_c: 25.0,
            voltage_v: 1.20,
        }
    }

    /// Nominal voltage at the given temperature.
    pub fn at_temperature(temperature_c: f64) -> Self {
        Self {
            temperature_c,
            ..Self::nominal()
        }
    }

    /// Nominal temperature at the given supply voltage.
    pub fn at_voltage(voltage_v: f64) -> Self {
        Self {
            voltage_v,
            ..Self::nominal()
        }
    }

    /// `steps` operating points sweeping the temperature range
    /// `[t_min, t_max]` at nominal voltage, endpoints included
    /// (`steps == 1` yields just `t_min`).
    ///
    /// Replaces the hand-rolled `linspace`-then-`at_temperature` loops
    /// in the harness binaries and the verifier traffic scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`, a bound is non-finite, or
    /// `t_min > t_max`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ropuf_sim::Environment;
    ///
    /// let points: Vec<Environment> = Environment::sweep(0.0, 70.0, 8).collect();
    /// assert_eq!(points.len(), 8);
    /// assert_eq!(points[0].temperature_c, 0.0);
    /// assert_eq!(points[7].temperature_c, 70.0);
    /// ```
    pub fn sweep(t_min: f64, t_max: f64, steps: usize) -> impl Iterator<Item = Self> + Clone {
        assert!(steps >= 1, "need at least one sweep step");
        let range = TemperatureRange::new(t_min, t_max);
        let temps = if steps == 1 {
            vec![range.min_c]
        } else {
            range.linspace(steps)
        };
        temps.into_iter().map(Self::at_temperature)
    }
}

impl Default for Environment {
    fn default() -> Self {
        Self::nominal()
    }
}

/// An inclusive temperature operating range `[min_c, max_c]`.
///
/// Used by the temperature-aware cooperative construction (paper
/// Section IV-D) for pair classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureRange {
    /// Lower bound in °C.
    pub min_c: f64,
    /// Upper bound in °C.
    pub max_c: f64,
}

impl TemperatureRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `min_c > max_c` or either bound is non-finite.
    pub fn new(min_c: f64, max_c: f64) -> Self {
        assert!(
            min_c.is_finite() && max_c.is_finite(),
            "bounds must be finite"
        );
        assert!(min_c <= max_c, "min must not exceed max");
        Self { min_c, max_c }
    }

    /// The commercial range 0–70 °C.
    pub fn commercial() -> Self {
        Self::new(0.0, 70.0)
    }

    /// Width of the range in °C.
    pub fn width(&self) -> f64 {
        self.max_c - self.min_c
    }

    /// Whether `t` lies inside the range.
    pub fn contains(&self, t: f64) -> bool {
        (self.min_c..=self.max_c).contains(&t)
    }

    /// Clamps `t` into the range.
    pub fn clamp(&self, t: f64) -> f64 {
        t.clamp(self.min_c, self.max_c)
    }

    /// `n` evenly spaced temperatures covering the range (endpoints
    /// included; `n ≥ 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least the two endpoints");
        let step = self.width() / (n - 1) as f64;
        (0..n).map(|i| self.min_c + step * i as f64).collect()
    }
}

impl Default for TemperatureRange {
    fn default() -> Self {
        Self::commercial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_values() {
        let e = Environment::nominal();
        assert_eq!(e.temperature_c, 25.0);
        assert_eq!(e.voltage_v, 1.2);
        assert_eq!(Environment::default(), e);
    }

    #[test]
    fn sweep_covers_endpoints_at_nominal_voltage() {
        let points: Vec<Environment> = Environment::sweep(10.0, 50.0, 5).collect();
        assert_eq!(points.len(), 5);
        assert_eq!(points[0].temperature_c, 10.0);
        assert_eq!(points[4].temperature_c, 50.0);
        for w in points.windows(2) {
            assert!((w[1].temperature_c - w[0].temperature_c - 10.0).abs() < 1e-9);
        }
        for p in &points {
            assert_eq!(p.voltage_v, Environment::nominal().voltage_v);
        }
        // A single step degenerates to the lower bound.
        let single: Vec<Environment> = Environment::sweep(25.0, 80.0, 1).collect();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].temperature_c, 25.0);
    }

    #[test]
    #[should_panic(expected = "at least one sweep step")]
    fn empty_sweep_panics() {
        let _ = Environment::sweep(0.0, 1.0, 0);
    }

    #[test]
    fn range_contains_and_clamp() {
        let r = TemperatureRange::commercial();
        assert!(r.contains(0.0));
        assert!(r.contains(70.0));
        assert!(!r.contains(-0.1));
        assert_eq!(r.clamp(100.0), 70.0);
        assert_eq!(r.clamp(-40.0), 0.0);
    }

    #[test]
    fn linspace_covers_endpoints() {
        let r = TemperatureRange::new(0.0, 70.0);
        let ts = r.linspace(8);
        assert_eq!(ts.len(), 8);
        assert_eq!(ts[0], 0.0);
        assert_eq!(*ts.last().unwrap(), 70.0);
        for w in ts.windows(2) {
            assert!((w[1] - w[0] - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn inverted_range_panics() {
        TemperatureRange::new(10.0, 0.0);
    }
}
