//! The detector's false-positive bound, as a property: a fleet that is
//! **never manipulated** — genuine helper blobs, honest clients, benign
//! pacing — is never `Flagged` under nominal operating noise, for any
//! master seed, fleet size or scheme mix the strategy draws.
//!
//! Occasional `Reject` verdicts are allowed (a noisy reconstruction is
//! an honest failure, and the streak threshold exists precisely so
//! isolated noise does not escalate); `Flagged` is the defender crying
//! attack, and a benign fleet must never trigger it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedScheme, GROUP_TAG};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::{Device, HelperDataScheme};
use ropuf_numeric::splitmix64 as mix;
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
use ropuf_verifier::{device_auth_response, AuthRequest, DetectorConfig, Verifier};

fn provision(
    master_seed: u64,
    id: u64,
    dims: ArrayDims,
    scheme: &dyn HelperDataScheme,
) -> Option<Device> {
    let mut array_rng = StdRng::seed_from_u64(mix(master_seed ^ mix(id)));
    let array = RoArrayBuilder::new(dims).build(&mut array_rng);
    Device::provision(array, scheme.clone_box(), mix(master_seed ^ mix(id ^ 0xA5))).ok()
}

proptest! {
    #[test]
    fn benign_fleet_is_never_flagged(master_seed in any::<u64>(),
                                     devices in 1usize..5,
                                     auths in 4usize..12) {
        let config = DetectorConfig::default();
        let verifier = Verifier::new(4, config);
        let lisa = LisaScheme::new(LisaConfig::default());
        let group = GroupBasedScheme::new(GroupBasedConfig::default());

        let mut fleet: Vec<(u64, Device)> = Vec::new();
        for id in 0..devices as u64 {
            // Alternate the scheme mix; skip devices whose sampled
            // array legitimately cannot enroll.
            let (tag, dims, scheme): (u8, ArrayDims, &dyn HelperDataScheme) = if id % 2 == 0 {
                (LISA_TAG, ArrayDims::new(16, 8), &lisa)
            } else {
                (GROUP_TAG, ArrayDims::new(10, 4), &group)
            };
            if let Some(device) = provision(master_seed, id, dims, scheme) {
                verifier.enroll(id, tag, device.helper(), device.enrolled_key()).unwrap();
                fleet.push((id, device));
            }
        }

        // Benign pacing: per-device requests spaced well outside the
        // rate window.
        let gap = config.rate_window + 1;
        for k in 0..auths {
            for (id, device) in fleet.iter_mut() {
                let nonce = format!("fp-{id}-{k}").into_bytes();
                let response =
                    device_auth_response(device, &nonce, Environment::nominal());
                let verdict = verifier.authenticate(&AuthRequest {
                    device_id: *id,
                    now: k as u64 * gap,
                    nonce,
                    response,
                    presented_helper: Some(device.helper().to_vec()),
                });
                prop_assert!(
                    !verdict.is_flagged(),
                    "benign device {id} flagged at auth {k}: {verdict:?}"
                );
            }
        }
        for (id, _) in &fleet {
            prop_assert!(verifier.flag_info(*id).is_none());
        }
    }
}
