//! Property tests for the durable codecs, mirroring the wire-protocol
//! suite in `crates/proto/tests/wire_props.rs`:
//!
//! 1. **Roundtrip** — arbitrary fleets survive the v2 snapshot codec
//!    and WAL record sequences survive the frame codec, bit for bit.
//! 2. **Hostility** — byte soup, strict prefixes and point mutations
//!    of valid encodings produce typed errors; the decoders never
//!    panic and never over-allocate from forged lengths.
//! 3. **Equivalence** — loading the same fleet through the v2 binary
//!    path and the v1 JSON path yields semantically equal registries,
//!    with the documented difference (v1 resets detector state, v2
//!    preserves flags) pinned down, plus the v1 → v2 migration path.

use proptest::collection::vec;
use proptest::prelude::*;

use ropuf_verifier::store::snapshot::{self, SnapshotV2Error};
use ropuf_verifier::store::wal::{WalDecodeError, WalReader, WalRecord};
use ropuf_verifier::{DetectorConfig, EnrollmentRecord, FlagReason, ShardedRegistry};

type FleetEntry = (u64, EnrollmentRecord, Option<(u64, FlagReason)>);

/// Deterministically expands per-device seed bytes into a fleet with
/// strictly ascending ids, varied helper sizes and a mix of flagged /
/// unflagged devices (the vendored proptest has no composite
/// strategies, so structure is derived from flat byte vectors).
fn fleet_from(seeds: &[u8]) -> Vec<FleetEntry> {
    let mut id = 0u64;
    seeds
        .iter()
        .map(|&s| {
            id += 1 + u64::from(s % 7) * 1000;
            let record = EnrollmentRecord {
                scheme_tag: s % 5,
                helper: vec![s; usize::from(s % 41)],
                key_digest: [s.wrapping_mul(31); 32],
            };
            let flag = (s % 3 == 0).then(|| {
                let reason = FlagReason::from_code(s % 4).expect("codes 0..=3 are valid");
                (u64::from(s) * 977, reason)
            });
            (id, record, flag)
        })
        .collect()
}

/// The fleet's mutation history as WAL records: every enrollment, then
/// a flag record per flagged device.
fn wal_records(fleet: &[FleetEntry]) -> Vec<WalRecord> {
    let mut records = Vec::new();
    for (id, record, _) in fleet {
        records.push(WalRecord::Enroll {
            device_id: *id,
            record: record.clone(),
        });
    }
    for (id, _, flag) in fleet {
        if let Some((at, reason)) = flag {
            records.push(WalRecord::Flag {
                device_id: *id,
                at: *at,
                reason: *reason,
            });
        }
    }
    records
}

proptest! {
    /// v2 snapshot roundtrip: decode(encode(fleet)) reproduces every
    /// device, record and flag, and a load → re-encode is
    /// byte-identical (the format is canonical).
    #[test]
    fn v2_snapshot_roundtrips_arbitrary_fleets(
        seeds in vec(any::<u8>(), 0..24),
        shards in 1usize..12,
    ) {
        let fleet = fleet_from(&seeds);
        let bytes = snapshot::encode(shards, &fleet);

        let decoded = snapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.shards, shards);
        prop_assert_eq!(decoded.devices.len(), fleet.len());
        for (device, (id, record, flag)) in decoded.devices.iter().zip(&fleet) {
            prop_assert_eq!(device.device_id, *id);
            prop_assert_eq!(&device.record, record);
            prop_assert_eq!(device.flag, *flag);
        }

        let registry = ShardedRegistry::from_snapshot_v2(&bytes, DetectorConfig::default())
            .expect("own encoding loads");
        prop_assert_eq!(registry.snapshot_v2(), bytes);
    }

    /// Every strict prefix of a v2 snapshot fails with a typed error —
    /// the trailing CRC makes any cut detectable.
    #[test]
    fn v2_strict_prefixes_are_typed_errors(seeds in vec(any::<u8>(), 1..12)) {
        let fleet = fleet_from(&seeds);
        let bytes = snapshot::encode(3, &fleet);
        for cut in 0..bytes.len() {
            prop_assert!(
                snapshot::decode(&bytes[..cut]).is_err(),
                "prefix of length {} decoded", cut
            );
        }
    }

    /// Any single-byte change to a v2 snapshot is rejected: CRC-32
    /// detects every one-byte corruption, including in the CRC itself.
    #[test]
    fn v2_point_mutations_are_rejected(
        seeds in vec(any::<u8>(), 0..12),
        flip in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let fleet = fleet_from(&seeds);
        let mut bytes = snapshot::encode(2, &fleet);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip | 1; // guaranteed to change the byte
        prop_assert!(snapshot::decode(&bytes).is_err());
    }

    /// Byte soup never panics the snapshot decoder, and a forged
    /// device count cannot drive allocation past the byte budget.
    #[test]
    fn v2_byte_soup_never_panics(soup in vec(any::<u8>(), 0..600)) {
        let _ = snapshot::decode(&soup);
        // Worst case: valid magic + version glued onto soup.
        let mut framed = snapshot::MAGIC.to_vec();
        framed.extend_from_slice(&snapshot::VERSION.to_le_bytes());
        framed.extend_from_slice(&soup);
        let _ = snapshot::decode(&framed);
    }

    /// WAL frame sequences roundtrip in order through the reader.
    #[test]
    fn wal_sequences_roundtrip(seeds in vec(any::<u8>(), 0..24)) {
        let fleet = fleet_from(&seeds);
        let records = wal_records(&fleet);
        let mut bytes = Vec::new();
        for r in &records {
            r.encode_into(&mut bytes);
        }
        let mut reader = WalReader::new(&bytes);
        for expected in &records {
            let got = reader.next().expect("record present").expect("valid");
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(reader.next().is_none(), "clean end of log");
        prop_assert_eq!(reader.offset(), bytes.len());
    }

    /// Cutting a WAL segment at an arbitrary offset yields exactly the
    /// fully-contained prefix of records, then either a clean end (cut
    /// on a boundary) or one typed torn-tail error — never a panic,
    /// never a phantom record.
    #[test]
    fn wal_truncation_yields_exactly_the_contained_prefix(
        seeds in vec(any::<u8>(), 1..16),
        cut_seed in any::<u64>(),
    ) {
        let fleet = fleet_from(&seeds);
        let records = wal_records(&fleet);
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            r.encode_into(&mut bytes);
            boundaries.push(bytes.len());
        }
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();

        let mut reader = WalReader::new(&bytes[..cut]);
        for expected in &records[..complete] {
            let got = reader.next().expect("contained record").expect("valid");
            prop_assert_eq!(&got, expected);
        }
        match reader.next() {
            None => prop_assert!(
                boundaries.contains(&cut),
                "clean end only on a record boundary (cut {})", cut
            ),
            Some(Err(_)) => prop_assert!(
                !boundaries.contains(&cut),
                "torn tail only mid-record (cut {})", cut
            ),
            Some(Ok(r)) => prop_assert!(false, "phantom record {r:?} past the cut"),
        }
    }

    /// WAL byte soup: the reader terminates without panicking, and a
    /// mutated valid stream fails with a typed error at or before the
    /// mutated frame.
    #[test]
    fn wal_byte_soup_and_mutations_never_panic(
        soup in vec(any::<u8>(), 0..400),
        seeds in vec(any::<u8>(), 1..8),
        flip in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let mut reader = WalReader::new(&soup);
        while let Some(next) = reader.next() {
            if next.is_err() {
                break; // the reader stays put on errors; stop like recovery does
            }
        }

        let mut bytes = Vec::new();
        for r in wal_records(&fleet_from(&seeds)) {
            r.encode_into(&mut bytes);
        }
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip | 1;
        let mut reader = WalReader::new(&bytes);
        while let Some(next) = reader.next() {
            match next {
                Ok(_) => {}
                Err(
                    WalDecodeError::CrcMismatch { .. }
                    | WalDecodeError::IncompleteHeader { .. }
                    | WalDecodeError::IncompleteBody { .. }
                    | WalDecodeError::OversizeRecord { .. }
                    | WalDecodeError::BadRecord(_)
                    | WalDecodeError::UnknownRecordType(_)
                    | WalDecodeError::UnknownFlagReason(_),
                ) => break,
            }
        }
    }

    /// Loading the same fleet through the v2 binary snapshot and the
    /// v1 JSON snapshot yields the same enrollment records, and the
    /// documented difference holds: v2 preserves flags, v1 resets
    /// detector state. The v1 → v2 migration path (`load v1, save v2`)
    /// then re-enters the durable world losslessly for records.
    #[test]
    fn v1_and_v2_loads_are_semantically_equivalent(
        seeds in vec(any::<u8>(), 0..16),
        shards in 1usize..8,
    ) {
        let fleet = fleet_from(&seeds);
        let v2 = ShardedRegistry::from_snapshot_v2(
            &snapshot::encode(shards, &fleet),
            DetectorConfig::default(),
        ).expect("v2 loads");
        let v1 = ShardedRegistry::from_snapshot(&v2.snapshot_json(), DetectorConfig::default())
            .expect("v1 loads its own emission");

        prop_assert_eq!(v1.len(), v2.len());
        for (id, record, flag) in &fleet {
            prop_assert_eq!(v1.record(*id), Some(record.clone()));
            prop_assert_eq!(v2.record(*id), Some(record.clone()));
            // v2 preserves flags; v1 (documented) resets detector state.
            prop_assert_eq!(v2.flag_info(*id), *flag);
            prop_assert_eq!(v1.flag_info(*id), None);
        }

        // Migration: v1-loaded registry saved as v2 and reloaded keeps
        // every record; the auto-loader sniffs both formats.
        let migrated = ShardedRegistry::load_snapshot_auto(
            &v1.snapshot_v2(),
            DetectorConfig::default(),
        ).expect("migrated v2 loads");
        let via_json = ShardedRegistry::load_snapshot_auto(
            v1.snapshot_json().as_bytes(),
            DetectorConfig::default(),
        ).expect("auto-loader still takes v1");
        for (id, record, _) in &fleet {
            prop_assert_eq!(migrated.record(*id), Some(record.clone()));
            prop_assert_eq!(via_json.record(*id), Some(record.clone()));
        }
    }
}

/// Non-property pin: the typed error taxonomy is reachable — a forged
/// count, a bad magic, an unsupported version and a truncated body
/// each produce their own variant (not a catch-all).
#[test]
fn v2_error_taxonomy_is_precise() {
    let fleet = fleet_from(&[1, 2, 3]);
    let good = snapshot::encode(2, &fleet);

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        snapshot::decode(&bad_magic),
        Err(SnapshotV2Error::BadMagic)
    ));

    assert!(matches!(
        snapshot::decode(&good[..10]),
        Err(SnapshotV2Error::TooShort { len: 10 })
    ));
}
