//! Crash-injection recovery suite for the durable registry.
//!
//! The contract under test: recovery from a store directory whose
//! active WAL segment was cut at **any** byte offset — every record
//! boundary and every offset inside a record — yields a
//! prefix-consistent registry (exactly the mutations whose records are
//! fully contained before the cut, in order), never panics, and never
//! resurrects a flag whose record was dropped. Plus: the same sweep on
//! top of a compacted snapshot base, corruption (not just truncation)
//! stopping replay, a corrupt snapshot falling back to an older valid
//! one, and a recovered fleet whose replayed traffic verdicts are
//! identical to the never-crashed fleet's.

use std::fs;
use std::path::PathBuf;

use ropuf_constructions::DeviceResponse;
use ropuf_verifier::store::wal::{WalDecodeError, WalReader, WalRecord, FRAME_HEADER};
use ropuf_verifier::store::{self, StoreOptions};
use ropuf_verifier::{
    client_tag, AuthRequest, AuthVerdict, DetectorConfig, EnrollmentRecord, FlagReason,
    ShardedRegistry, Verifier,
};

const LISA_TAG: u8 = b'L';

/// Unique scratch directory per test; recreated clean on entry.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ropuf-recovery-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn record(fill: u8) -> EnrollmentRecord {
    EnrollmentRecord {
        scheme_tag: LISA_TAG,
        helper: vec![LISA_TAG, 1, fill, fill.wrapping_mul(3)],
        key_digest: [fill; 32],
    }
}

/// The scripted mutation history the raw truncation sweep uses: a mix
/// of enrollments and flag transitions with differing record sizes, so
/// cuts land in headers, bodies, and boundaries of both kinds.
fn script() -> Vec<WalRecord> {
    vec![
        WalRecord::Enroll {
            device_id: 1,
            record: record(1),
        },
        WalRecord::Enroll {
            device_id: 2,
            record: record(2),
        },
        WalRecord::Flag {
            device_id: 1,
            at: 10,
            reason: FlagReason::RateBudget,
        },
        WalRecord::Enroll {
            device_id: 3,
            record: record(3),
        },
        WalRecord::Flag {
            device_id: 3,
            at: 30,
            reason: FlagReason::FailureStreak,
        },
    ]
}

/// Encodes `records` into one segment's bytes, returning the byte
/// boundaries after each record (boundary 0 = empty prefix).
fn encode_segment(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0usize];
    for r in records {
        r.encode_into(&mut bytes);
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Expected state after replaying the first `n` records of a segment
/// over `base_ids`: newly enrolled ids and `(device, at, reason)`
/// flags (for base or newly-enrolled devices).
fn expected_state(
    records: &[WalRecord],
    n: usize,
    base_ids: &[u64],
) -> (Vec<u64>, Vec<(u64, u64, FlagReason)>) {
    let mut enrolled = Vec::new();
    let mut flags = Vec::new();
    for r in &records[..n] {
        match r {
            WalRecord::Enroll { device_id, .. } => enrolled.push(*device_id),
            WalRecord::Flag {
                device_id,
                at,
                reason,
            } => {
                if enrolled.contains(device_id) || base_ids.contains(device_id) {
                    flags.push((*device_id, *at, *reason));
                }
            }
        }
    }
    (enrolled, flags)
}

/// Asserts a recovered registry holds exactly `base` + the
/// fully-contained prefix of `records`, for the sweep cut at `cut`.
#[allow(clippy::type_complexity)]
fn assert_prefix_consistent(
    registry: &ShardedRegistry,
    base: &[(u64, Option<(u64, FlagReason)>)],
    records: &[WalRecord],
    boundaries: &[usize],
    cut: usize,
) {
    let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
    let base_ids: Vec<u64> = base.iter().map(|(id, _)| *id).collect();
    let (enrolled, flags) = expected_state(records, complete, &base_ids);

    assert_eq!(registry.len(), base.len() + enrolled.len(), "cut at {cut}");
    for (id, base_flag) in base {
        assert!(registry.record(*id).is_some(), "cut at {cut}: base {id}");
        // A base device's flag is its snapshot flag unless a contained
        // WAL record flags it (first flag wins, so a snapshot flag is
        // never overwritten by replay).
        let wal_flag = flags
            .iter()
            .find(|(fid, _, _)| fid == id)
            .map(|(_, at, reason)| (*at, *reason));
        assert_eq!(
            registry.flag_info(*id),
            base_flag.or(wal_flag),
            "cut at {cut}: flag of base device {id}"
        );
    }
    for id in &enrolled {
        assert!(registry.record(*id).is_some(), "cut at {cut}: device {id}");
    }
    // Flags: exactly the fully-recorded ones — a flag whose record was
    // dropped by the cut must never resurrect.
    let mut expected_flagged: Vec<u64> = base
        .iter()
        .filter(|(_, f)| f.is_some())
        .map(|(id, _)| *id)
        .chain(flags.iter().map(|(id, _, _)| *id))
        .collect();
    expected_flagged.sort_unstable();
    expected_flagged.dedup();
    assert_eq!(registry.flagged_devices(), expected_flagged, "cut at {cut}");
    for (id, at, reason) in &flags {
        if base_ids.contains(id) {
            continue; // base devices asserted above (snapshot flag wins)
        }
        assert_eq!(
            registry.flag_info(*id),
            Some((*at, *reason)),
            "cut at {cut}: flag of device {id}"
        );
    }
}

#[test]
fn every_truncation_offset_recovers_prefix_consistent() {
    let records = script();
    let (bytes, boundaries) = encode_segment(&records);
    let dir = scratch("sweep");
    for cut in 0..=bytes.len() {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // The crashed process's active segment, cut mid-write.
        fs::write(dir.join("wal-00000000000000000001.log"), &bytes[..cut]).unwrap();

        let (registry, report) =
            store::recover(&dir, 4, DetectorConfig::default()).expect("recovery never fails");
        assert_prefix_consistent(&registry, &[], &records, &boundaries, cut);

        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        let (enrolled, flags) = expected_state(&records, complete, &[]);
        assert_eq!(report.enrolls_applied as usize, enrolled.len(), "cut {cut}");
        assert_eq!(report.flags_applied as usize, flags.len(), "cut {cut}");
        assert_eq!(
            report.torn_tail.is_some(),
            !boundaries.contains(&cut),
            "cut at {cut}: tear reported iff the cut is mid-record"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Same sweep, but the cut segment sits on top of a compacted snapshot
/// whose devices (one of them flagged) must survive **every** cut.
/// The store directory is built through the real durable API, not
/// hand-assembled bytes: open, enroll, flag, compact, mutate, "crash".
#[test]
fn truncation_sweep_on_a_compacted_snapshot_base() {
    let dir = scratch("snapbase");
    let (verifier, _) =
        Verifier::open_durable(&dir, 2, DetectorConfig::default(), StoreOptions::default())
            .unwrap();
    verifier.registry().enroll(10, record(10)).unwrap();
    verifier.registry().enroll(11, record(11)).unwrap();
    // Flag device 11 through the serving path: a consecutive-failure
    // streak (default streak budget is 4).
    for i in 0..4 {
        verifier.observe_raw(11, i * 100, None, false);
    }
    let base_flag = verifier.flag_info(11).expect("streak latched the flag");
    verifier.compact().unwrap();

    // Post-snapshot mutations land in the fresh active segment.
    verifier.registry().enroll(12, record(12)).unwrap();
    for i in 0..4 {
        verifier.observe_raw(10, 1000 + i * 100, None, false);
    }
    assert!(verifier.flag_info(10).is_some());
    verifier.sync().unwrap();
    drop(verifier); // crash

    // Exactly one snapshot and one WAL segment should remain.
    let wal_files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
        .collect();
    assert_eq!(wal_files.len(), 1, "compaction pruned superseded segments");
    let segment = &wal_files[0];
    let bytes = fs::read(segment).unwrap();

    // Parse the real segment to learn its records and boundaries.
    let mut reader = WalReader::new(&bytes);
    let mut records = Vec::new();
    let mut boundaries = vec![0usize];
    while let Some(next) = reader.next() {
        records.push(next.expect("uncut segment is fully valid"));
        boundaries.push(reader.offset());
    }
    assert_eq!(
        records.len(),
        2,
        "segment holds the enroll of 12 and the flag of 10"
    );

    let base = [(10, None), (11, Some(base_flag))];
    for cut in 0..=bytes.len() {
        fs::write(segment, &bytes[..cut]).unwrap();
        let (registry, report) =
            store::recover(&dir, 4, DetectorConfig::default()).expect("recovery never fails");
        assert_eq!(report.snapshot_seq, Some(1), "snapshot is always the base");
        assert_prefix_consistent(&registry, &base, &records, &boundaries, cut);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corruption_mid_segment_stops_replay_at_the_bad_frame() {
    let records = script();
    let (bytes, boundaries) = encode_segment(&records);
    let dir = scratch("corrupt");
    fs::create_dir_all(&dir).unwrap();
    // Flip one byte inside record 3's body (device 3's enrollment).
    let mut corrupted = bytes.clone();
    let target = boundaries[3] + FRAME_HEADER + 1;
    corrupted[target] ^= 0xFF;
    fs::write(dir.join("wal-00000000000000000001.log"), &corrupted).unwrap();

    let (registry, report) = store::recover(&dir, 4, DetectorConfig::default()).unwrap();
    // Records before the corrupt frame applied (two enrolls + one
    // flag); the corrupt enroll and everything after dropped.
    assert_eq!(registry.len(), 2);
    assert!(registry.record(3).is_none(), "corrupt enroll not applied");
    assert_eq!(registry.flagged_devices(), vec![1]);
    let torn = report.torn_tail.expect("corruption reported");
    assert_eq!(torn.offset, boundaries[3]);
    assert!(matches!(torn.error, WalDecodeError::CrcMismatch { .. }));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_older_valid_one() {
    let dir = scratch("snapfallback");
    fs::create_dir_all(&dir).unwrap();
    let older = ShardedRegistry::new(2, DetectorConfig::default());
    older.enroll(1, record(1)).unwrap();
    fs::write(
        dir.join("snapshot-00000000000000000001.v2"),
        older.snapshot_v2(),
    )
    .unwrap();
    let newer = ShardedRegistry::new(2, DetectorConfig::default());
    newer.enroll(1, record(1)).unwrap();
    newer.enroll(2, record(2)).unwrap();
    let mut newer_bytes = newer.snapshot_v2();
    let len = newer_bytes.len();
    newer_bytes[len / 2] ^= 0xFF; // corrupt the newer snapshot
    fs::write(dir.join("snapshot-00000000000000000003.v2"), newer_bytes).unwrap();

    let (registry, report) = store::recover(&dir, 4, DetectorConfig::default()).unwrap();
    assert_eq!(report.snapshot_seq, Some(1), "fell back to the valid base");
    assert_eq!(report.snapshots_skipped, 1);
    assert_eq!(registry.len(), 1);
    assert!(registry.record(1).is_some());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_of_missing_directory_is_empty_not_an_error() {
    let dir = scratch("missing"); // never created
    let (registry, report) = store::recover(&dir, 4, DetectorConfig::default()).unwrap();
    assert!(registry.is_empty());
    assert_eq!(report, store::RecoveryReport::default());
}

// ---------------------------------------------------------------------
// Replay equivalence: recovered == never-crashed.
// ---------------------------------------------------------------------

/// Deterministic xorshift stream for traffic synthesis.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One auth request against `device_id`: genuine (correct tag for its
/// `record(fill)` digest) or a failure, per `genuine`.
fn request(device_id: u64, now: u64, genuine: bool, seed: u64) -> AuthRequest {
    let nonce = seed.to_le_bytes().to_vec();
    let response = if genuine {
        DeviceResponse::Tag(client_tag(&[device_id as u8; 32], &nonce))
    } else {
        DeviceResponse::Failure
    };
    AuthRequest {
        device_id,
        now,
        nonce,
        response,
        presented_helper: None,
    }
}

/// After a crash, latched flags are durable but soft detector state
/// (failure streaks in progress, rate-window entries) is not — that is
/// the documented contract. So a replay is verdict-identical iff the
/// pre-crash traffic leaves no soft state behind: every unflagged
/// device ends on a success (streak reset) and post-crash timestamps
/// sit far past the rate window. This test builds exactly that
/// schedule and asserts the recovered fleet answers the post-crash
/// traffic identically to a fleet that never crashed.
#[test]
fn recovered_fleet_replays_identically_to_never_crashed() {
    let dir = scratch("replay");
    let (durable, _) =
        Verifier::open_durable(&dir, 4, DetectorConfig::default(), StoreOptions::default())
            .unwrap();
    let control = Verifier::new(4, DetectorConfig::default());

    let fleet: Vec<u64> = (1..=16).collect();
    for &id in &fleet {
        durable.registry().enroll(id, record(id as u8)).unwrap();
        control.registry().enroll(id, record(id as u8)).unwrap();
    }

    // Pre-crash: flag devices 3 and 7 outright (failure streaks); give
    // everyone else mixed traffic ending on a genuine success.
    let mut seed = 0x5EED_CAFE_F00D_u64;
    let mut pre = Vec::new();
    for &id in &fleet {
        if id == 3 || id == 7 {
            for k in 0..4 {
                pre.push(request(id, k * 50, false, xorshift(&mut seed)));
            }
        } else {
            pre.push(request(id, 10, id % 2 == 0, xorshift(&mut seed)));
            pre.push(request(id, 400, true, xorshift(&mut seed)));
        }
    }
    for r in &pre {
        let a = durable.authenticate(r);
        let b = control.authenticate(r);
        assert_eq!(a, b, "pre-crash divergence on device {}", r.device_id);
    }
    drop(durable); // crash: no compaction, no explicit sync

    let (recovered, report) =
        Verifier::open_durable(&dir, 4, DetectorConfig::default(), StoreOptions::default())
            .unwrap();
    assert_eq!(report.enrolls_applied, fleet.len() as u64);
    assert_eq!(report.flags_applied, 2);
    assert!(report.torn_tail.is_none(), "clean shutdown, clean log");

    // Same durable state, bit for bit: flags and records.
    for &id in &fleet {
        assert_eq!(recovered.flag_info(id), control.flag_info(id), "{id}");
        assert_eq!(
            recovered.registry().record(id),
            control.registry().record(id)
        );
    }

    // Post-crash traffic, far past the rate window: verdict streams
    // from the recovered fleet and the never-crashed fleet must match
    // exactly — including Flagged rejections from 3 and 7 and fresh
    // streak-latches accumulated entirely after the crash (device 12).
    let mut post = Vec::new();
    for step in 0..6u64 {
        for &id in &fleet {
            let genuine = id != 12 && (id + step) % 3 != 0;
            let now = 1_000_000 + step * 1_000 + id;
            post.push(request(id, now, genuine, xorshift(&mut seed)));
        }
    }
    let got: Vec<AuthVerdict> = post.iter().map(|r| recovered.authenticate(r)).collect();
    let want: Vec<AuthVerdict> = post.iter().map(|r| control.authenticate(r)).collect();
    assert_eq!(got, want, "replay over recovered fleet diverged");
    assert_eq!(
        recovered.flag_info(12),
        control.flag_info(12),
        "post-crash streak latched identically"
    );
    let _ = fs::remove_dir_all(&dir);
}
