//! The authentication service: verdicts for genuine and hostile
//! traffic, single and batched.
//!
//! [`Verifier`] glues the [`ShardedRegistry`] to per-device
//! [`DeviceDetector`](crate::DeviceDetector)s: one `authenticate` call
//! takes the device's shard lock exactly once, does record lookup, HMAC
//! verification against the enrolled key digest, and online attack
//! detection, and returns the combined [`AuthVerdict`]. The batched
//! variant amortizes shard locking across a whole request batch, which
//! is what the `perf_verifier` harness measures scaling with shard
//! count.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ropuf_constructions::{Device, DeviceResponse};
use ropuf_hash::{hmac_sha256, sha256};
use ropuf_numeric::BitVec;
use ropuf_sim::Environment;
use ropuf_telemetry::{Counter, Registry as TelemetryRegistry, Snapshot as TelemetrySnapshot};

use crate::detector::{AuthVerdict, DetectorConfig, FlagReason};
use crate::registry::{
    DeviceEntry, EnrollmentRecord, RegistryError, ShardedRegistry, SnapshotError,
};
use crate::store::faults::StoreFaults;
use crate::store::snapshot::SnapshotV2Error;
use crate::store::{self, DeviceStore, RecoveryReport, StoreError, StoreOptions};

/// Derives the verification credential stored in the registry: the
/// SHA-256 digest of the enrolled key bytes. See the crate-level
/// protocol notes — the registry holds this digest, never the key.
pub fn auth_key(key: &BitVec) -> [u8; 32] {
    sha256(&key.to_bytes())
}

/// The tag a client with key digest `key_digest` answers `nonce` with.
pub fn client_tag(key_digest: &[u8; 32], nonce: &[u8]) -> [u8; 32] {
    hmac_sha256(key_digest, nonce)
}

/// Client-side authentication step for a real (simulated) device:
/// reconstruct the key from current helper NVM at the given operating
/// point, derive the key digest, and answer the verifier's nonce.
/// Reconstruction failure is reported as [`DeviceResponse::Failure`],
/// exactly like any other key-dependent application behavior.
pub fn device_auth_response(device: &mut Device, nonce: &[u8], env: Environment) -> DeviceResponse {
    match device.reconstruct_key(env) {
        Ok(key) => DeviceResponse::Tag(client_tag(&auth_key(&key), nonce)),
        Err(_) => DeviceResponse::Failure,
    }
}

/// One device's inputs to [`Verifier::enroll_batch`]: the same data
/// [`Verifier::enroll`] takes, with the key already reduced to its
/// digest so bulk callers (wire enrollment, snapshot imports) never
/// need the raw key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEnrollment {
    /// Identity to enroll under.
    pub device_id: u64,
    /// Wire tag of the scheme the device was enrolled with.
    pub scheme_tag: u8,
    /// The helper blob as enrolled (integrity reference).
    pub helper: Vec<u8>,
    /// The derived verification credential ([`auth_key`]).
    pub key_digest: [u8; 32],
}

/// One authentication request as the verifier sees it.
#[derive(Debug, Clone)]
pub struct AuthRequest {
    /// Claimed device identity.
    pub device_id: u64,
    /// Logical timestamp (non-decreasing per device) driving the
    /// rate-budget window.
    pub now: u64,
    /// The challenge nonce this request answers.
    pub nonce: Vec<u8>,
    /// The device's response: a tag, or an observable reconstruction
    /// failure.
    pub response: DeviceResponse,
    /// The device's current helper NVM contents when the gateway can
    /// read them (`None` skips the integrity signal for this request).
    pub presented_helper: Option<Vec<u8>>,
}

impl AuthRequest {
    /// A borrowed view of this request (no byte copies).
    pub fn as_query(&self) -> AuthQuery<'_> {
        AuthQuery {
            device_id: self.device_id,
            now: self.now,
            nonce: &self.nonce,
            response: self.response,
            presented_helper: self.presented_helper.as_deref(),
        }
    }
}

/// Borrowed twin of [`AuthRequest`]: the shape the wire handler serves
/// directly from a decoded frame, so the serving hot path never copies
/// nonce or helper bytes.
#[derive(Debug, Clone, Copy)]
pub struct AuthQuery<'a> {
    /// Claimed device identity.
    pub device_id: u64,
    /// Logical timestamp (non-decreasing per device).
    pub now: u64,
    /// The challenge nonce this request answers.
    pub nonce: &'a [u8],
    /// The device's response.
    pub response: DeviceResponse,
    /// The device's current helper NVM contents, when readable.
    pub presented_helper: Option<&'a [u8]>,
}

/// Reusable scratch for [`Verifier::authenticate_batch_with`]: the
/// per-shard index buckets, kept allocated across batches so
/// steady-state batched serving stops churning the allocator.
#[derive(Debug, Default)]
pub struct BatchScratch {
    buckets: Vec<Vec<usize>>,
    latched: Vec<(u64, u64, FlagReason)>,
}

impl BatchScratch {
    /// An empty scratch; buckets grow to the verifier's shard count on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Pre-resolved handles onto the verifier's hot-path counters: verdict
/// accounting must cost a striped `Relaxed` add, not a registry lookup.
#[derive(Debug)]
struct VerifierMetrics {
    accept: Counter,
    reject: Counter,
    /// Indexed by [`flag_reason_index`].
    flagged: [Counter; 4],
}

/// All four flag reasons, in [`flag_reason_index`] order.
const FLAG_REASONS: [FlagReason; 4] = [
    FlagReason::HelperMismatch,
    FlagReason::MalformedHelper,
    FlagReason::RateBudget,
    FlagReason::FailureStreak,
];

fn flag_reason_index(reason: FlagReason) -> usize {
    match reason {
        FlagReason::HelperMismatch => 0,
        FlagReason::MalformedHelper => 1,
        FlagReason::RateBudget => 2,
        FlagReason::FailureStreak => 3,
    }
}

impl VerifierMetrics {
    fn new(telemetry: &TelemetryRegistry) -> Self {
        Self {
            accept: telemetry.counter("verifier.auth.accept", &[]),
            reject: telemetry.counter("verifier.auth.reject", &[]),
            flagged: FLAG_REASONS.map(|reason| {
                telemetry.counter("verifier.auth.flagged", &[("reason", reason.label())])
            }),
        }
    }

    #[inline]
    fn note(&self, verdict: AuthVerdict) {
        match verdict {
            AuthVerdict::Accept => self.accept.inc(),
            AuthVerdict::Reject => self.reject.inc(),
            AuthVerdict::Flagged(reason) => self.flagged[flag_reason_index(reason)].inc(),
        }
    }
}

/// The defender-side verifier service.
///
/// Thread-safe by construction: all mutable state lives behind the
/// registry's per-shard locks, so `&Verifier` can be shared across a
/// serving thread pool.
#[derive(Debug)]
pub struct Verifier {
    registry: ShardedRegistry,
    telemetry: TelemetryRegistry,
    metrics: VerifierMetrics,
}

impl Verifier {
    /// Wraps a registry, wiring up this verifier's own telemetry
    /// namespace (`verifier.*`). Every constructor funnels through
    /// here, so the metrics exist — at zero — from the first request.
    fn assemble(registry: ShardedRegistry) -> Self {
        let telemetry = TelemetryRegistry::new();
        let metrics = VerifierMetrics::new(&telemetry);
        Self {
            registry,
            telemetry,
            metrics,
        }
    }

    /// Creates a verifier with an empty `shards`-shard registry; every
    /// enrolled device gets a detector built from `detector_config`.
    pub fn new(shards: usize, detector_config: DetectorConfig) -> Self {
        Self::assemble(ShardedRegistry::new(shards, detector_config))
    }

    /// Restores a verifier from a legacy `ropuf-verifier/v1` registry
    /// snapshot (detectors start fresh — v1 cannot carry flag state).
    ///
    /// # Errors
    ///
    /// Propagates [`SnapshotError`] from the registry loader.
    pub fn from_snapshot(
        snapshot: &str,
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        Ok(Self::assemble(ShardedRegistry::from_snapshot(
            snapshot,
            detector_config,
        )?))
    }

    /// Restores a verifier from a `ropuf-verifier/v2` binary snapshot,
    /// including persisted quarantine flags.
    ///
    /// # Errors
    ///
    /// Propagates the typed [`SnapshotV2Error`] from the decoder.
    pub fn from_snapshot_v2(
        bytes: &[u8],
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotV2Error> {
        Ok(Self::assemble(ShardedRegistry::from_snapshot_v2(
            bytes,
            detector_config,
        )?))
    }

    /// Restores a verifier from a snapshot in either format (sniffed by
    /// magic bytes) — the migration entry point: load whatever is on
    /// disk, save v2 via [`Verifier::snapshot_v2`].
    ///
    /// # Errors
    ///
    /// Propagates the loader's error for whichever format was sniffed.
    pub fn load_snapshot_auto(
        bytes: &[u8],
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        Ok(Self::assemble(ShardedRegistry::load_snapshot_auto(
            bytes,
            detector_config,
        )?))
    }

    /// Opens a durable verifier backed by a store directory: recovers
    /// the registry from the newest valid snapshot + WAL tail (see
    /// [`store::recover`]), then attaches a fresh write-ahead segment
    /// so every subsequent enrollment and flag transition is logged
    /// before it is acknowledged. Returns the verifier together with
    /// the [`RecoveryReport`] describing what recovery found.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory or a WAL segment cannot be
    /// read, or the new active segment cannot be created. Malformed
    /// *content* is never an error — it bounds the recovered prefix.
    pub fn open_durable(
        dir: &Path,
        shards: usize,
        detector_config: DetectorConfig,
        options: StoreOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_durable_faulted(dir, shards, detector_config, options, None)
    }

    /// [`Verifier::open_durable`] with a deterministic fault schedule
    /// armed on the store before it is shared — the chaos-test entry
    /// point: the scheduled WAL/snapshot operations fail exactly where
    /// the schedule says, exercising the read-only degraded latch.
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::open_durable`].
    pub fn open_durable_faulted(
        dir: &Path,
        shards: usize,
        detector_config: DetectorConfig,
        options: StoreOptions,
        faults: Option<StoreFaults>,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let (mut registry, report) = store::recover(dir, shards, detector_config)?;
        let verifier = {
            let telemetry = TelemetryRegistry::new();
            let mut store = DeviceStore::open(dir, options)?;
            if let Some(faults) = faults {
                store.inject_faults(faults);
            }
            store.attach_telemetry(&telemetry);
            registry.attach_store(Arc::new(store));
            let metrics = VerifierMetrics::new(&telemetry);
            Self {
                registry,
                telemetry,
                metrics,
            }
        };
        // What recovery found, as gauges: scraping a freshly restarted
        // server shows how much state the WAL replay reconstructed.
        let t = &verifier.telemetry;
        t.gauge("verifier.recovery.enrolls_applied", &[])
            .set(report.enrolls_applied);
        t.gauge("verifier.recovery.flags_applied", &[])
            .set(report.flags_applied);
        t.gauge("verifier.recovery.segments_replayed", &[])
            .set(report.segments_replayed as u64);
        t.gauge("verifier.recovery.snapshots_skipped", &[])
            .set(report.snapshots_skipped as u64);
        t.gauge("verifier.recovery.duplicate_enrolls", &[])
            .set(report.duplicate_enrolls);
        t.gauge("verifier.recovery.unknown_flag_devices", &[])
            .set(report.unknown_flag_devices);
        t.gauge("verifier.recovery.torn_tail", &[])
            .set(u64::from(report.torn_tail.is_some()));
        Ok((verifier, report))
    }

    /// The registry as a `ropuf-verifier/v2` binary snapshot — the
    /// save format (compact, CRC-protected, flag-preserving).
    pub fn snapshot_v2(&self) -> Vec<u8> {
        self.registry.snapshot_v2()
    }

    /// Compacts the durable store: closes the active WAL segment,
    /// writes the full registry as that segment's snapshot, and prunes
    /// every file the snapshot supersedes. Serving continues
    /// throughout — only the rotation itself holds the append lock.
    /// Returns the new snapshot's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotDurable`] on an in-memory verifier;
    /// [`StoreError::Io`] if rotation or the snapshot write fails.
    pub fn compact(&self) -> Result<u64, StoreError> {
        let started = Instant::now();
        let store = self.registry.store().ok_or(StoreError::NotDurable)?;
        let closed = store.rotate()?;
        let bytes = self.registry.snapshot_v2();
        store.install_snapshot(closed, &bytes)?;
        // Cold path: the registry lookup (idempotent registration) is
        // fine here, unlike the per-request counters.
        self.telemetry
            .histogram("verifier.compaction.duration_ns", &[])
            .record_duration(started.elapsed());
        Ok(closed)
    }

    /// fsyncs the durable store's active segment — everything
    /// acknowledged so far survives a crash after this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotDurable`] on an in-memory verifier;
    /// [`StoreError::Io`] if the fsync fails.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.registry.store().ok_or(StoreError::NotDurable)?.sync()
    }

    /// The underlying registry (snapshots, flag inspection, stats).
    pub fn registry(&self) -> &ShardedRegistry {
        &self.registry
    }

    /// This verifier's telemetry registry (`verifier.*` namespace) —
    /// server layers merge it into their own at scrape time.
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// A telemetry snapshot with the sampled gauges refreshed: per-shard
    /// entry counts are read from the registry at the moment of the
    /// scrape (nothing on the enrollment path maintains them).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        for (shard, len) in self.registry.shard_lens().into_iter().enumerate() {
            self.telemetry
                .gauge(
                    "verifier.registry.entries",
                    &[("shard", &shard.to_string())],
                )
                .set(len as u64);
        }
        self.telemetry.snapshot()
    }

    /// Enrolls a device from its enrollment outputs: stores the scheme
    /// tag, the helper blob as integrity reference, and the derived
    /// key digest — not the key.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id is already enrolled.
    pub fn enroll(
        &self,
        device_id: u64,
        scheme_tag: u8,
        helper: &[u8],
        key: &BitVec,
    ) -> Result<(), RegistryError> {
        self.registry.enroll(
            device_id,
            EnrollmentRecord {
                scheme_tag,
                helper: helper.to_vec(),
                key_digest: auth_key(key),
            },
        )
    }

    /// Enrolls a whole fleet in one shard-partitioned call: entries
    /// are bucketed by shard and each shard lock is taken **once** per
    /// batch instead of once per device. Results come back in input
    /// order; duplicates (against the registry or within the batch)
    /// report [`RegistryError::Duplicate`] individually, exactly as a
    /// per-device [`Verifier::enroll`] loop would.
    pub fn enroll_batch(&self, batch: Vec<BatchEnrollment>) -> Vec<Result<(), RegistryError>> {
        self.registry.enroll_batch(
            batch
                .into_iter()
                .map(|e| {
                    (
                        e.device_id,
                        EnrollmentRecord {
                            scheme_tag: e.scheme_tag,
                            helper: e.helper,
                            key_digest: e.key_digest,
                        },
                    )
                })
                .collect(),
        )
    }

    /// Serves one authentication request.
    ///
    /// An unknown device id is a plain [`AuthVerdict::Reject`]: the
    /// registry cannot attribute detector state to an identity it never
    /// enrolled.
    pub fn authenticate(&self, request: &AuthRequest) -> AuthVerdict {
        self.authenticate_query(request.as_query())
    }

    /// Serves one authentication request from a borrowed view — the
    /// zero-copy entry the wire handler uses: shard lock once, cached
    /// HMAC-midstate tag verification, detector update.
    pub fn authenticate_query(&self, query: AuthQuery<'_>) -> AuthVerdict {
        let mut latched: Option<(u64, FlagReason)> = None;
        let verdict = self
            .registry
            .with_entry(query.device_id, |entry| {
                let (verdict, newly) = Self::judge_tracked(entry, &query);
                latched = newly;
                verdict
            })
            .unwrap_or(AuthVerdict::Reject);
        // WAL append outside the shard lock: a flag latch is rare, and
        // serving other devices in the shard must not stall on disk.
        if let Some((at, reason)) = latched {
            self.registry.log_flag(query.device_id, at, reason);
        }
        self.metrics.note(verdict);
        verdict
    }

    /// Serves a batch of requests, locking each shard **once** per
    /// batch instead of once per request. Verdicts come back in request
    /// order; requests for the same device are judged in their slice
    /// order, so batched and sequential serving agree.
    pub fn authenticate_batch(&self, requests: &[AuthRequest]) -> Vec<AuthVerdict> {
        let queries: Vec<AuthQuery<'_>> = requests.iter().map(AuthRequest::as_query).collect();
        let mut verdicts = Vec::new();
        self.authenticate_batch_with(&queries, &mut BatchScratch::new(), &mut verdicts);
        verdicts
    }

    /// [`Verifier::authenticate_batch`] over borrowed queries with
    /// caller-owned scratch: the per-shard buckets and the verdict
    /// vector are reused across batches, so a steady-state batch loop
    /// allocates nothing. `verdicts` is cleared and refilled in request
    /// order.
    pub fn authenticate_batch_with(
        &self,
        queries: &[AuthQuery<'_>],
        scratch: &mut BatchScratch,
        verdicts: &mut Vec<AuthVerdict>,
    ) {
        verdicts.clear();
        verdicts.resize(queries.len(), AuthVerdict::Reject);
        scratch
            .buckets
            .resize(self.registry.shard_count(), Vec::new());
        for bucket in &mut scratch.buckets {
            bucket.clear();
        }
        for (i, query) in queries.iter().enumerate() {
            scratch.buckets[self.registry.shard_of(query.device_id)].push(i);
        }
        scratch.latched.clear();
        for (shard_index, indices) in scratch.buckets.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let latched = &mut scratch.latched;
            self.registry.with_shard(shard_index, |shard| {
                for &i in indices {
                    let query = &queries[i];
                    if let Some(entry) = shard.get_mut(query.device_id) {
                        let (verdict, newly) = Self::judge_tracked(entry, query);
                        verdicts[i] = verdict;
                        if let Some((at, reason)) = newly {
                            latched.push((query.device_id, at, reason));
                        }
                    }
                }
            });
        }
        // Flag latches hit the WAL after every shard lock is released.
        for &(device_id, at, reason) in &scratch.latched {
            self.registry.log_flag(device_id, at, reason);
        }
        for &verdict in verdicts.iter() {
            self.metrics.note(verdict);
        }
    }

    /// Reference batch path that re-derives the full HMAC key schedule
    /// per request instead of using the cached midstates. Exists so the
    /// `perf_hotpath` bench can measure the cache's speedup in one run
    /// and so tests can pin the fast path to it verdict-for-verdict;
    /// production callers want [`Verifier::authenticate_batch`].
    pub fn authenticate_batch_reference(&self, requests: &[AuthRequest]) -> Vec<AuthVerdict> {
        let mut verdicts = vec![AuthVerdict::Reject; requests.len()];
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.registry.shard_count()];
        for (i, request) in requests.iter().enumerate() {
            buckets[self.registry.shard_of(request.device_id)].push(i);
        }
        let mut latched: Vec<(u64, u64, FlagReason)> = Vec::new();
        for (shard_index, indices) in buckets.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let latched = &mut latched;
            self.registry.with_shard(shard_index, |shard| {
                for &i in indices {
                    let request = &requests[i];
                    if let Some(entry) = shard.get_mut(request.device_id) {
                        let auth_ok = match &request.response {
                            DeviceResponse::Tag(tag) => {
                                tag == &client_tag(&entry.record.key_digest, &request.nonce)
                            }
                            DeviceResponse::Failure => false,
                        };
                        let before = entry.detector.flagged().is_some();
                        verdicts[i] = entry.detector.observe(
                            request.now,
                            request.presented_helper.as_deref(),
                            auth_ok,
                        );
                        if !before {
                            if let Some((at, reason)) = entry.detector.flagged() {
                                latched.push((request.device_id, at, reason));
                            }
                        }
                    }
                }
            });
        }
        for (device_id, at, reason) in latched {
            self.registry.log_flag(device_id, at, reason);
        }
        for &verdict in &verdicts {
            self.metrics.note(verdict);
        }
        verdicts
    }

    /// Monitoring entry for closed-loop scenarios where an application
    /// gateway already established whether the response verified (e.g.
    /// the campaign engine observing an attack's oracle traffic):
    /// bypasses tag recomputation and feeds the detector directly.
    pub fn observe_raw(
        &self,
        device_id: u64,
        now: u64,
        presented_helper: Option<&[u8]>,
        auth_ok: bool,
    ) -> AuthVerdict {
        let mut latched: Option<(u64, FlagReason)> = None;
        let verdict = self
            .registry
            .with_entry(device_id, |entry| {
                let before = entry.detector.flagged().is_some();
                let verdict = entry.detector.observe(now, presented_helper, auth_ok);
                if !before {
                    latched = entry.detector.flagged();
                }
                verdict
            })
            .unwrap_or(AuthVerdict::Reject);
        if let Some((at, reason)) = latched {
            self.registry.log_flag(device_id, at, reason);
        }
        self.metrics.note(verdict);
        verdict
    }

    /// `(timestamp, reason)` of a device's first flag, if flagged.
    pub fn flag_info(&self, device_id: u64) -> Option<(u64, FlagReason)> {
        self.registry.flag_info(device_id)
    }

    /// Record lookup + tag verification + detection under one held
    /// shard lock. Tag verification runs from the entry's cached HMAC
    /// midstates — no key-schedule derivation, no allocation.
    fn judge(entry: &mut DeviceEntry, query: &AuthQuery<'_>) -> AuthVerdict {
        let auth_ok = match &query.response {
            DeviceResponse::Tag(tag) => entry.hmac_key.verify(query.nonce, tag),
            DeviceResponse::Failure => false,
        };
        entry
            .detector
            .observe(query.now, query.presented_helper, auth_ok)
    }

    /// [`Verifier::judge`] plus flag-transition tracking: the second
    /// element is `Some((at, reason))` exactly when this query latched
    /// the device's flag, which is what the durable layer records in
    /// the WAL. (The verdict alone cannot tell — an already-quarantined
    /// device answers `Flagged` on every query.)
    fn judge_tracked(
        entry: &mut DeviceEntry,
        query: &AuthQuery<'_>,
    ) -> (AuthVerdict, Option<(u64, FlagReason)>) {
        let before = entry.detector.flagged().is_some();
        let verdict = Self::judge(entry, query);
        let newly = if before {
            None
        } else {
            entry.detector.flagged()
        };
        (verdict, newly)
    }
}

/// Convenience: the default detector thresholds.
impl Default for Verifier {
    /// An 8-shard verifier with [`DetectorConfig::default`] thresholds.
    fn default() -> Self {
        Self::new(8, DetectorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::FlagReason;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
    use ropuf_sim::{ArrayDims, RoArrayBuilder};

    fn provisioned(seed: u64) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        Device::provision(
            array,
            Box::new(LisaScheme::new(LisaConfig::default())),
            seed,
        )
        .unwrap()
    }

    /// A request with genuine traffic shape: correct tag, enrolled
    /// helper presented.
    fn genuine_request(device: &mut Device, id: u64, now: u64, nonce: &[u8]) -> AuthRequest {
        AuthRequest {
            device_id: id,
            now,
            nonce: nonce.to_vec(),
            response: device_auth_response(device, nonce, Environment::nominal()),
            presented_helper: Some(device.helper().to_vec()),
        }
    }

    #[test]
    fn genuine_device_authenticates() {
        let mut device = provisioned(1);
        let v = Verifier::new(4, DetectorConfig::default());
        v.enroll(10, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        let req = genuine_request(&mut device, 10, 0, b"n-0");
        assert!(v.authenticate(&req).is_accept());
        assert_eq!(v.flag_info(10), None);
    }

    #[test]
    fn unknown_device_rejects() {
        let v = Verifier::new(4, DetectorConfig::default());
        let req = AuthRequest {
            device_id: 99,
            now: 0,
            nonce: b"n".to_vec(),
            response: DeviceResponse::Failure,
            presented_helper: None,
        };
        assert_eq!(v.authenticate(&req), AuthVerdict::Reject);
    }

    #[test]
    fn wrong_tag_rejects_and_streak_flags() {
        let device = provisioned(2);
        let cfg = DetectorConfig {
            failure_streak: 3,
            ..DetectorConfig::default()
        };
        let v = Verifier::new(2, cfg);
        v.enroll(5, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        let forged = AuthRequest {
            device_id: 5,
            now: 0,
            nonce: b"n".to_vec(),
            response: DeviceResponse::Tag([0xAB; 32]),
            presented_helper: Some(device.helper().to_vec()),
        };
        // Space the attempts out so the rate budget stays quiet and the
        // streak signal is what fires.
        for i in 0..2u64 {
            let req = AuthRequest {
                now: i * 100,
                ..forged.clone()
            };
            assert_eq!(v.authenticate(&req), AuthVerdict::Reject);
        }
        let req = AuthRequest { now: 200, ..forged };
        assert_eq!(
            v.authenticate(&req),
            AuthVerdict::Flagged(FlagReason::FailureStreak)
        );
        assert!(v.flag_info(5).is_some());
    }

    #[test]
    fn manipulated_helper_flags_on_first_sight() {
        let mut device = provisioned(3);
        let v = Verifier::default();
        v.enroll(1, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        // The attacker wrote a (valid-format) manipulated blob; the
        // device still answers, the gateway reads the NVM.
        let mut manipulated = device.helper().to_vec();
        let last = manipulated.len() - 1;
        manipulated[last] ^= 0x01;
        device.write_helper(manipulated.clone());
        let req = AuthRequest {
            device_id: 1,
            now: 0,
            nonce: b"n".to_vec(),
            response: device_auth_response(&mut device, b"n", Environment::nominal()),
            presented_helper: Some(manipulated),
        };
        assert!(v.authenticate(&req).is_flagged());
        assert_eq!(v.flag_info(1).map(|(t, _)| t), Some(0));
    }

    #[test]
    fn batched_equals_sequential_and_preserves_order() {
        let mut d0 = provisioned(4);
        let mut d1 = provisioned(5);
        let make = |shards: usize, d0: &mut Device, d1: &mut Device| {
            let v = Verifier::new(shards, DetectorConfig::default());
            v.enroll(0, LISA_TAG, d0.helper(), d0.enrolled_key())
                .unwrap();
            v.enroll(1, LISA_TAG, d1.helper(), d1.enrolled_key())
                .unwrap();
            v
        };
        let mut requests = Vec::new();
        for k in 0..6u64 {
            let nonce = format!("n-{k}");
            let (dev, id) = if k % 2 == 0 {
                (&mut d0, 0u64)
            } else {
                (&mut d1, 1u64)
            };
            requests.push(genuine_request(dev, id, k * 10, nonce.as_bytes()));
        }
        // Replaying the same recorded traffic batched vs sequentially
        // (fresh verifiers: detector state accumulates) must agree, at
        // any shard count.
        for shards in [1usize, 4] {
            let sequential = make(shards, &mut d0, &mut d1);
            let one_by_one: Vec<AuthVerdict> = requests
                .iter()
                .map(|r| sequential.authenticate(r))
                .collect();
            let batched = make(shards, &mut d0, &mut d1);
            let at_once = batched.authenticate_batch(&requests);
            assert_eq!(one_by_one, at_once, "shards={shards}");
            assert!(at_once.iter().all(AuthVerdict::is_accept));
        }
    }

    #[test]
    fn cached_midstate_batch_matches_reference_key_schedule_path() {
        // The cached-HmacKey fast path and the re-deriving reference
        // path must agree verdict-for-verdict on mixed traffic: genuine
        // tags, forged tags, failures, unknown devices.
        let mut d0 = provisioned(11);
        let mut d1 = provisioned(12);
        let mut requests = Vec::new();
        for k in 0..8u64 {
            let nonce = format!("mixed-{k}");
            let (dev, id) = if k % 2 == 0 {
                (&mut d0, 0u64)
            } else {
                (&mut d1, 1u64)
            };
            let mut req = genuine_request(dev, id, k * 10, nonce.as_bytes());
            match k % 4 {
                2 => req.response = DeviceResponse::Tag([0xEE; 32]), // forged
                3 => req.response = DeviceResponse::Failure,
                _ => {}
            }
            if k == 7 {
                req.device_id = 999; // unknown
            }
            requests.push(req);
        }
        let make = |d0: &Device, d1: &Device| {
            let v = Verifier::new(4, DetectorConfig::default());
            v.enroll(0, LISA_TAG, d0.helper(), d0.enrolled_key())
                .unwrap();
            v.enroll(1, LISA_TAG, d1.helper(), d1.enrolled_key())
                .unwrap();
            v
        };
        // Fresh verifiers per path: detector state accumulates.
        let fast = make(&d0, &d1).authenticate_batch(&requests);
        let reference = make(&d0, &d1).authenticate_batch_reference(&requests);
        assert_eq!(fast, reference);
    }

    #[test]
    fn batch_scratch_is_reusable_across_batches() {
        let mut device = provisioned(13);
        let v = Verifier::new(4, DetectorConfig::default());
        v.enroll(0, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        let mut scratch = BatchScratch::new();
        let mut verdicts = Vec::new();
        for round in 0..3u64 {
            let req = genuine_request(&mut device, 0, round * 100, b"r");
            let queries = [req.as_query()];
            v.authenticate_batch_with(&queries, &mut scratch, &mut verdicts);
            assert_eq!(verdicts.len(), 1, "round {round}");
            assert!(verdicts[0].is_accept(), "round {round}");
        }
    }

    #[test]
    fn batch_with_unknown_devices_rejects_those_only() {
        let mut device = provisioned(6);
        let v = Verifier::new(2, DetectorConfig::default());
        v.enroll(0, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        let good = genuine_request(&mut device, 0, 0, b"x");
        let mut stranger = good.clone();
        stranger.device_id = 777;
        let verdicts = v.authenticate_batch(&[stranger, good]);
        assert_eq!(verdicts[0], AuthVerdict::Reject);
        assert!(verdicts[1].is_accept());
    }

    #[test]
    fn enroll_batch_then_authenticate() {
        let mut d0 = provisioned(9);
        let mut d1 = provisioned(10);
        let v = Verifier::new(4, DetectorConfig::default());
        let batch = vec![
            BatchEnrollment {
                device_id: 0,
                scheme_tag: LISA_TAG,
                helper: d0.helper().to_vec(),
                key_digest: auth_key(d0.enrolled_key()),
            },
            BatchEnrollment {
                device_id: 1,
                scheme_tag: LISA_TAG,
                helper: d1.helper().to_vec(),
                key_digest: auth_key(d1.enrolled_key()),
            },
            BatchEnrollment {
                device_id: 1, // intra-batch duplicate
                scheme_tag: LISA_TAG,
                helper: d1.helper().to_vec(),
                key_digest: [0; 32],
            },
        ];
        let results = v.enroll_batch(batch);
        assert_eq!(
            results,
            vec![
                Ok(()),
                Ok(()),
                Err(RegistryError::Duplicate { device_id: 1 })
            ]
        );
        assert_eq!(v.registry().len(), 2);
        // The first occurrence's credential won, so both authenticate.
        for (id, dev) in [(0u64, &mut d0), (1u64, &mut d1)] {
            let req = genuine_request(dev, id, 0, b"post-batch");
            assert!(v.authenticate(&req).is_accept(), "device {id}");
        }
    }

    #[test]
    fn snapshot_restores_serving_state() {
        let mut device = provisioned(7);
        let v = Verifier::new(4, DetectorConfig::default());
        v.enroll(42, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        let snap = v.registry().snapshot_json();
        let restored = Verifier::from_snapshot(&snap, DetectorConfig::default()).unwrap();
        let req = genuine_request(&mut device, 42, 0, b"after-restore");
        assert!(restored.authenticate(&req).is_accept());
    }

    #[test]
    fn observe_raw_feeds_detector_directly() {
        let device = provisioned(8);
        let v = Verifier::default();
        v.enroll(3, LISA_TAG, device.helper(), device.enrolled_key())
            .unwrap();
        assert!(v.observe_raw(3, 0, Some(device.helper()), true).is_accept());
        let garbage = vec![0xEE; 9];
        assert!(v.observe_raw(3, 1, Some(&garbage), false).is_flagged());
        assert_eq!(v.observe_raw(999, 0, None, true), AuthVerdict::Reject);
    }
}
