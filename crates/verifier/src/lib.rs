//! Defender-side verifier service: sharded enrollment registry,
//! authenticated traffic serving, and online attack detection.
//!
//! The paper's attacker model rests on helper data being **public and
//! writable**, and its closing discussion (§VII) argues that what
//! separates a toy key generator from a deployable one is the defender
//! loop: helper-data integrity checks and query monitoring. This crate
//! is that missing half. It enrolls fleets of devices, serves
//! authentication traffic fast (per-shard locking, batched verification),
//! and detects helper-data-manipulation attacks online, so closed-loop
//! campaigns can measure *time-to-detection* and *queries-before-flag*
//! next to attack success.
//!
//! # Pieces
//!
//! * [`registry`] — [`ShardedRegistry`]: device-id → [`EnrollmentRecord`]
//!   `{scheme tag, helper bytes, key digest}`, hashed across N shards
//!   with per-shard locks so concurrent enrollment and authentication
//!   scale across threads. Entries live in per-shard slabs indexed by
//!   compact `u32` handles. Snapshots save as `ropuf-verifier/v2`
//!   binary ([`ShardedRegistry::snapshot_v2`]); the legacy
//!   `ropuf-verifier/v1` JSON format still loads.
//! * [`store`] — the durable storage layer: the v2 binary snapshot
//!   codec, the CRC-framed write-ahead log of enrollments and flag
//!   transitions, fsync'd segment rotation, compaction, and
//!   crash-recovery replay ([`store::recover`]). Opened through
//!   [`Verifier::open_durable`].
//! * [`detector`] — [`DeviceDetector`]: the per-device online attack
//!   detector combining three weak signals into one [`AuthVerdict`] —
//!   a helper-data integrity check against the enrolled blob
//!   (wire-format reparse + digest compare), a sliding-window
//!   query-rate budget, and a consecutive-failure counter.
//! * [`service`] — [`Verifier`]: the authentication service API,
//!   [`Verifier::authenticate`] plus the batched
//!   [`Verifier::authenticate_batch`] variant, serving mixed fleets of
//!   all four constructions; also the client-side helpers that turn a
//!   [`Device`](ropuf_constructions::Device) into verifier traffic.
//! * [`json`] — the minimal JSON reader the snapshot loader uses (the
//!   offline crate set has no `serde`).
//!
//! # Authentication protocol
//!
//! The registry never stores the PUF master key. At enrollment the
//! defender derives a verification credential — the **key digest**
//! `SHA-256(key bytes)` ([`auth_key`]) — and stores only that. A client
//! device reconstructs its key from (possibly manipulated) helper NVM,
//! derives the same digest, and answers a nonce with
//! `HMAC-SHA256(digest, nonce)` ([`client_tag`] /
//! [`device_auth_response`]); the verifier recomputes the tag from the
//! stored digest. A stolen registry therefore leaks authentication
//! credentials but not the key material other applications derive from
//! the PUF secret.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
//! use ropuf_constructions::Device;
//! use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
//! use ropuf_verifier::{device_auth_response, AuthRequest, DetectorConfig, Verifier};
//!
//! // Defender enrolls a device into a 4-shard registry.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
//! let mut device =
//!     Device::provision(array, Box::new(LisaScheme::new(LisaConfig::default())), 2).unwrap();
//! let verifier = Verifier::new(4, DetectorConfig::default());
//! verifier
//!     .enroll(7, LISA_TAG, device.helper(), device.enrolled_key())
//!     .unwrap();
//!
//! // The device authenticates: reconstruct key, answer the nonce.
//! let response = device_auth_response(&mut device, b"challenge-0", Environment::nominal());
//! let verdict = verifier.authenticate(&AuthRequest {
//!     device_id: 7,
//!     now: 0,
//!     nonce: b"challenge-0".to_vec(),
//!     response,
//!     presented_helper: Some(device.helper().to_vec()),
//! });
//! assert!(verdict.is_accept());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod json;
pub mod registry;
pub mod service;
pub mod store;

pub use detector::{AuthVerdict, DetectorConfig, DeviceDetector, FlagReason};
pub use registry::{
    shard_for, DeviceHandle, EnrollmentRecord, RegistryError, ShardedRegistry, SnapshotError,
    SCHEMA,
};
pub use service::{
    auth_key, client_tag, device_auth_response, AuthQuery, AuthRequest, BatchEnrollment,
    BatchScratch, Verifier,
};
pub use store::faults::StoreFaults;
pub use store::snapshot::SnapshotV2Error;
pub use store::{DeviceStore, RecoveryReport, StoreError, StoreOptions, SyncPolicy, TornTail};
