//! The `ropuf-verifier/v2` binary snapshot codec.
//!
//! A snapshot is one self-validating blob:
//!
//! ```text
//! ┌────────────┬─────────┬────────┬───────────┬──────────────┬───────┐
//! │ magic [8]  │ version │ shards │ devices   │ device × N   │ crc32 │
//! │ "RPUFSNP2" │ u16 LE  │ u32 LE │ count u64 │ (see below)  │ u32 LE│
//! └────────────┴─────────┴────────┴───────────┴──────────────┴───────┘
//! ```
//!
//! One device record (devices are **strictly ascending by id**, which
//! makes the encoding canonical and duplicate-free by construction):
//!
//! ```text
//! device_id u64 · scheme_tag u8 · flag u8 (0 = none,
//! 1 = flagged → at u64 · reason u8) · helper (u32 len + bytes) ·
//! key_digest [32]
//! ```
//!
//! The trailing CRC-32 (IEEE) covers every preceding byte, so a
//! truncated or bit-flipped snapshot fails closed before any of it is
//! believed. Decoding follows the `ropuf_proto` discipline: every
//! length is checked against both a semantic cap and the bytes
//! actually present *before* allocation, every malformed input maps to
//! a typed [`SnapshotV2Error`], and nothing panics.
//!
//! Unlike the legacy v1 JSON snapshot, v2 carries the detector's
//! quarantine latch — a restart no longer silently un-flags devices
//! the crashed process had caught manipulating helper data.

use std::fmt;

use ropuf_proto::codec::{Reader, Writer, MAX_BYTES};

use crate::detector::FlagReason;
use crate::registry::{EnrollmentRecord, MAX_SHARDS};
use crate::store::crc32;

/// Leading magic of every v2 snapshot.
pub const MAGIC: [u8; 8] = *b"RPUFSNP2";

/// Format version this module reads and writes.
pub const VERSION: u16 = 2;

/// Fixed prefix: magic + version + shards + device count.
const HEADER_LEN: usize = 8 + 2 + 4 + 8;

/// Smallest possible device record: id(8) + tag(1) + flag marker(1) +
/// helper length prefix(4) + digest(32). Bounds how many devices a
/// declared count can plausibly promise for the bytes present.
const MIN_DEVICE_LEN: usize = 8 + 1 + 1 + 4 + 32;

/// Typed v2 snapshot decode failure — the complete list of ways a
/// snapshot can be malformed. Decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotV2Error {
    /// Shorter than the fixed header + CRC trailer.
    TooShort {
        /// Bytes present.
        len: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// A version this build does not read.
    UnsupportedVersion(u16),
    /// Shard count of zero or beyond [`MAX_SHARDS`].
    ShardCountOutOfRange(u32),
    /// Declared device count exceeds what the bytes present could hold.
    CountOutOfBounds {
        /// The declared count.
        declared: u64,
        /// Most devices the remaining bytes could encode.
        limit: u64,
    },
    /// The trailing CRC-32 does not match the body.
    CrcMismatch {
        /// CRC stored in the snapshot.
        stored: u32,
        /// CRC computed over the body.
        computed: u32,
    },
    /// A field inside a device record failed to decode.
    Field(ropuf_proto::DecodeError),
    /// A flag record carries a reason byte no release ever wrote.
    UnknownFlagReason(u8),
    /// A flag marker byte other than 0 or 1.
    BadFlagMarker(u8),
    /// Device ids are not strictly ascending.
    OutOfOrder {
        /// Id of the previous record.
        prev: u64,
        /// The offending id.
        next: u64,
    },
    /// The same device id appears twice (reported by registry loads
    /// built from decoded snapshots; the decoder itself rejects this
    /// as [`SnapshotV2Error::OutOfOrder`]).
    DuplicateDevice(u64),
}

impl fmt::Display for SnapshotV2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotV2Error::TooShort { len } => {
                write!(f, "{len} bytes is shorter than a v2 snapshot header")
            }
            SnapshotV2Error::BadMagic => write!(f, "missing RPUFSNP2 magic"),
            SnapshotV2Error::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotV2Error::ShardCountOutOfRange(n) => {
                write!(f, "shard count {n} out of range 1..={MAX_SHARDS}")
            }
            SnapshotV2Error::CountOutOfBounds { declared, limit } => {
                write!(f, "declared {declared} devices, bytes can hold {limit}")
            }
            SnapshotV2Error::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            SnapshotV2Error::Field(e) => write!(f, "device record: {e}"),
            SnapshotV2Error::UnknownFlagReason(b) => write!(f, "unknown flag reason {b:#04x}"),
            SnapshotV2Error::BadFlagMarker(b) => write!(f, "flag marker {b:#04x} is not 0 or 1"),
            SnapshotV2Error::OutOfOrder { prev, next } => {
                write!(f, "device ids not strictly ascending: {next} after {prev}")
            }
            SnapshotV2Error::DuplicateDevice(id) => write!(f, "device {id} appears twice"),
        }
    }
}

impl std::error::Error for SnapshotV2Error {}

impl From<ropuf_proto::DecodeError> for SnapshotV2Error {
    fn from(e: ropuf_proto::DecodeError) -> Self {
        SnapshotV2Error::Field(e)
    }
}

/// One decoded device: enrollment record plus the persisted quarantine
/// flag, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDevice {
    /// The enrolled device id.
    pub device_id: u64,
    /// The durable enrollment record.
    pub record: EnrollmentRecord,
    /// `(timestamp, reason)` of the persisted flag latch.
    pub flag: Option<(u64, FlagReason)>,
}

/// A fully validated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotV2 {
    /// Shard count the registry was running with.
    pub shards: usize,
    /// Devices, strictly ascending by id.
    pub devices: Vec<SnapshotDevice>,
}

/// `true` when the bytes start with the v2 magic — the format sniff
/// behind [`crate::ShardedRegistry::load_snapshot_auto`]. (A v1
/// snapshot starts with `{`, so the formats cannot collide.)
pub fn looks_like_v2(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Encodes a fleet as a v2 snapshot. `devices` must be sorted
/// ascending by id (the registry's dump already is).
///
/// # Panics
///
/// Panics if `devices` is not strictly ascending by id — encoder
/// misuse, not input data.
pub fn encode(
    shards: usize,
    devices: &[(u64, EnrollmentRecord, Option<(u64, FlagReason)>)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 4 + devices.len() * 96);
    out.extend_from_slice(&MAGIC);
    out.put_u16(VERSION);
    out.put_u32(u32::try_from(shards).expect("shard count fits u32"));
    out.put_u64(devices.len() as u64);
    let mut prev: Option<u64> = None;
    for (device_id, record, flag) in devices {
        if let Some(p) = prev {
            assert!(
                *device_id > p,
                "snapshot devices must ascend: {device_id} after {p}"
            );
        }
        prev = Some(*device_id);
        out.put_u64(*device_id);
        out.put_u8(record.scheme_tag);
        match flag {
            None => out.put_u8(0),
            Some((at, reason)) => {
                out.put_u8(1);
                out.put_u64(*at);
                out.put_u8(reason.code());
            }
        }
        out.put_bytes(&record.helper);
        out.extend_from_slice(&record.key_digest);
    }
    let crc = crc32(&out);
    out.put_u32(crc);
    out
}

/// Decodes and fully validates a v2 snapshot.
///
/// # Errors
///
/// A typed [`SnapshotV2Error`] for any malformed input; never panics,
/// never over-allocates (device count and helper lengths are checked
/// against the bytes actually present before any allocation).
pub fn decode(bytes: &[u8]) -> Result<SnapshotV2, SnapshotV2Error> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(SnapshotV2Error::TooShort { len: bytes.len() });
    }
    if !looks_like_v2(bytes) {
        return Err(SnapshotV2Error::BadMagic);
    }
    // CRC first: nothing past the magic is believed until the whole
    // blob checks out.
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("len 4"));
    let computed = crc32(body);
    if stored != computed {
        return Err(SnapshotV2Error::CrcMismatch { stored, computed });
    }
    let mut r = Reader::new(&body[MAGIC.len()..]);
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotV2Error::UnsupportedVersion(version));
    }
    let shards = r.u32()?;
    if shards == 0 || u64::from(shards) > MAX_SHARDS {
        return Err(SnapshotV2Error::ShardCountOutOfRange(shards));
    }
    let declared = r.u64()?;
    let limit = (r.remaining() / MIN_DEVICE_LEN) as u64;
    if declared > limit {
        return Err(SnapshotV2Error::CountOutOfBounds { declared, limit });
    }
    let mut devices = Vec::with_capacity(declared as usize);
    let mut prev: Option<u64> = None;
    for _ in 0..declared {
        let device_id = r.u64()?;
        if let Some(p) = prev {
            if device_id <= p {
                return Err(SnapshotV2Error::OutOfOrder {
                    prev: p,
                    next: device_id,
                });
            }
        }
        prev = Some(device_id);
        let scheme_tag = r.u8()?;
        let flag = match r.u8()? {
            0 => None,
            1 => {
                let at = r.u64()?;
                let code = r.u8()?;
                let reason =
                    FlagReason::from_code(code).ok_or(SnapshotV2Error::UnknownFlagReason(code))?;
                Some((at, reason))
            }
            other => return Err(SnapshotV2Error::BadFlagMarker(other)),
        };
        let helper = r.bytes("helper", MAX_BYTES)?;
        let key_digest = r.digest()?;
        devices.push(SnapshotDevice {
            device_id,
            record: EnrollmentRecord {
                scheme_tag,
                helper,
                key_digest,
            },
            flag,
        });
    }
    r.finish()?;
    Ok(SnapshotV2 {
        shards: shards as usize,
        devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LISA_TAG;

    fn fleet() -> Vec<(u64, EnrollmentRecord, Option<(u64, FlagReason)>)> {
        vec![
            (
                3,
                EnrollmentRecord {
                    scheme_tag: LISA_TAG,
                    helper: vec![LISA_TAG, 1, 2, 3],
                    key_digest: [7; 32],
                },
                None,
            ),
            (
                9,
                EnrollmentRecord {
                    scheme_tag: LISA_TAG,
                    helper: vec![LISA_TAG, 1, 9],
                    key_digest: [9; 32],
                },
                Some((42, FlagReason::HelperMismatch)),
            ),
        ]
    }

    #[test]
    fn roundtrip_preserves_records_and_flags() {
        let devices = fleet();
        let bytes = encode(4, &devices);
        assert!(looks_like_v2(&bytes));
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.shards, 4);
        assert_eq!(decoded.devices.len(), 2);
        assert_eq!(decoded.devices[0].flag, None);
        assert_eq!(
            decoded.devices[1].flag,
            Some((42, FlagReason::HelperMismatch))
        );
        assert_eq!(decoded.devices[1].record, devices[1].1);
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error() {
        let bytes = encode(2, &fleet());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        decode(&bytes).unwrap();
    }

    #[test]
    fn every_point_mutation_is_rejected() {
        let bytes = encode(2, &fleet());
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x01;
            assert!(decode(&mutated).is_err(), "bit flip at byte {i} accepted");
        }
    }

    #[test]
    fn forged_count_cannot_over_allocate() {
        // Rebuild a header declaring u64::MAX devices over no bytes,
        // with a valid CRC so the count check itself is exercised.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.put_u16(VERSION);
        out.put_u32(1);
        out.put_u64(u64::MAX);
        let crc = crc32(&out);
        out.put_u32(crc);
        assert!(matches!(
            decode(&out),
            Err(SnapshotV2Error::CountOutOfBounds { .. })
        ));
    }

    #[test]
    fn out_of_order_devices_are_rejected() {
        // Hand-build a snapshot whose two devices descend (9 then 3),
        // with a valid CRC so the ordering check itself is exercised.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.put_u16(VERSION);
        out.put_u32(1);
        out.put_u64(2);
        for id in [9u64, 3] {
            out.put_u64(id);
            out.put_u8(LISA_TAG);
            out.put_u8(0);
            out.put_bytes(&[LISA_TAG, 1]);
            out.extend_from_slice(&[0u8; 32]);
        }
        let crc = crc32(&out);
        out.put_u32(crc);
        assert_eq!(
            decode(&out),
            Err(SnapshotV2Error::OutOfOrder { prev: 9, next: 3 })
        );
    }
}
