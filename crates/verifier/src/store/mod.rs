//! Durable storage for the registry: v2 snapshots + write-ahead log.
//!
//! A durable registry lives in one directory:
//!
//! ```text
//! store/
//!   snapshot-00000000000000000007.v2   last compaction's full state
//!   wal-00000000000000000008.log       closed segment
//!   wal-00000000000000000009.log       active segment (append-only)
//! ```
//!
//! One monotonically increasing sequence number orders both kinds of
//! file. The invariants:
//!
//! * **Write-ahead**: a mutation is appended (and, per
//!   [`SyncPolicy`], fsynced) to the active segment *before* it is
//!   applied in memory.
//! * **Rotation**: when the active segment passes
//!   [`StoreOptions::segment_bytes`], it is fsynced and closed, and
//!   appends continue in `wal-<seq+1>`. A fresh segment is also opened
//!   on every [`DeviceStore::open`] — recovery never appends to a file
//!   a dead process may have torn.
//! * **Compaction** ([`crate::Verifier::compact`]): rotate (so segment
//!   `S` closes), write the full registry as `snapshot-S.v2` (to a
//!   temp file, fsync, rename — the snapshot is atomic-or-absent),
//!   then delete segments `≤ S` and older snapshots. The snapshot may
//!   include mutations already landing in segment `S+1`; replaying
//!   them again is harmless (duplicate enrolls keep the first record,
//!   flag re-latches are no-ops), so recovery stays correct without
//!   stalling writers during the snapshot write.
//! * **Recovery** ([`recover`]): newest snapshot that validates (CRC +
//!   schema) is the base — corrupt ones are skipped, falling back to
//!   older snapshots or an empty registry. Then every WAL segment with
//!   a higher sequence replays in order, stopping at the first frame
//!   that fails to validate (the torn tail of a crashed append). The
//!   result is prefix-consistent: exactly the acknowledged mutations
//!   whose records survived, in order, and never a flag whose record
//!   was dropped.

pub mod faults;
pub mod snapshot;
pub mod wal;

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::detector::{DetectorConfig, FlagReason};
use crate::registry::{EnrollmentRecord, RegistryError, ShardedRegistry};
use faults::StoreFaults;
use snapshot::SnapshotV2Error;
use wal::{WalDecodeError, WalReader, WalRecord};

/// CRC-32 (IEEE 802.3, the zlib polynomial) lookup table, built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum framing both snapshot and
/// WAL records.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every append batch — strongest durability, one disk
    /// round-trip per acknowledged mutation.
    EveryRecord,
    /// fsync on segment rotation, compaction, and explicit
    /// [`DeviceStore::sync`] — the default: a crash can lose the tail
    /// of the active segment (recovery handles the tear), never
    /// corrupt it.
    #[default]
    OnRotate,
}

/// Tuning for a durable store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// When appends are fsynced.
    pub sync_policy: SyncPolicy,
    /// Rotate the active segment once it passes this many bytes.
    pub segment_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            sync_policy: SyncPolicy::default(),
            segment_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Durable-store failure.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed.
    Io {
        /// What the store was doing.
        context: &'static str,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A snapshot failed to decode.
    Snapshot(SnapshotV2Error),
    /// The operation needs a durable store but the registry was opened
    /// in-memory.
    NotDurable,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, error } => write!(f, "{context}: {error}"),
            StoreError::Snapshot(e) => write!(f, "snapshot: {e}"),
            StoreError::NotDurable => write!(f, "registry has no durable store attached"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SnapshotV2Error> for StoreError {
    fn from(e: SnapshotV2Error) -> Self {
        StoreError::Snapshot(e)
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |error| StoreError::Io { context, error }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    Wal,
    Snapshot,
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:020}.log"))
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:020}.v2"))
}

fn parse_name(name: &str) -> Option<(FileKind, u64)> {
    if let Some(seq) = name
        .strip_prefix("wal-")
        .and_then(|r| r.strip_suffix(".log"))
    {
        return seq.parse().ok().map(|s| (FileKind::Wal, s));
    }
    if let Some(seq) = name
        .strip_prefix("snapshot-")
        .and_then(|r| r.strip_suffix(".v2"))
    {
        return seq.parse().ok().map(|s| (FileKind::Snapshot, s));
    }
    None
}

/// Every recognized store file in `dir`, as `(kind, seq)` pairs.
fn list_store_files(dir: &Path) -> Result<Vec<(FileKind, u64)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err("list store directory"))? {
        let entry = entry.map_err(io_err("list store directory"))?;
        if let Some(parsed) = entry.file_name().to_str().and_then(parse_name) {
            out.push(parsed);
        }
    }
    Ok(out)
}

/// Best-effort directory fsync so renames/creates survive a crash of
/// the *filesystem* metadata, not just the file contents. Failure is
/// ignored: not all platforms support fsync on directories.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The active WAL segment behind the store's append lock.
#[derive(Debug)]
struct ActiveSegment {
    file: File,
    seq: u64,
    bytes: u64,
}

/// WAL activity counters. Detached (unregistered) by default so a bare
/// [`DeviceStore::open`] costs nothing extra;
/// [`DeviceStore::attach_telemetry`] swaps in registered handles.
#[derive(Debug, Default)]
struct StoreMetrics {
    wal_bytes: ropuf_telemetry::Counter,
    wal_fsyncs: ropuf_telemetry::Counter,
    wal_rotations: ropuf_telemetry::Counter,
    /// Transitions into the read-only degraded mode (0 → 1 in any
    /// single process lifetime; the latch never clears).
    degraded_transitions: ropuf_telemetry::Counter,
    /// Injected faults that actually fired, by kind.
    faults_injected: [ropuf_telemetry::Counter; 3],
}

/// `faults.injected{kind}` label values, in [`StoreMetrics`] order.
const FAULT_KINDS: [&str; 3] = ["wal_append", "wal_fsync", "snapshot_rename"];

/// The durable half of a registry: owns the store directory, the
/// active WAL segment, and the compaction machinery. Thread-safe —
/// appends serialize on one internal lock, which is fine because the
/// auth hot path only touches it on the rare flag transition.
#[derive(Debug)]
pub struct DeviceStore {
    dir: PathBuf,
    options: StoreOptions,
    active: Mutex<ActiveSegment>,
    io_errors: AtomicU64,
    /// Latched `true` on the first WAL append/fsync failure: the store
    /// can no longer promise write-ahead durability, so the serving
    /// layer must refuse mutations (read-only degraded mode).
    degraded: AtomicBool,
    faults: Option<StoreFaults>,
    metrics: StoreMetrics,
}

impl DeviceStore {
    /// Opens (creating if needed) the store directory and starts a
    /// fresh active segment numbered after everything already present.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory or segment cannot be
    /// created.
    pub fn open(dir: &Path, options: StoreOptions) -> Result<Self, StoreError> {
        fs::create_dir_all(dir).map_err(io_err("create store directory"))?;
        let max_seq = list_store_files(dir)?
            .into_iter()
            .map(|(_, seq)| seq)
            .max()
            .unwrap_or(0);
        let seq = max_seq + 1;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(wal_path(dir, seq))
            .map_err(io_err("create wal segment"))?;
        sync_dir(dir);
        Ok(Self {
            dir: dir.to_path_buf(),
            options,
            active: Mutex::new(ActiveSegment {
                file,
                seq,
                bytes: 0,
            }),
            io_errors: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            faults: None,
            metrics: StoreMetrics::default(),
        })
    }

    /// Arms a deterministic fault schedule: the scheduled WAL
    /// append/fsync and snapshot-rename operations return injected
    /// errors, exercising the same degraded paths a real disk failure
    /// would. Called before the store is shared (`&mut self`), like
    /// [`DeviceStore::attach_telemetry`].
    pub fn inject_faults(&mut self, faults: StoreFaults) {
        self.faults = Some(faults);
    }

    /// Registers this store's WAL counters (`verifier.wal.*`) in
    /// `telemetry`. Called before the store is shared (`&mut self`), so
    /// the serving path always sees the registered handles.
    pub fn attach_telemetry(&mut self, telemetry: &ropuf_telemetry::Registry) {
        self.metrics = StoreMetrics {
            wal_bytes: telemetry.counter("verifier.wal.bytes", &[]),
            wal_fsyncs: telemetry.counter("verifier.wal.fsyncs", &[]),
            wal_rotations: telemetry.counter("verifier.wal.rotations", &[]),
            degraded_transitions: telemetry.counter("server.degraded_transitions", &[]),
            faults_injected: FAULT_KINDS
                .map(|kind| telemetry.counter("faults.injected", &[("kind", kind)])),
        };
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the segment currently taking appends.
    pub fn active_segment_seq(&self) -> u64 {
        self.active.lock().expect("store lock poisoned").seq
    }

    /// Count of best-effort appends (flag transitions) the disk
    /// rejected. Zero in any healthy run; the serving path counts
    /// instead of failing.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// `true` once any WAL append or fsync has failed: write-ahead
    /// durability is gone and the serving layer must refuse mutations.
    /// The latch never clears within a process — recovery from a disk
    /// failure is a restart decision, not something to flap on.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Latches the read-only degraded mode, counting the transition
    /// exactly once (`server.degraded_transitions`).
    fn mark_degraded(&self) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.metrics.degraded_transitions.inc();
        }
    }

    /// Runs the armed fault schedule's hook for one operation family,
    /// counting an injection when it fires.
    fn faulted(
        &self,
        kind: usize,
        hook: impl FnOnce(&StoreFaults) -> std::io::Result<()>,
        context: &'static str,
    ) -> Result<(), StoreError> {
        if let Some(faults) = &self.faults {
            if let Err(error) = hook(faults) {
                self.metrics.faults_injected[kind].inc();
                return Err(StoreError::Io { context, error });
            }
        }
        Ok(())
    }

    /// Appends one framed buffer under the lock, rotating afterwards
    /// if the segment passed its size threshold. Any failure — real or
    /// injected — latches the degraded mode before it propagates.
    fn append_locked(&self, buf: &[u8]) -> Result<(), StoreError> {
        let mut active = self.active.lock().expect("store lock poisoned");
        let result = self.append_under_lock(&mut active, buf);
        if result.is_err() {
            self.mark_degraded();
        }
        result
    }

    fn append_under_lock(&self, active: &mut ActiveSegment, buf: &[u8]) -> Result<(), StoreError> {
        self.faulted(0, StoreFaults::on_append, "append wal record")?;
        active
            .file
            .write_all(buf)
            .map_err(io_err("append wal record"))?;
        active.bytes += buf.len() as u64;
        self.metrics.wal_bytes.add(buf.len() as u64);
        if self.options.sync_policy == SyncPolicy::EveryRecord {
            self.faulted(1, StoreFaults::on_sync, "sync wal record")?;
            active.file.sync_data().map_err(io_err("sync wal record"))?;
            self.metrics.wal_fsyncs.inc();
        }
        if active.bytes >= self.options.segment_bytes {
            self.rotate_locked(active)?;
        }
        Ok(())
    }

    /// Write-ahead logs a batch of enrollments as one append.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — the caller must then *not* apply the batch
    /// (no record, no state).
    pub fn log_enrolls<'a>(
        &self,
        items: impl Iterator<Item = (u64, &'a EnrollmentRecord)>,
    ) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(256);
        for (device_id, record) in items {
            WalRecord::Enroll {
                device_id,
                record: record.clone(),
            }
            .encode_into(&mut buf);
        }
        if buf.is_empty() {
            return Ok(());
        }
        self.append_locked(&buf)
    }

    /// Write-ahead logs a flag transition, best-effort: serving must
    /// not fail because the disk hiccuped, so errors are counted
    /// ([`DeviceStore::io_errors`]) rather than returned. The flag
    /// stays latched in memory either way.
    pub fn log_flag_best_effort(&self, device_id: u64, at: u64, reason: FlagReason) {
        let record = WalRecord::Flag {
            device_id,
            at,
            reason,
        };
        if self.append_locked(&record.encode()).is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// fsyncs the active segment — everything acknowledged so far is
    /// durable after this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the fsync fails.
    pub fn sync(&self) -> Result<(), StoreError> {
        let active = self.active.lock().expect("store lock poisoned");
        let result = self
            .faulted(1, StoreFaults::on_sync, "sync wal segment")
            .and_then(|()| active.file.sync_data().map_err(io_err("sync wal segment")));
        if result.is_err() {
            self.mark_degraded();
            return result;
        }
        self.metrics.wal_fsyncs.inc();
        Ok(())
    }

    fn rotate_locked(&self, active: &mut ActiveSegment) -> Result<u64, StoreError> {
        let synced = self
            .faulted(1, StoreFaults::on_sync, "sync wal segment")
            .and_then(|()| active.file.sync_data().map_err(io_err("sync wal segment")));
        if let Err(error) = synced {
            self.mark_degraded();
            return Err(error);
        }
        self.metrics.wal_fsyncs.inc();
        self.metrics.wal_rotations.inc();
        let closed = active.seq;
        let seq = closed + 1;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(wal_path(&self.dir, seq))
            .map_err(io_err("create wal segment"))?;
        sync_dir(&self.dir);
        *active = ActiveSegment {
            file,
            seq,
            bytes: 0,
        };
        Ok(closed)
    }

    /// fsyncs and closes the active segment, continuing appends in the
    /// next one. Returns the closed segment's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the fsync or the new segment fails.
    pub fn rotate(&self) -> Result<u64, StoreError> {
        let mut active = self.active.lock().expect("store lock poisoned");
        self.rotate_locked(&mut active)
    }

    /// Installs `bytes` as `snapshot-<seq>.v2` atomically (temp file →
    /// fsync → rename → dir fsync) and prunes everything it supersedes:
    /// WAL segments `≤ seq` and snapshots `< seq`. The second half of
    /// compaction — [`crate::Verifier::compact`] drives the whole
    /// sequence.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the snapshot cannot be written; pruning
    /// failures are ignored (stale files are re-pruned by the next
    /// compaction and never confuse recovery, which prefers the newest
    /// valid snapshot).
    pub fn install_snapshot(&self, seq: u64, bytes: &[u8]) -> Result<(), StoreError> {
        // Hold the append lock: serializes concurrent compactions and
        // pins the active segment strictly above `seq` while pruning.
        let active = self.active.lock().expect("store lock poisoned");
        assert!(active.seq > seq, "snapshot must cover only closed segments");
        let final_path = snapshot_path(&self.dir, seq);
        let tmp_path = final_path.with_extension("v2.tmp");
        {
            let mut tmp = File::create(&tmp_path).map_err(io_err("create snapshot temp file"))?;
            tmp.write_all(bytes).map_err(io_err("write snapshot"))?;
            tmp.sync_all().map_err(io_err("sync snapshot"))?;
        }
        // A failed rename leaves the previous snapshot + WAL authoritative
        // — compaction is retryable, so it does not latch degraded mode.
        self.faulted(2, StoreFaults::on_rename, "install snapshot")?;
        fs::rename(&tmp_path, &final_path).map_err(io_err("install snapshot"))?;
        sync_dir(&self.dir);
        if let Ok(files) = list_store_files(&self.dir) {
            for (kind, file_seq) in files {
                let stale = match kind {
                    FileKind::Wal => file_seq <= seq,
                    FileKind::Snapshot => file_seq < seq,
                };
                if stale {
                    let path = match kind {
                        FileKind::Wal => wal_path(&self.dir, file_seq),
                        FileKind::Snapshot => snapshot_path(&self.dir, file_seq),
                    };
                    let _ = fs::remove_file(path);
                }
            }
        }
        Ok(())
    }
}

/// Where and how a WAL segment tore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Segment the bad frame was in.
    pub segment_seq: u64,
    /// Byte offset of the bad frame within the segment.
    pub offset: usize,
    /// How the frame failed to validate.
    pub error: WalDecodeError,
}

/// What recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot used as the base, if any validated.
    pub snapshot_seq: Option<u64>,
    /// Snapshots that failed to read or decode and were skipped.
    pub snapshots_skipped: usize,
    /// WAL segments whose records were replayed (fully or to a tear).
    pub segments_replayed: usize,
    /// Enrollment records applied from the WAL.
    pub enrolls_applied: u64,
    /// Flag records applied from the WAL.
    pub flags_applied: u64,
    /// Enrollment records skipped because the device already existed
    /// (normal after compaction overlap; the first record wins).
    pub duplicate_enrolls: u64,
    /// Flag records naming devices not in the registry (counted, not
    /// fatal).
    pub unknown_flag_devices: u64,
    /// The torn final frame, if the log did not end cleanly.
    pub torn_tail: Option<TornTail>,
}

/// Rebuilds a registry from a store directory: newest valid snapshot +
/// WAL tail, stopping at the first frame that fails to validate.
/// `default_shards` applies only when no snapshot supplies a shard
/// count. A missing directory recovers to an empty registry.
///
/// # Errors
///
/// [`StoreError::Io`] only for directory/segment *read* failures —
/// malformed content is never an error here, it bounds the recovered
/// prefix (snapshots are skipped, WAL replay stops at the tear).
pub fn recover(
    dir: &Path,
    default_shards: usize,
    detector_config: DetectorConfig,
) -> Result<(ShardedRegistry, RecoveryReport), StoreError> {
    let mut report = RecoveryReport::default();
    if !dir.exists() {
        return Ok((
            ShardedRegistry::new(default_shards, detector_config),
            report,
        ));
    }
    let files = list_store_files(dir)?;

    // Base: the newest snapshot that reads and validates end to end.
    let mut snapshot_seqs: Vec<u64> = files
        .iter()
        .filter(|(kind, _)| *kind == FileKind::Snapshot)
        .map(|(_, seq)| *seq)
        .collect();
    snapshot_seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut base: Option<(u64, snapshot::SnapshotV2)> = None;
    for seq in snapshot_seqs {
        match fs::read(snapshot_path(dir, seq)) {
            Ok(bytes) => match snapshot::decode(&bytes) {
                Ok(snap) => {
                    base = Some((seq, snap));
                    break;
                }
                Err(_) => report.snapshots_skipped += 1,
            },
            Err(_) => report.snapshots_skipped += 1,
        }
    }

    let (registry, snapshot_seq) = match base {
        Some((seq, snap)) => {
            report.snapshot_seq = Some(seq);
            let registry = ShardedRegistry::new(snap.shards, detector_config);
            for device in snap.devices {
                registry
                    .enroll_recovered(device.device_id, device.record, device.flag)
                    .expect("decoded snapshot ids are strictly ascending");
            }
            (registry, seq)
        }
        None => (ShardedRegistry::new(default_shards, detector_config), 0),
    };

    // Tail: replay WAL segments newer than the base, in order, until
    // the log ends or a frame fails to validate.
    let mut wal_seqs: Vec<u64> = files
        .iter()
        .filter(|(kind, seq)| {
            *kind == FileKind::Wal && (report.snapshot_seq.is_none() || *seq > snapshot_seq)
        })
        .map(|(_, seq)| *seq)
        .collect();
    wal_seqs.sort_unstable();
    'segments: for seq in wal_seqs {
        let bytes = fs::read(wal_path(dir, seq)).map_err(io_err("read wal segment"))?;
        report.segments_replayed += 1;
        let mut reader = WalReader::new(&bytes);
        loop {
            match reader.next() {
                None => break,
                Some(Ok(WalRecord::Enroll { device_id, record })) => {
                    match registry.enroll_recovered(device_id, record, None) {
                        Ok(()) => report.enrolls_applied += 1,
                        Err(RegistryError::Duplicate { .. }) => report.duplicate_enrolls += 1,
                        Err(e) => unreachable!("recovery enroll cannot hit storage: {e}"),
                    }
                }
                Some(Ok(WalRecord::Flag {
                    device_id,
                    at,
                    reason,
                })) => {
                    let applied = registry
                        .with_entry(device_id, |e| e.detector.restore_flag(at, reason))
                        .is_some();
                    if applied {
                        report.flags_applied += 1;
                    } else {
                        report.unknown_flag_devices += 1;
                    }
                }
                Some(Err(error)) => {
                    report.torn_tail = Some(TornTail {
                        segment_seq: seq,
                        offset: reader.offset(),
                        error,
                    });
                    break 'segments;
                }
            }
        }
    }
    Ok((registry, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn file_names_roundtrip() {
        let dir = Path::new("/tmp/x");
        let wal = wal_path(dir, 42);
        let snap = snapshot_path(dir, 7);
        assert_eq!(
            parse_name(wal.file_name().unwrap().to_str().unwrap()),
            Some((FileKind::Wal, 42))
        );
        assert_eq!(
            parse_name(snap.file_name().unwrap().to_str().unwrap()),
            Some((FileKind::Snapshot, 7))
        );
        assert_eq!(parse_name("snapshot-abc.v2"), None);
        assert_eq!(parse_name("other.txt"), None);
        // Temp files from an interrupted compaction are not store files.
        assert_eq!(parse_name("snapshot-00000000000000000007.v2.tmp"), None);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ropuf-store-faults-{tag}-{}", std::process::id()))
    }

    fn record() -> EnrollmentRecord {
        EnrollmentRecord {
            scheme_tag: 1,
            helper: vec![7; 16],
            key_digest: [9; 32],
        }
    }

    #[test]
    fn injected_wal_append_fault_latches_degraded_once() {
        let dir = scratch_dir("append");
        let _ = fs::remove_dir_all(&dir);
        let mut store = DeviceStore::open(&dir, StoreOptions::default()).unwrap();
        store.inject_faults(StoreFaults::new().fail_append_at(1));
        store.attach_telemetry(&ropuf_telemetry::Registry::new());
        let record = record();

        assert!(store.log_enrolls([(1u64, &record)].into_iter()).is_ok());
        assert!(!store.is_degraded(), "healthy append must not latch");

        let err = store
            .log_enrolls([(2u64, &record)].into_iter())
            .unwrap_err();
        assert!(err.to_string().contains("injected wal append"));
        assert!(store.is_degraded(), "failed append must latch");

        // One-shot fault: later appends succeed, the latch stays.
        assert!(store.log_enrolls([(3u64, &record)].into_iter()).is_ok());
        assert!(store.is_degraded(), "latch never clears");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_fault_latches_and_counts_transition_once() {
        let dir = scratch_dir("fsync");
        let _ = fs::remove_dir_all(&dir);
        let telemetry = ropuf_telemetry::Registry::new();
        let mut store = DeviceStore::open(
            &dir,
            StoreOptions {
                sync_policy: SyncPolicy::EveryRecord,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store.inject_faults(StoreFaults::new().fail_sync_at(0));
        store.attach_telemetry(&telemetry);
        let record = record();

        assert!(store.log_enrolls([(1u64, &record)].into_iter()).is_err());
        assert!(store.is_degraded());
        // A second failure path must not double-count the transition.
        let _ = store.sync();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter_total("server.degraded_transitions"), 1);
        assert_eq!(snap.counter_total("faults.injected"), 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_fault_fails_compaction_without_latching() {
        let dir = scratch_dir("rename");
        let _ = fs::remove_dir_all(&dir);
        let mut store = DeviceStore::open(&dir, StoreOptions::default()).unwrap();
        store.inject_faults(StoreFaults::new().fail_rename_at(0));
        store.attach_telemetry(&ropuf_telemetry::Registry::new());

        store.rotate().unwrap();
        let seq = store.active_segment_seq() - 1;
        let err = store
            .install_snapshot(seq, b"not a real snapshot")
            .unwrap_err();
        assert!(err.to_string().contains("injected snapshot rename"));
        assert!(
            !store.is_degraded(),
            "compaction failure is retryable, not a durability loss"
        );
        // The retry (op 1) goes through.
        store.install_snapshot(seq, b"not a real snapshot").unwrap();

        let _ = fs::remove_dir_all(&dir);
    }
}
