//! The append-only write-ahead log.
//!
//! Every durable registry mutation — an enrollment, a detector flag
//! latching — is appended here **before** it becomes visible in
//! memory, so a crash either shows the mutation in the log or never
//! acknowledged it. Records are individually framed and checksummed:
//!
//! ```text
//! ┌────────┬────────┬─────────────────┐
//! │ len    │ crc32  │ payload         │   len = payload bytes,
//! │ u32 LE │ u32 LE │ (len bytes)     │   crc32 = IEEE, over payload
//! └────────┴────────┴─────────────────┘
//! ```
//!
//! Payloads (same `ropuf_proto` primitives as the wire):
//!
//! | type byte | record | fields |
//! |-----------|--------|--------|
//! | `0x01` | Enroll | `device_id u64 · scheme_tag u8 · helper (u32 len + bytes) · key_digest [32]` |
//! | `0x02` | Flag   | `device_id u64 · at u64 · reason u8` |
//!
//! A crash mid-append leaves a *torn* final record — a short header, a
//! short body, or a body that fails its CRC. The reader stops at the
//! first frame that does not validate and reports how it tore; replay
//! of everything before that point is the prefix-consistent recovery
//! the crash-injection suite locks down. Decoding never panics and a
//! forged length can never over-allocate ([`MAX_RECORD`] and the
//! remaining-bytes check both bound it).

use std::fmt;

use ropuf_proto::codec::{Reader, Writer, MAX_BYTES};

use crate::detector::FlagReason;
use crate::registry::EnrollmentRecord;
use crate::store::crc32;

/// Type byte of an enrollment record.
pub const RECORD_ENROLL: u8 = 0x01;
/// Type byte of a flag-transition record.
pub const RECORD_FLAG: u8 = 0x02;

/// Frame header: payload length + payload CRC.
pub const FRAME_HEADER: usize = 8;

/// Largest payload a frame may declare. Generous against real records
/// (an enrollment is tens of bytes + the helper blob, itself capped at
/// [`MAX_BYTES`]) while bounding what a corrupt length can allocate.
pub const MAX_RECORD: usize = 128 * 1024;

/// One durable registry mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A device was enrolled.
    Enroll {
        /// The enrolled id.
        device_id: u64,
        /// The durable enrollment record.
        record: EnrollmentRecord,
    },
    /// A device's detector latched a flag.
    Flag {
        /// The flagged id.
        device_id: u64,
        /// Device timestamp at which the flag latched.
        at: u64,
        /// Why it latched.
        reason: FlagReason,
    },
}

/// Why WAL reading stopped — a torn tail after a crash, or genuine
/// corruption. Either way the reader stops; replay keeps everything
/// before the failed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalDecodeError {
    /// Fewer than [`FRAME_HEADER`] bytes remain — the append died
    /// inside the frame header.
    IncompleteHeader {
        /// Bytes left.
        remaining: usize,
    },
    /// The header declares more payload than remains — the append died
    /// inside the body.
    IncompleteBody {
        /// Declared payload length.
        declared: usize,
        /// Bytes left after the header.
        remaining: usize,
    },
    /// The header declares a payload beyond [`MAX_RECORD`].
    OversizeRecord {
        /// Declared payload length.
        declared: u64,
    },
    /// The payload does not match its CRC — torn mid-body overwrite or
    /// bit rot.
    CrcMismatch {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload checksummed but does not parse as a record.
    BadRecord(ropuf_proto::DecodeError),
    /// A type byte no release ever wrote.
    UnknownRecordType(u8),
    /// A flag reason byte no release ever wrote.
    UnknownFlagReason(u8),
}

impl fmt::Display for WalDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalDecodeError::IncompleteHeader { remaining } => {
                write!(f, "torn frame header: {remaining} of {FRAME_HEADER} bytes")
            }
            WalDecodeError::IncompleteBody {
                declared,
                remaining,
            } => write!(f, "torn frame body: {remaining} of {declared} bytes"),
            WalDecodeError::OversizeRecord { declared } => {
                write!(f, "declared payload {declared} exceeds {MAX_RECORD}")
            }
            WalDecodeError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WalDecodeError::BadRecord(e) => write!(f, "payload does not parse: {e}"),
            WalDecodeError::UnknownRecordType(b) => write!(f, "unknown record type {b:#04x}"),
            WalDecodeError::UnknownFlagReason(b) => write!(f, "unknown flag reason {b:#04x}"),
        }
    }
}

impl std::error::Error for WalDecodeError {}

impl WalRecord {
    /// Appends the record's payload (no frame) to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Enroll { device_id, record } => {
                out.put_u8(RECORD_ENROLL);
                out.put_u64(*device_id);
                out.put_u8(record.scheme_tag);
                out.put_bytes(&record.helper);
                out.extend_from_slice(&record.key_digest);
            }
            WalRecord::Flag {
                device_id,
                at,
                reason,
            } => {
                out.put_u8(RECORD_FLAG);
                out.put_u64(*device_id);
                out.put_u64(*at);
                out.put_u8(reason.code());
            }
        }
    }

    /// Appends the record as one framed entry (`len · crc · payload`)
    /// to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(64);
        self.encode_payload(&mut payload);
        debug_assert!(payload.len() <= MAX_RECORD, "record exceeds MAX_RECORD");
        out.put_u32(u32::try_from(payload.len()).expect("payload fits u32"));
        out.put_u32(crc32(&payload));
        out.extend_from_slice(&payload);
    }

    /// The record as one framed entry.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER + 64);
        self.encode_into(&mut out);
        out
    }

    /// Parses one checksummed payload.
    fn decode_payload(payload: &[u8]) -> Result<WalRecord, WalDecodeError> {
        let mut r = Reader::new(payload);
        let record = match r.u8().map_err(WalDecodeError::BadRecord)? {
            RECORD_ENROLL => {
                let device_id = r.u64().map_err(WalDecodeError::BadRecord)?;
                let scheme_tag = r.u8().map_err(WalDecodeError::BadRecord)?;
                let helper = r
                    .bytes("helper", MAX_BYTES)
                    .map_err(WalDecodeError::BadRecord)?;
                let key_digest = r.digest().map_err(WalDecodeError::BadRecord)?;
                WalRecord::Enroll {
                    device_id,
                    record: EnrollmentRecord {
                        scheme_tag,
                        helper,
                        key_digest,
                    },
                }
            }
            RECORD_FLAG => {
                let device_id = r.u64().map_err(WalDecodeError::BadRecord)?;
                let at = r.u64().map_err(WalDecodeError::BadRecord)?;
                let code = r.u8().map_err(WalDecodeError::BadRecord)?;
                let reason =
                    FlagReason::from_code(code).ok_or(WalDecodeError::UnknownFlagReason(code))?;
                WalRecord::Flag {
                    device_id,
                    at,
                    reason,
                }
            }
            other => return Err(WalDecodeError::UnknownRecordType(other)),
        };
        r.finish().map_err(WalDecodeError::BadRecord)?;
        Ok(record)
    }
}

/// Streaming reader over one segment's bytes. Yields records until the
/// bytes run out cleanly or a frame fails to validate.
#[derive(Debug)]
pub struct WalReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WalReader<'a> {
    /// A reader at the start of a segment's bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Byte offset of the next unread frame — on error, where the
    /// segment tore.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// The next record: `None` at a clean end of segment,
    /// `Some(Err(_))` at a torn or corrupt frame (the reader stays put;
    /// further calls return the same error).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<WalRecord, WalDecodeError>> {
        let remaining = self.bytes.len() - self.pos;
        if remaining == 0 {
            return None;
        }
        if remaining < FRAME_HEADER {
            return Some(Err(WalDecodeError::IncompleteHeader { remaining }));
        }
        let header = &self.bytes[self.pos..self.pos + FRAME_HEADER];
        let declared = u32::from_le_bytes(header[..4].try_into().expect("len 4")) as usize;
        let stored = u32::from_le_bytes(header[4..].try_into().expect("len 4"));
        if declared > MAX_RECORD {
            return Some(Err(WalDecodeError::OversizeRecord {
                declared: declared as u64,
            }));
        }
        let body_remaining = remaining - FRAME_HEADER;
        if declared > body_remaining {
            return Some(Err(WalDecodeError::IncompleteBody {
                declared,
                remaining: body_remaining,
            }));
        }
        let payload = &self.bytes[self.pos + FRAME_HEADER..self.pos + FRAME_HEADER + declared];
        let computed = crc32(payload);
        if stored != computed {
            return Some(Err(WalDecodeError::CrcMismatch { stored, computed }));
        }
        match WalRecord::decode_payload(payload) {
            Ok(record) => {
                self.pos += FRAME_HEADER + declared;
                Some(Ok(record))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LISA_TAG;

    fn enroll(id: u64) -> WalRecord {
        WalRecord::Enroll {
            device_id: id,
            record: EnrollmentRecord {
                scheme_tag: LISA_TAG,
                helper: vec![LISA_TAG, 1, id as u8],
                key_digest: [id as u8; 32],
            },
        }
    }

    fn flag(id: u64) -> WalRecord {
        WalRecord::Flag {
            device_id: id,
            at: 100 + id,
            reason: FlagReason::RateBudget,
        }
    }

    fn drain(bytes: &[u8]) -> (Vec<WalRecord>, Option<WalDecodeError>) {
        let mut reader = WalReader::new(bytes);
        let mut records = Vec::new();
        loop {
            match reader.next() {
                None => return (records, None),
                Some(Ok(r)) => records.push(r),
                Some(Err(e)) => return (records, Some(e)),
            }
        }
    }

    #[test]
    fn records_roundtrip_in_sequence() {
        let written = vec![enroll(1), flag(1), enroll(2), flag(9)];
        let mut bytes = Vec::new();
        for r in &written {
            r.encode_into(&mut bytes);
        }
        let (read, err) = drain(&bytes);
        assert_eq!(err, None);
        assert_eq!(read, written);
    }

    #[test]
    fn truncation_at_any_offset_keeps_the_prefix() {
        let written = vec![enroll(1), flag(1), enroll(2)];
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &written {
            r.encode_into(&mut bytes);
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let (read, err) = drain(&bytes[..cut]);
            // The reader yields exactly the fully-contained records...
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(read.len(), complete, "cut at {cut}");
            assert_eq!(read[..], written[..complete], "cut at {cut}");
            // ...and reports a torn tail unless the cut fell exactly on
            // a record boundary.
            assert_eq!(err.is_some(), !boundaries.contains(&cut), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_at_the_bad_frame() {
        let mut bytes = Vec::new();
        enroll(1).encode_into(&mut bytes);
        let first_len = bytes.len();
        enroll(2).encode_into(&mut bytes);
        // Flip a payload byte of the second record.
        let target = first_len + FRAME_HEADER + 2;
        bytes[target] ^= 0xFF;
        let (read, err) = drain(&bytes);
        assert_eq!(read, vec![enroll(1)]);
        assert!(matches!(err, Some(WalDecodeError::CrcMismatch { .. })));
    }

    #[test]
    fn oversize_length_is_typed_not_an_allocation() {
        let mut bytes = Vec::new();
        bytes.put_u32(u32::MAX);
        bytes.put_u32(0);
        let (read, err) = drain(&bytes);
        assert!(read.is_empty());
        assert!(matches!(err, Some(WalDecodeError::OversizeRecord { .. })));
    }

    #[test]
    fn unknown_record_type_is_typed() {
        let payload = [0x77u8, 0, 0];
        let mut bytes = Vec::new();
        bytes.put_u32(payload.len() as u32);
        bytes.put_u32(crc32(&payload));
        bytes.extend_from_slice(&payload);
        let (_, err) = drain(&bytes);
        assert_eq!(err, Some(WalDecodeError::UnknownRecordType(0x77)));
    }
}
