//! Deterministic fault injection for the durable store.
//!
//! The transport-layer [`FaultPlan`](ropuf_proto::FaultPlan) bends
//! byte streams; this module bends the disk. A [`StoreFaults`] pins an
//! injected `Err` to an exact operation index on each of the store's
//! three fallible syscall families — WAL append, WAL fsync, snapshot
//! rename — so a chaos run can make the write-ahead log fail at a
//! known, replayable point and prove the serving stack latches its
//! read-only degraded mode instead of corrupting state or lying about
//! durability.
//!
//! Injection is one-shot per family: the nth operation fails, later
//! ones succeed again. That is the interesting shape — the degraded
//! latch is permanent by design, so what matters is the transition,
//! and a store that keeps appending flag records after the latch keeps
//! its log coherent for the post-mortem.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Operation index that never fires.
const NEVER: u64 = u64::MAX;

/// A deterministic schedule of injected store failures: the nth
/// operation of each family returns an injected `Err`. Thread-safe;
/// attach one to a [`DeviceStore`](crate::DeviceStore) with
/// [`DeviceStore::inject_faults`](crate::DeviceStore::inject_faults)
/// before sharing it.
#[derive(Debug)]
pub struct StoreFaults {
    fail_append_at: u64,
    fail_sync_at: u64,
    fail_rename_at: u64,
    appends_seen: AtomicU64,
    syncs_seen: AtomicU64,
    renames_seen: AtomicU64,
}

impl Default for StoreFaults {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreFaults {
    /// A schedule that never fires until armed with the builders.
    pub fn new() -> Self {
        Self {
            fail_append_at: NEVER,
            fail_sync_at: NEVER,
            fail_rename_at: NEVER,
            appends_seen: AtomicU64::new(0),
            syncs_seen: AtomicU64::new(0),
            renames_seen: AtomicU64::new(0),
        }
    }

    /// Fails the `nth` WAL append (0-based).
    pub fn fail_append_at(mut self, nth: u64) -> Self {
        self.fail_append_at = nth;
        self
    }

    /// Fails the `nth` WAL fsync (0-based).
    pub fn fail_sync_at(mut self, nth: u64) -> Self {
        self.fail_sync_at = nth;
        self
    }

    /// Fails the `nth` snapshot rename (0-based).
    pub fn fail_rename_at(mut self, nth: u64) -> Self {
        self.fail_rename_at = nth;
        self
    }

    fn fire(seen: &AtomicU64, nth: u64, what: &'static str) -> io::Result<()> {
        let op = seen.fetch_add(1, Ordering::Relaxed);
        if op == nth {
            return Err(io::Error::other(format!("injected {what} fault (op {op})")));
        }
        Ok(())
    }

    /// Called by the store before each WAL append.
    pub(crate) fn on_append(&self) -> io::Result<()> {
        Self::fire(&self.appends_seen, self.fail_append_at, "wal append")
    }

    /// Called by the store before each WAL fsync.
    pub(crate) fn on_sync(&self) -> io::Result<()> {
        Self::fire(&self.syncs_seen, self.fail_sync_at, "wal fsync")
    }

    /// Called by the store before each snapshot rename.
    pub(crate) fn on_rename(&self) -> io::Result<()> {
        Self::fire(&self.renames_seen, self.fail_rename_at, "snapshot rename")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_op_fails_once_then_recovers() {
        let faults = StoreFaults::new().fail_append_at(2);
        assert!(faults.on_append().is_ok()); // op 0
        assert!(faults.on_append().is_ok()); // op 1
        let err = faults.on_append().unwrap_err(); // op 2
        assert!(err.to_string().contains("injected wal append"));
        assert!(faults.on_append().is_ok(), "one-shot: op 3 succeeds");
        // Other families untouched.
        assert!(faults.on_sync().is_ok());
        assert!(faults.on_rename().is_ok());
    }

    #[test]
    fn unarmed_schedule_never_fires() {
        let faults = StoreFaults::new();
        for _ in 0..64 {
            assert!(faults.on_append().is_ok());
            assert!(faults.on_sync().is_ok());
            assert!(faults.on_rename().is_ok());
        }
    }
}
