//! Minimal JSON reader + hex codec for registry snapshots.
//!
//! The offline crate set has no `serde`, and the workspace's JSON
//! *emitters* (campaign reports, registry snapshots) are hand-rolled
//! for byte-stable output. Snapshot **loading** additionally needs a
//! parser; this is the smallest one that covers the `ropuf-verifier/v1`
//! schema — objects, arrays, strings with standard escapes, integer and
//! float numbers, booleans and null — with every anomaly surfaced as a
//! typed error instead of a panic (snapshots are operator-supplied
//! input, not trusted state).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token so `u64` values round-trip
    /// without `f64` precision loss.
    Number(String),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offence.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// content rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first syntax offence.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are outside this schema's
                            // needs; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes a run of ASCII digits, requiring at least one.
    fn digits(&mut self, message: &'static str) -> Result<(), JsonError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(message));
        }
        Ok(())
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        self.digits("expected digits")?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits("expected digits after decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("expected digits in exponent")?;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number token")
            .to_string();
        Ok(JsonValue::Number(raw))
    }
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0F) as usize] as char);
    }
    out
}

/// Hex decoding (case-insensitive, even length required).
///
/// # Errors
///
/// Returns a static message on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Result<Vec<u8>, &'static str> {
    if s.len() % 2 != 0 {
        return Err("odd-length hex string");
    }
    let digit = |c: u8| -> Result<u8, &'static str> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err("non-hex digit"),
        }
    };
    s.as_bytes()
        .chunks(2)
        .map(|pair| Ok(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"schema": "ropuf-verifier/v1", "shards": 8,
                      "devices": [{"device_id": 18446744073709551615, "ok": true,
                                   "x": null, "f": -1.5e2}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("ropuf-verifier/v1"));
        assert_eq!(v.get("shards").unwrap().as_u64(), Some(8));
        let devices = v.get("devices").unwrap().as_array().unwrap();
        assert_eq!(
            devices[0].get("device_id").unwrap().as_u64(),
            Some(u64::MAX),
            "u64 round-trips without float loss"
        );
        assert_eq!(devices[0].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(devices[0].get("x"), Some(&JsonValue::Null));
        assert_eq!(
            devices[0].get("f"),
            Some(&JsonValue::Number("-1.5e2".to_string()))
        );
    }

    #[test]
    fn string_escapes_resolve() {
        let v = parse(r#""a\"b\\c\n\u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "{]",
            "1 2",
            "\"\\q\"",
            "nul",
            "1.",
            "1e",
            "1e+",
            "-.5",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let bytes = vec![0x00, 0xAB, 0xFF, 0x12];
        assert_eq!(to_hex(&bytes), "00abff12");
        assert_eq!(from_hex("00abff12").unwrap(), bytes);
        assert_eq!(from_hex("00ABFF12").unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
