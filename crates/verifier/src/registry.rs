//! The sharded enrollment registry.
//!
//! One record per enrolled device: `{scheme tag, helper bytes, key
//! digest}`. Records are hashed across N shards, each behind its own
//! lock, so concurrent enrollment and authentication scale across
//! threads instead of serializing on one registry-wide mutex — the
//! ROADMAP's "heavy traffic from millions of users" shape. Each entry
//! also carries its device's [`DeviceDetector`] runtime state, so one
//! shard lock covers a whole authenticate step (lookup + detect).
//!
//! # Entry layout: slab + compact handles
//!
//! A shard is **not** a `HashMap<u64, DeviceEntry>`. Entries live in a
//! contiguous per-shard slab (`Vec<DeviceEntry>`) indexed by a compact
//! `u32` [`DeviceHandle`], and a side map resolves device id → handle.
//! The hot auth path resolves the handle once and then works on the
//! slab slot; at fleet scale (the ROADMAP's 10M-device target) this
//! keeps the id map small and dense — 12 bytes of key material per
//! device instead of a map entry dragging the whole ~300-byte record +
//! detector around — and gives batched authentication cache-friendly
//! sequential slab walks instead of pointer-chasing a big map.
//!
//! # Persistence
//!
//! Two snapshot formats and a write-ahead log:
//!
//! * `ropuf-verifier/v1` — the legacy hand-rolled JSON snapshot
//!   ([`ShardedRegistry::snapshot_json`] /
//!   [`ShardedRegistry::from_snapshot`]). Still loads; **new saves
//!   should emit v2** (see [`crate::store`]), and
//!   [`ShardedRegistry::load_snapshot_auto`] sniffs either format, so
//!   migration is "load whatever you have, save v2".
//! * `ropuf-verifier/v2` — the length-prefixed, CRC-protected binary
//!   format in [`crate::store::snapshot`], which also persists flag
//!   state (v1 silently reset detectors on load).
//! * The WAL ([`crate::store::wal`]) — when a registry is opened
//!   durably ([`crate::Verifier::open_durable`]), every enrollment and
//!   every flag transition is appended to an fsync-rotated segment log
//!   before it is acknowledged, and crash recovery replays
//!   latest-valid-snapshot + WAL tail.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

use ropuf_constructions::scheme_name_of_tag;
use ropuf_hash::HmacKey;
use ropuf_numeric::splitmix64 as mix;

use crate::detector::{DetectorConfig, DeviceDetector, FlagReason};
use crate::json::{self, JsonValue};
use crate::store::snapshot::{self, SnapshotV2Error};
use crate::store::DeviceStore;

/// Version tag embedded in every v1 (JSON) registry snapshot.
pub const SCHEMA: &str = "ropuf-verifier/v1";

/// Largest shard count a snapshot may request — a hard cap against
/// resource exhaustion via a forged `shards` field (snapshots are
/// operator-supplied input, same rationale as `wire::MAX_COUNT`).
pub const MAX_SHARDS: u64 = 1 << 16;

/// Compact per-shard slab index of an enrolled device. Stable for the
/// life of the registry (devices are never evicted), so hot paths can
/// resolve a device id once and keep the handle.
pub type DeviceHandle = u32;

/// The shard a device id hashes to in a registry of `shards` shards.
///
/// This is the pure form of [`ShardedRegistry::shard_of`], exposed so
/// remote parties (the multi-loop server's affinity accounting, the
/// load generator's loop-affine routing) can predict placement without
/// holding a registry. Returns `0` when `shards` is `0` so callers
/// never divide by zero on an unsharded handler.
pub fn shard_for(device_id: u64, shards: usize) -> usize {
    if shards == 0 {
        return 0;
    }
    (mix(device_id) % shards as u64) as usize
}

/// What the defender stores per enrolled device.
///
/// The `key_digest` is the derived verification credential (see the
/// crate-level protocol notes) — the registry never holds the PUF
/// master key itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnrollmentRecord {
    /// Wire tag of the scheme the device was enrolled under.
    pub scheme_tag: u8,
    /// The helper blob as enrolled (integrity reference).
    pub helper: Vec<u8>,
    /// SHA-256 of the enrolled key bytes — the HMAC verification key.
    pub key_digest: [u8; 32],
}

/// Registry operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The device id is already enrolled.
    Duplicate {
        /// The offending id.
        device_id: u64,
    },
    /// The durable write-ahead log rejected the operation — the
    /// enrollment was **not** applied (write-ahead means no record, no
    /// state).
    Storage(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate { device_id } => {
                write!(f, "device {device_id} is already enrolled")
            }
            RegistryError::Storage(e) => write!(f, "write-ahead log rejected the operation: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Snapshot load errors (v1 JSON; v2 loads report
/// [`SnapshotV2Error`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(String),
    /// The document parses but violates the `ropuf-verifier/v1` shape.
    Schema(&'static str),
    /// A hex field failed to decode.
    Hex(&'static str),
    /// Two devices share an id.
    Duplicate(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "snapshot is not valid JSON: {e}"),
            SnapshotError::Schema(what) => write!(f, "snapshot schema violation: {what}"),
            SnapshotError::Hex(field) => write!(f, "snapshot field {field} is not valid hex"),
            SnapshotError::Duplicate(id) => write!(f, "snapshot enrolls device {id} twice"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One slab entry: the durable record plus the device's detector
/// runtime state, co-located so a single shard lock covers an entire
/// authenticate step. Also caches the precomputed HMAC key schedule
/// ([`HmacKey`]) of the stored credential, so serving an
/// authentication never re-derives it — tag verification is two
/// midstate clones per request instead of a full key schedule.
#[derive(Debug, Clone)]
pub(crate) struct DeviceEntry {
    pub(crate) device_id: u64,
    pub(crate) record: EnrollmentRecord,
    pub(crate) detector: DeviceDetector,
    pub(crate) hmac_key: HmacKey,
}

impl DeviceEntry {
    /// Builds the entry, deriving the detector and the cached HMAC
    /// midstates from the record. The only place the key schedule is
    /// computed — everything after enrollment clones midstates.
    /// `restored_flag` re-latches a flag recovered from durable
    /// storage.
    pub(crate) fn new(
        device_id: u64,
        record: EnrollmentRecord,
        config: DetectorConfig,
        restored_flag: Option<(u64, FlagReason)>,
    ) -> Self {
        let mut detector = DeviceDetector::new(config, record.scheme_tag, &record.helper);
        if let Some((at, reason)) = restored_flag {
            detector.restore_flag(at, reason);
        }
        let hmac_key = HmacKey::new(&record.key_digest);
        Self {
            device_id,
            record,
            detector,
            hmac_key,
        }
    }
}

/// One shard: the entry slab plus the id → handle index. Entries sit
/// contiguously in enrollment order; the index map carries only
/// `(u64, u32)` pairs.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    slots: Vec<DeviceEntry>,
    index: HashMap<u64, DeviceHandle>,
}

impl Shard {
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Resolves a device id to its slab handle.
    pub(crate) fn handle_of(&self, device_id: u64) -> Option<DeviceHandle> {
        self.index.get(&device_id).copied()
    }

    /// Direct slab access by handle (the post-resolution hot path).
    pub(crate) fn entry_at(&mut self, handle: DeviceHandle) -> &mut DeviceEntry {
        &mut self.slots[handle as usize]
    }

    /// Resolve + index in one step.
    pub(crate) fn get_mut(&mut self, device_id: u64) -> Option<&mut DeviceEntry> {
        let handle = self.handle_of(device_id)?;
        Some(self.entry_at(handle))
    }

    pub(crate) fn contains(&self, device_id: u64) -> bool {
        self.index.contains_key(&device_id)
    }

    /// Appends an entry to the slab and indexes it. The caller has
    /// already rejected duplicates.
    fn insert(&mut self, entry: DeviceEntry) -> DeviceHandle {
        let handle =
            DeviceHandle::try_from(self.slots.len()).expect("shard slab exceeds u32 handles");
        self.index.insert(entry.device_id, handle);
        self.slots.push(entry);
        handle
    }

    /// Iterates the slab in enrollment order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &DeviceEntry> {
        self.slots.iter()
    }
}

/// Device-id → [`EnrollmentRecord`] map, hashed across N independently
/// locked shards, each a slab of entries indexed by compact `u32`
/// handles.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<Mutex<Shard>>,
    detector_config: DetectorConfig,
    store: Option<Arc<DeviceStore>>,
}

impl ShardedRegistry {
    /// Creates an empty registry with `shards` shards (`0` is promoted
    /// to 1). Every enrolled device gets a [`DeviceDetector`] built
    /// from `detector_config`.
    pub fn new(shards: usize, detector_config: DetectorConfig) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            detector_config,
            store: None,
        }
    }

    /// Attaches the durable store: from here on every enrollment and
    /// flag transition is written ahead to the WAL.
    pub(crate) fn attach_store(&mut self, store: Arc<DeviceStore>) {
        self.store = Some(store);
    }

    /// The attached durable store, if the registry was opened durably.
    pub fn store(&self) -> Option<&Arc<DeviceStore>> {
        self.store.as_ref()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The detector thresholds new enrollments receive.
    pub fn detector_config(&self) -> DetectorConfig {
        self.detector_config
    }

    /// Shard index a device id hashes to.
    pub fn shard_of(&self, device_id: u64) -> usize {
        shard_for(device_id, self.shards.len())
    }

    /// Enrolls a device. When a durable store is attached, the
    /// enrollment record hits the WAL **before** the in-memory state
    /// (write-ahead): a crash either shows the device in the log or
    /// never acknowledged it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id is already enrolled,
    /// [`RegistryError::Storage`] when the WAL append fails (the
    /// enrollment is not applied).
    ///
    /// # Panics
    ///
    /// Panics if the shard lock is poisoned (a previous holder
    /// panicked).
    pub fn enroll(&self, device_id: u64, record: EnrollmentRecord) -> Result<(), RegistryError> {
        let entry = DeviceEntry::new(device_id, record, self.detector_config, None);
        let mut shard = self.shards[self.shard_of(device_id)]
            .lock()
            .expect("shard lock poisoned");
        if shard.contains(device_id) {
            return Err(RegistryError::Duplicate { device_id });
        }
        if let Some(store) = &self.store {
            store
                .log_enrolls(std::iter::once((device_id, &entry.record)))
                .map_err(|e| RegistryError::Storage(e.to_string()))?;
        }
        shard.insert(entry);
        Ok(())
    }

    /// Inserts a device recovered from durable storage: no WAL append
    /// (the record is already in the log or snapshot), optionally
    /// re-latching a recovered flag.
    pub(crate) fn enroll_recovered(
        &self,
        device_id: u64,
        record: EnrollmentRecord,
        flag: Option<(u64, FlagReason)>,
    ) -> Result<(), RegistryError> {
        let entry = DeviceEntry::new(device_id, record, self.detector_config, flag);
        let mut shard = self.shards[self.shard_of(device_id)]
            .lock()
            .expect("shard lock poisoned");
        if shard.contains(device_id) {
            return Err(RegistryError::Duplicate { device_id });
        }
        shard.insert(entry);
        Ok(())
    }

    /// Enrolls a whole batch, locking each shard **once** per batch
    /// instead of once per device — the bulk path fleet provisioning
    /// (loadgen, server startup) goes through. Results come back in
    /// input order; a device id appearing twice in one batch enrolls
    /// the first occurrence and reports
    /// [`RegistryError::Duplicate`] for the rest, exactly as
    /// sequential [`ShardedRegistry::enroll`] calls would. With a
    /// durable store attached, each shard's accepted records are
    /// written ahead in one WAL append batch.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned (a previous holder panicked).
    pub fn enroll_batch(
        &self,
        entries: Vec<(u64, EnrollmentRecord)>,
    ) -> Vec<Result<(), RegistryError>> {
        let mut results: Vec<Result<(), RegistryError>> = Vec::with_capacity(entries.len());
        results.resize_with(entries.len(), || Ok(()));
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shard_count()];
        for (i, (device_id, _)) in entries.iter().enumerate() {
            buckets[self.shard_of(*device_id)].push(i);
        }
        // Build the entries (helper digest + HMAC key schedule) *before*
        // taking any shard lock, like the sequential path — concurrent
        // serving traffic must not stall behind a bulk load.
        let mut entries: Vec<Option<DeviceEntry>> = entries
            .into_iter()
            .map(|(device_id, record)| {
                Some(DeviceEntry::new(
                    device_id,
                    record,
                    self.detector_config,
                    None,
                ))
            })
            .collect();
        let mut accepted: Vec<usize> = Vec::new();
        for (shard_index, indices) in buckets.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut shard = self.shards[shard_index]
                .lock()
                .expect("shard lock poisoned");
            accepted.clear();
            for &i in indices {
                let device_id = entries[i].as_ref().expect("entry pending").device_id;
                if shard.contains(device_id)
                    || accepted.iter().any(|&j| {
                        entries[j].as_ref().expect("entry pending").device_id == device_id
                    })
                {
                    results[i] = Err(RegistryError::Duplicate { device_id });
                    continue;
                }
                accepted.push(i);
            }
            // Write-ahead: the whole shard batch is logged in one WAL
            // append before any of it becomes visible.
            if let Some(store) = &self.store {
                let log = store.log_enrolls(accepted.iter().map(|&i| {
                    let e = entries[i].as_ref().expect("entry pending");
                    (e.device_id, &e.record)
                }));
                if let Err(e) = log {
                    let msg = e.to_string();
                    for &i in &accepted {
                        results[i] = Err(RegistryError::Storage(msg.clone()));
                    }
                    continue;
                }
            }
            for &i in &accepted {
                shard.insert(entries[i].take().expect("each entry consumed once"));
            }
        }
        results
    }

    /// Total enrolled devices (locks every shard once).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// `true` when no device is enrolled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enrolled devices per shard, in shard order (locks each shard
    /// once) — the source for the `verifier.registry.entries` gauges.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .collect()
    }

    /// Runs `f` on the device's entry under its shard lock.
    pub(crate) fn with_entry<R>(
        &self,
        device_id: u64,
        f: impl FnOnce(&mut DeviceEntry) -> R,
    ) -> Option<R> {
        let mut shard = self.shards[self.shard_of(device_id)]
            .lock()
            .expect("shard lock poisoned");
        shard.get_mut(device_id).map(f)
    }

    /// Grants `f` direct access to one locked shard (the batched
    /// authentication path locks each shard once per batch).
    pub(crate) fn with_shard<R>(&self, shard_index: usize, f: impl FnOnce(&mut Shard) -> R) -> R {
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("shard lock poisoned");
        f(&mut shard)
    }

    /// Appends a flag transition to the WAL, best-effort: serving must
    /// not fail because the disk hiccuped, so an append error is
    /// counted on the store ([`DeviceStore::io_errors`]) instead of
    /// propagated. No-op without a durable store.
    pub(crate) fn log_flag(&self, device_id: u64, at: u64, reason: FlagReason) {
        if let Some(store) = &self.store {
            store.log_flag_best_effort(device_id, at, reason);
        }
    }

    /// Copy of a device's enrollment record.
    pub fn record(&self, device_id: u64) -> Option<EnrollmentRecord> {
        self.with_entry(device_id, |e| e.record.clone())
    }

    /// The compact slab handle a device id resolves to inside its
    /// shard, if enrolled. `(shard, handle)` is stable for the life of
    /// the registry.
    pub fn handle(&self, device_id: u64) -> Option<(usize, DeviceHandle)> {
        let shard_index = self.shard_of(device_id);
        let shard = self.shards[shard_index]
            .lock()
            .expect("shard lock poisoned");
        shard.handle_of(device_id).map(|h| (shard_index, h))
    }

    /// `(timestamp, reason)` of the device's first flag, if flagged.
    pub fn flag_info(&self, device_id: u64) -> Option<(u64, FlagReason)> {
        self.with_entry(device_id, |e| e.detector.flagged())
            .flatten()
    }

    /// Device ids currently flagged, ascending.
    pub fn flagged_devices(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            out.extend(
                shard
                    .iter()
                    .filter(|e| e.detector.flagged().is_some())
                    .map(|e| e.device_id),
            );
        }
        out.sort_unstable();
        out
    }

    /// Dumps every device sorted by id: `(id, record, flag)` — the
    /// shared source for both snapshot encoders.
    pub(crate) fn dump(&self) -> Vec<(u64, EnrollmentRecord, Option<(u64, FlagReason)>)> {
        let mut devices: Vec<(u64, EnrollmentRecord, Option<(u64, FlagReason)>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            devices.extend(
                shard
                    .iter()
                    .map(|e| (e.device_id, e.record.clone(), e.detector.flagged())),
            );
        }
        devices.sort_unstable_by_key(|(id, _, _)| *id);
        devices
    }

    /// Serializes the registry under the legacy `ropuf-verifier/v1`
    /// JSON schema (fixed key order, devices sorted by id —
    /// byte-identical for the same enrolled set regardless of
    /// enrollment order or shard count, apart from the recorded
    /// `shards` field itself). Flag state is **not** representable in
    /// v1; new saves should use [`ShardedRegistry::snapshot_v2`].
    pub fn snapshot_json(&self) -> String {
        let devices = self.dump();
        let mut out = String::with_capacity(128 + 160 * devices.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"shards\": {},\n", self.shards.len()));
        out.push_str("  \"devices\": [\n");
        for (i, (id, record, _)) in devices.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"device_id\": {id}, \"scheme\": \"{}\", \"scheme_tag\": {}, \"helper\": \"{}\", \"key_digest\": \"{}\"}}",
                scheme_name_of_tag(record.scheme_tag).unwrap_or("unknown"),
                record.scheme_tag,
                json::to_hex(&record.helper),
                json::to_hex(&record.key_digest),
            ));
            if i + 1 < devices.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the registry as a `ropuf-verifier/v2` binary
    /// snapshot — the save format: compact, CRC-protected, and
    /// flag-preserving. See [`crate::store::snapshot`] for the layout.
    pub fn snapshot_v2(&self) -> Vec<u8> {
        snapshot::encode(self.shard_count(), &self.dump())
    }

    /// Loads a `ropuf-verifier/v2` binary snapshot, restoring flag
    /// state (detector rate windows and streaks start fresh — they are
    /// runtime state of one serving epoch; the quarantine latch is
    /// not).
    ///
    /// # Errors
    ///
    /// A typed [`SnapshotV2Error`] for any malformed input; decoding
    /// never panics.
    pub fn from_snapshot_v2(
        bytes: &[u8],
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotV2Error> {
        let decoded = snapshot::decode(bytes)?;
        let registry = Self::new(decoded.shards, detector_config);
        for device in decoded.devices {
            registry
                .enroll_recovered(device.device_id, device.record, device.flag)
                .map_err(|_| SnapshotV2Error::DuplicateDevice(device.device_id))?;
        }
        Ok(registry)
    }

    /// Loads a snapshot in either format, sniffing the magic bytes:
    /// the explicit migration path from v1 deployments ("load whatever
    /// is on disk, save v2").
    ///
    /// # Errors
    ///
    /// The v2 decoder's error when the magic matches v2, otherwise the
    /// v1 JSON loader's error boxed into [`SnapshotError`].
    pub fn load_snapshot_auto(
        bytes: &[u8],
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        if snapshot::looks_like_v2(bytes) {
            return Self::from_snapshot_v2(bytes, detector_config)
                .map_err(|e| SnapshotError::Json(format!("v2 snapshot: {e}")));
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotError::Json("snapshot is neither v2 binary nor UTF-8".into()))?;
        Self::from_snapshot(text, detector_config)
    }

    /// Loads a legacy `ropuf-verifier/v1` JSON snapshot. The shard
    /// count comes from the snapshot; detectors start fresh (v1 cannot
    /// carry flag state — migrate to v2 to keep quarantines across
    /// restarts).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] for malformed JSON, a schema
    /// violation, bad hex, or duplicate device ids.
    pub fn from_snapshot(
        snapshot: &str,
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        let doc = json::parse(snapshot).map_err(|e| SnapshotError::Json(e.to_string()))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == SCHEMA => {}
            _ => return Err(SnapshotError::Schema("missing or unsupported schema tag")),
        }
        let shards = doc
            .get("shards")
            .and_then(JsonValue::as_u64)
            .filter(|&n| n <= MAX_SHARDS)
            .ok_or(SnapshotError::Schema("missing or implausible shard count"))?
            as usize;
        let devices = doc
            .get("devices")
            .and_then(JsonValue::as_array)
            .ok_or(SnapshotError::Schema("missing devices array"))?;

        let registry = Self::new(shards, detector_config);
        for device in devices {
            let device_id = device
                .get("device_id")
                .and_then(JsonValue::as_u64)
                .ok_or(SnapshotError::Schema("device without device_id"))?;
            let scheme_tag = device
                .get("scheme_tag")
                .and_then(JsonValue::as_u64)
                .filter(|&t| t <= u8::MAX as u64)
                .ok_or(SnapshotError::Schema("device without scheme_tag"))?
                as u8;
            let helper_hex = device
                .get("helper")
                .and_then(JsonValue::as_str)
                .ok_or(SnapshotError::Schema("device without helper"))?;
            let helper = json::from_hex(helper_hex).map_err(|_| SnapshotError::Hex("helper"))?;
            let digest_hex = device
                .get("key_digest")
                .and_then(JsonValue::as_str)
                .ok_or(SnapshotError::Schema("device without key_digest"))?;
            let digest_bytes =
                json::from_hex(digest_hex).map_err(|_| SnapshotError::Hex("key_digest"))?;
            let key_digest: [u8; 32] = digest_bytes
                .try_into()
                .map_err(|_| SnapshotError::Schema("key_digest is not 32 bytes"))?;
            registry
                .enroll_recovered(
                    device_id,
                    EnrollmentRecord {
                        scheme_tag,
                        helper,
                        key_digest,
                    },
                    None,
                )
                .map_err(|_| SnapshotError::Duplicate(device_id))?;
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LISA_TAG;

    fn record(fill: u8) -> EnrollmentRecord {
        EnrollmentRecord {
            scheme_tag: LISA_TAG,
            helper: vec![LISA_TAG, 1, fill, fill],
            key_digest: [fill; 32],
        }
    }

    #[test]
    fn enroll_lookup_and_duplicate_rejection() {
        let r = ShardedRegistry::new(4, DetectorConfig::default());
        assert!(r.is_empty());
        r.enroll(1, record(7)).unwrap();
        r.enroll(2, record(8)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.record(1).unwrap().key_digest, [7; 32]);
        assert_eq!(r.record(3), None);
        assert_eq!(
            r.enroll(1, record(9)),
            Err(RegistryError::Duplicate { device_id: 1 })
        );
    }

    #[test]
    fn sharding_spreads_sequential_ids() {
        let r = ShardedRegistry::new(8, DetectorConfig::default());
        let mut seen = std::collections::HashSet::new();
        for id in 0..64u64 {
            seen.insert(r.shard_of(id));
            assert!(r.shard_of(id) < 8);
            assert_eq!(r.shard_of(id), r.shard_of(id), "stable");
        }
        assert!(
            seen.len() >= 6,
            "sequential ids should hit most of 8 shards, got {}",
            seen.len()
        );
    }

    #[test]
    fn handles_are_compact_and_stable() {
        let r = ShardedRegistry::new(2, DetectorConfig::default());
        for id in 0..32u64 {
            r.enroll(id, record(id as u8)).unwrap();
        }
        assert_eq!(r.handle(999), None);
        // Handles are dense per shard: every handle is below the
        // shard's population, and re-resolution is stable.
        for id in 0..32u64 {
            let (shard, handle) = r.handle(id).expect("enrolled");
            assert_eq!(shard, r.shard_of(id));
            assert!((handle as usize) < r.len());
            assert_eq!(r.handle(id), Some((shard, handle)), "stable");
        }
    }

    #[test]
    fn enroll_batch_matches_sequential_and_reports_duplicates_in_order() {
        // Sequential reference.
        let seq = ShardedRegistry::new(4, DetectorConfig::default());
        for id in 0..16u64 {
            seq.enroll(id, record(id as u8)).unwrap();
        }
        // Batched: same 16 devices plus an intra-batch duplicate and a
        // duplicate of an already-batched id.
        let pre = ShardedRegistry::new(4, DetectorConfig::default());
        pre.enroll(100, record(1)).unwrap();
        let mut batch: Vec<(u64, EnrollmentRecord)> =
            (0..16u64).map(|id| (id, record(id as u8))).collect();
        batch.push((3, record(99))); // intra-batch duplicate
        batch.push((100, record(98))); // already enrolled
        let results = pre.enroll_batch(batch);
        assert_eq!(results.len(), 18);
        assert!(results[..16].iter().all(Result::is_ok));
        assert_eq!(
            results[16],
            Err(RegistryError::Duplicate { device_id: 3 }),
            "second occurrence in one batch loses"
        );
        assert_eq!(
            results[17],
            Err(RegistryError::Duplicate { device_id: 100 })
        );
        assert_eq!(pre.len(), 17);
        // First occurrence won: device 3 kept its original record.
        assert_eq!(pre.record(3).unwrap().key_digest, [3; 32]);
        for id in 0..16u64 {
            assert_eq!(pre.record(id), seq.record(id), "device {id}");
        }
    }

    #[test]
    fn zero_shards_promoted_to_one() {
        let r = ShardedRegistry::new(0, DetectorConfig::default());
        assert_eq!(r.shard_count(), 1);
        r.enroll(5, record(1)).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn concurrent_enrollment_across_threads() {
        let r = Arc::new(ShardedRegistry::new(4, DetectorConfig::default()));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        r.enroll(t * 1000 + i, record((t * 50 + i) as u8)).unwrap();
                    }
                });
            }
        });
        assert_eq!(r.len(), 200);
    }

    #[test]
    fn snapshot_roundtrip_is_lossless_and_deterministic() {
        let r = ShardedRegistry::new(4, DetectorConfig::default());
        // Enroll out of order: the snapshot must sort by id.
        r.enroll(9, record(9)).unwrap();
        r.enroll(2, record(2)).unwrap();
        r.enroll(700, record(3)).unwrap();
        let snap = r.snapshot_json();
        assert!(snap.contains("\"schema\": \"ropuf-verifier/v1\""));
        assert!(snap.find("\"device_id\": 2").unwrap() < snap.find("\"device_id\": 9").unwrap());

        let loaded = ShardedRegistry::from_snapshot(&snap, DetectorConfig::default()).unwrap();
        assert_eq!(loaded.shard_count(), 4);
        assert_eq!(loaded.len(), 3);
        for id in [2u64, 9, 700] {
            assert_eq!(loaded.record(id), r.record(id), "device {id}");
        }
        // Emit → load → emit is byte-identical.
        assert_eq!(loaded.snapshot_json(), snap);
    }

    #[test]
    fn v2_snapshot_roundtrips_and_sniffs() {
        let r = ShardedRegistry::new(4, DetectorConfig::default());
        r.enroll(3, record(3)).unwrap();
        r.enroll(11, record(11)).unwrap();
        let v2 = r.snapshot_v2();
        let loaded = ShardedRegistry::from_snapshot_v2(&v2, DetectorConfig::default()).unwrap();
        assert_eq!(loaded.shard_count(), 4);
        assert_eq!(loaded.record(3), r.record(3));
        assert_eq!(loaded.record(11), r.record(11));
        assert_eq!(loaded.snapshot_v2(), v2, "emit → load → emit is stable");
        // The auto loader takes both formats.
        let via_auto = ShardedRegistry::load_snapshot_auto(&v2, DetectorConfig::default()).unwrap();
        assert_eq!(via_auto.record(3), r.record(3));
        let via_auto_v1 = ShardedRegistry::load_snapshot_auto(
            r.snapshot_json().as_bytes(),
            DetectorConfig::default(),
        )
        .unwrap();
        assert_eq!(via_auto_v1.record(11), r.record(11));
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let cfg = DetectorConfig::default();
        assert!(matches!(
            ShardedRegistry::from_snapshot("not json", cfg),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            ShardedRegistry::from_snapshot("{\"schema\": \"other/v9\"}", cfg),
            Err(SnapshotError::Schema(_))
        ));
        // A forged giant shard count must be a typed error, not an
        // allocation abort.
        let forged_shards =
            format!("{{\"schema\": \"{SCHEMA}\", \"shards\": 99999999999999, \"devices\": []}}");
        assert!(matches!(
            ShardedRegistry::from_snapshot(&forged_shards, cfg),
            Err(SnapshotError::Schema(_))
        ));
        let bad_hex = format!(
            "{{\"schema\": \"{SCHEMA}\", \"shards\": 1, \"devices\": [{{\"device_id\": 0, \"scheme\": \"lisa\", \"scheme_tag\": 76, \"helper\": \"zz\", \"key_digest\": \"00\"}}]}}"
        );
        assert!(matches!(
            ShardedRegistry::from_snapshot(&bad_hex, cfg),
            Err(SnapshotError::Hex("helper"))
        ));
        let dup = format!(
            "{{\"schema\": \"{SCHEMA}\", \"shards\": 1, \"devices\": [\
             {{\"device_id\": 3, \"scheme\": \"lisa\", \"scheme_tag\": 76, \"helper\": \"4c01\", \"key_digest\": \"{}\"}},\
             {{\"device_id\": 3, \"scheme\": \"lisa\", \"scheme_tag\": 76, \"helper\": \"4c01\", \"key_digest\": \"{}\"}}]}}",
            "00".repeat(32),
            "00".repeat(32)
        );
        assert!(matches!(
            ShardedRegistry::from_snapshot(&dup, cfg),
            Err(SnapshotError::Duplicate(3))
        ));
    }
}
