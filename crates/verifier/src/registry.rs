//! The sharded enrollment registry.
//!
//! One record per enrolled device: `{scheme tag, helper bytes, key
//! digest}`. Records are hashed across N shards, each behind its own
//! lock, so concurrent enrollment and authentication scale across
//! threads instead of serializing on one registry-wide mutex — the
//! ROADMAP's "heavy traffic from millions of users" shape. Each entry
//! also carries its device's [`DeviceDetector`] runtime state, so one
//! shard lock covers a whole authenticate step (lookup + detect).
//!
//! # Snapshot schema (`ropuf-verifier/v1`)
//!
//! [`ShardedRegistry::snapshot_json`] emits (and
//! [`ShardedRegistry::from_snapshot`] loads) the registry in the same
//! hand-rolled, byte-stable JSON style as the `ropuf-campaign/v1`
//! reports — fixed key order, devices sorted by id:
//!
//! ```jsonc
//! {
//!   "schema": "ropuf-verifier/v1",
//!   "shards": 8,
//!   "devices": [
//!     {"device_id": 0, "scheme": "lisa", "scheme_tag": 76,
//!      "helper": "<hex>", "key_digest": "<hex>"}
//!   ]
//! }
//! ```
//!
//! Detector state is deliberately **not** persisted: flags and rate
//! windows are runtime state of one serving epoch, and a reloaded
//! registry starts its devices unflagged.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use ropuf_constructions::scheme_name_of_tag;
use ropuf_hash::HmacKey;
use ropuf_numeric::splitmix64 as mix;

use crate::detector::{DetectorConfig, DeviceDetector, FlagReason};
use crate::json::{self, JsonValue};

/// Version tag embedded in every registry snapshot.
pub const SCHEMA: &str = "ropuf-verifier/v1";

/// Largest shard count a snapshot may request — a hard cap against
/// resource exhaustion via a forged `shards` field (snapshots are
/// operator-supplied input, same rationale as `wire::MAX_COUNT`).
pub const MAX_SHARDS: u64 = 1 << 16;

/// What the defender stores per enrolled device.
///
/// The `key_digest` is the derived verification credential (see the
/// crate-level protocol notes) — the registry never holds the PUF
/// master key itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnrollmentRecord {
    /// Wire tag of the scheme the device was enrolled under.
    pub scheme_tag: u8,
    /// The helper blob as enrolled (integrity reference).
    pub helper: Vec<u8>,
    /// SHA-256 of the enrolled key bytes — the HMAC verification key.
    pub key_digest: [u8; 32],
}

/// Registry operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The device id is already enrolled.
    Duplicate {
        /// The offending id.
        device_id: u64,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate { device_id } => {
                write!(f, "device {device_id} is already enrolled")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Snapshot load errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(String),
    /// The document parses but violates the `ropuf-verifier/v1` shape.
    Schema(&'static str),
    /// A hex field failed to decode.
    Hex(&'static str),
    /// Two devices share an id.
    Duplicate(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "snapshot is not valid JSON: {e}"),
            SnapshotError::Schema(what) => write!(f, "snapshot schema violation: {what}"),
            SnapshotError::Hex(field) => write!(f, "snapshot field {field} is not valid hex"),
            SnapshotError::Duplicate(id) => write!(f, "snapshot enrolls device {id} twice"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One shard entry: the durable record plus the device's detector
/// runtime state, co-located so a single shard lock covers an entire
/// authenticate step. Also caches the precomputed HMAC key schedule
/// ([`HmacKey`]) of the stored credential, so serving an
/// authentication never re-derives it — tag verification is two
/// midstate clones per request instead of a full key schedule.
#[derive(Debug, Clone)]
pub(crate) struct DeviceEntry {
    pub(crate) record: EnrollmentRecord,
    pub(crate) detector: DeviceDetector,
    pub(crate) hmac_key: HmacKey,
}

impl DeviceEntry {
    /// Builds the entry, deriving the detector and the cached HMAC
    /// midstates from the record. The only place the key schedule is
    /// computed — everything after enrollment clones midstates.
    pub(crate) fn new(record: EnrollmentRecord, config: DetectorConfig) -> Self {
        let detector = DeviceDetector::new(config, record.scheme_tag, &record.helper);
        let hmac_key = HmacKey::new(&record.key_digest);
        Self {
            record,
            detector,
            hmac_key,
        }
    }
}

/// Device-id → [`EnrollmentRecord`] map, hashed across N independently
/// locked shards.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<Mutex<HashMap<u64, DeviceEntry>>>,
    detector_config: DetectorConfig,
}

impl ShardedRegistry {
    /// Creates an empty registry with `shards` shards (`0` is promoted
    /// to 1). Every enrolled device gets a [`DeviceDetector`] built
    /// from `detector_config`.
    pub fn new(shards: usize, detector_config: DetectorConfig) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            detector_config,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The detector thresholds new enrollments receive.
    pub fn detector_config(&self) -> DetectorConfig {
        self.detector_config
    }

    /// Shard index a device id hashes to.
    pub fn shard_of(&self, device_id: u64) -> usize {
        (mix(device_id) % self.shards.len() as u64) as usize
    }

    /// Enrolls a device.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Duplicate`] when the id is already enrolled.
    ///
    /// # Panics
    ///
    /// Panics if the shard lock is poisoned (a previous holder
    /// panicked).
    pub fn enroll(&self, device_id: u64, record: EnrollmentRecord) -> Result<(), RegistryError> {
        let entry = DeviceEntry::new(record, self.detector_config);
        let mut shard = self.shards[self.shard_of(device_id)]
            .lock()
            .expect("shard lock poisoned");
        if shard.contains_key(&device_id) {
            return Err(RegistryError::Duplicate { device_id });
        }
        shard.insert(device_id, entry);
        Ok(())
    }

    /// Enrolls a whole batch, locking each shard **once** per batch
    /// instead of once per device — the bulk path fleet provisioning
    /// (loadgen, server startup) goes through. Results come back in
    /// input order; a device id appearing twice in one batch enrolls
    /// the first occurrence and reports
    /// [`RegistryError::Duplicate`] for the rest, exactly as
    /// sequential [`ShardedRegistry::enroll`] calls would.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned (a previous holder panicked).
    pub fn enroll_batch(
        &self,
        entries: Vec<(u64, EnrollmentRecord)>,
    ) -> Vec<Result<(), RegistryError>> {
        let mut results: Vec<Result<(), RegistryError>> = Vec::with_capacity(entries.len());
        results.resize_with(entries.len(), || Ok(()));
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shard_count()];
        for (i, (device_id, _)) in entries.iter().enumerate() {
            buckets[self.shard_of(*device_id)].push(i);
        }
        // Build the entries (helper digest + HMAC key schedule) *before*
        // taking any shard lock, like the sequential path — concurrent
        // serving traffic must not stall behind a bulk load.
        let mut entries: Vec<Option<(u64, DeviceEntry)>> = entries
            .into_iter()
            .map(|(device_id, record)| {
                Some((device_id, DeviceEntry::new(record, self.detector_config)))
            })
            .collect();
        for (shard_index, indices) in buckets.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut shard = self.shards[shard_index]
                .lock()
                .expect("shard lock poisoned");
            for &i in indices {
                let (device_id, entry) = entries[i].take().expect("each entry consumed once");
                if shard.contains_key(&device_id) {
                    results[i] = Err(RegistryError::Duplicate { device_id });
                    continue;
                }
                shard.insert(device_id, entry);
            }
        }
        results
    }

    /// Total enrolled devices (locks every shard once).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").len())
            .sum()
    }

    /// `true` when no device is enrolled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` on the device's entry under its shard lock.
    pub(crate) fn with_entry<R>(
        &self,
        device_id: u64,
        f: impl FnOnce(&mut DeviceEntry) -> R,
    ) -> Option<R> {
        let mut shard = self.shards[self.shard_of(device_id)]
            .lock()
            .expect("shard lock poisoned");
        shard.get_mut(&device_id).map(f)
    }

    /// Grants `f` direct access to one locked shard (the batched
    /// authentication path locks each shard once per batch).
    pub(crate) fn with_shard<R>(
        &self,
        shard_index: usize,
        f: impl FnOnce(&mut HashMap<u64, DeviceEntry>) -> R,
    ) -> R {
        let mut shard = self.shards[shard_index]
            .lock()
            .expect("shard lock poisoned");
        f(&mut shard)
    }

    /// Copy of a device's enrollment record.
    pub fn record(&self, device_id: u64) -> Option<EnrollmentRecord> {
        self.with_entry(device_id, |e| e.record.clone())
    }

    /// `(timestamp, reason)` of the device's first flag, if flagged.
    pub fn flag_info(&self, device_id: u64) -> Option<(u64, FlagReason)> {
        self.with_entry(device_id, |e| e.detector.flagged())
            .flatten()
    }

    /// Device ids currently flagged, ascending.
    pub fn flagged_devices(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            out.extend(
                shard
                    .iter()
                    .filter(|(_, e)| e.detector.flagged().is_some())
                    .map(|(&id, _)| id),
            );
        }
        out.sort_unstable();
        out
    }

    /// Serializes the registry under the `ropuf-verifier/v1` schema
    /// (fixed key order, devices sorted by id — byte-identical for the
    /// same enrolled set regardless of enrollment order or shard
    /// count, apart from the recorded `shards` field itself).
    pub fn snapshot_json(&self) -> String {
        let mut devices: Vec<(u64, EnrollmentRecord)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            devices.extend(shard.iter().map(|(&id, e)| (id, e.record.clone())));
        }
        devices.sort_unstable_by_key(|(id, _)| *id);

        let mut out = String::with_capacity(128 + 160 * devices.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"shards\": {},\n", self.shards.len()));
        out.push_str("  \"devices\": [\n");
        for (i, (id, record)) in devices.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"device_id\": {id}, \"scheme\": \"{}\", \"scheme_tag\": {}, \"helper\": \"{}\", \"key_digest\": \"{}\"}}",
                scheme_name_of_tag(record.scheme_tag).unwrap_or("unknown"),
                record.scheme_tag,
                json::to_hex(&record.helper),
                json::to_hex(&record.key_digest),
            ));
            if i + 1 < devices.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Loads a `ropuf-verifier/v1` snapshot. The shard count comes from
    /// the snapshot; detectors start fresh (unflagged) under
    /// `detector_config`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] for malformed JSON, a schema
    /// violation, bad hex, or duplicate device ids.
    pub fn from_snapshot(
        snapshot: &str,
        detector_config: DetectorConfig,
    ) -> Result<Self, SnapshotError> {
        let doc = json::parse(snapshot).map_err(|e| SnapshotError::Json(e.to_string()))?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == SCHEMA => {}
            _ => return Err(SnapshotError::Schema("missing or unsupported schema tag")),
        }
        let shards = doc
            .get("shards")
            .and_then(JsonValue::as_u64)
            .filter(|&n| n <= MAX_SHARDS)
            .ok_or(SnapshotError::Schema("missing or implausible shard count"))?
            as usize;
        let devices = doc
            .get("devices")
            .and_then(JsonValue::as_array)
            .ok_or(SnapshotError::Schema("missing devices array"))?;

        let registry = Self::new(shards, detector_config);
        for device in devices {
            let device_id = device
                .get("device_id")
                .and_then(JsonValue::as_u64)
                .ok_or(SnapshotError::Schema("device without device_id"))?;
            let scheme_tag = device
                .get("scheme_tag")
                .and_then(JsonValue::as_u64)
                .filter(|&t| t <= u8::MAX as u64)
                .ok_or(SnapshotError::Schema("device without scheme_tag"))?
                as u8;
            let helper_hex = device
                .get("helper")
                .and_then(JsonValue::as_str)
                .ok_or(SnapshotError::Schema("device without helper"))?;
            let helper = json::from_hex(helper_hex).map_err(|_| SnapshotError::Hex("helper"))?;
            let digest_hex = device
                .get("key_digest")
                .and_then(JsonValue::as_str)
                .ok_or(SnapshotError::Schema("device without key_digest"))?;
            let digest_bytes =
                json::from_hex(digest_hex).map_err(|_| SnapshotError::Hex("key_digest"))?;
            let key_digest: [u8; 32] = digest_bytes
                .try_into()
                .map_err(|_| SnapshotError::Schema("key_digest is not 32 bytes"))?;
            registry
                .enroll(
                    device_id,
                    EnrollmentRecord {
                        scheme_tag,
                        helper,
                        key_digest,
                    },
                )
                .map_err(|_| SnapshotError::Duplicate(device_id))?;
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LISA_TAG;
    use std::sync::Arc;

    fn record(fill: u8) -> EnrollmentRecord {
        EnrollmentRecord {
            scheme_tag: LISA_TAG,
            helper: vec![LISA_TAG, 1, fill, fill],
            key_digest: [fill; 32],
        }
    }

    #[test]
    fn enroll_lookup_and_duplicate_rejection() {
        let r = ShardedRegistry::new(4, DetectorConfig::default());
        assert!(r.is_empty());
        r.enroll(1, record(7)).unwrap();
        r.enroll(2, record(8)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.record(1).unwrap().key_digest, [7; 32]);
        assert_eq!(r.record(3), None);
        assert_eq!(
            r.enroll(1, record(9)),
            Err(RegistryError::Duplicate { device_id: 1 })
        );
    }

    #[test]
    fn sharding_spreads_sequential_ids() {
        let r = ShardedRegistry::new(8, DetectorConfig::default());
        let mut seen = std::collections::HashSet::new();
        for id in 0..64u64 {
            seen.insert(r.shard_of(id));
            assert!(r.shard_of(id) < 8);
            assert_eq!(r.shard_of(id), r.shard_of(id), "stable");
        }
        assert!(
            seen.len() >= 6,
            "sequential ids should hit most of 8 shards, got {}",
            seen.len()
        );
    }

    #[test]
    fn enroll_batch_matches_sequential_and_reports_duplicates_in_order() {
        // Sequential reference.
        let seq = ShardedRegistry::new(4, DetectorConfig::default());
        for id in 0..16u64 {
            seq.enroll(id, record(id as u8)).unwrap();
        }
        // Batched: same 16 devices plus an intra-batch duplicate and a
        // duplicate of an already-batched id.
        let pre = ShardedRegistry::new(4, DetectorConfig::default());
        pre.enroll(100, record(1)).unwrap();
        let mut batch: Vec<(u64, EnrollmentRecord)> =
            (0..16u64).map(|id| (id, record(id as u8))).collect();
        batch.push((3, record(99))); // intra-batch duplicate
        batch.push((100, record(98))); // already enrolled
        let results = pre.enroll_batch(batch);
        assert_eq!(results.len(), 18);
        assert!(results[..16].iter().all(Result::is_ok));
        assert_eq!(
            results[16],
            Err(RegistryError::Duplicate { device_id: 3 }),
            "second occurrence in one batch loses"
        );
        assert_eq!(
            results[17],
            Err(RegistryError::Duplicate { device_id: 100 })
        );
        assert_eq!(pre.len(), 17);
        // First occurrence won: device 3 kept its original record.
        assert_eq!(pre.record(3).unwrap().key_digest, [3; 32]);
        for id in 0..16u64 {
            assert_eq!(pre.record(id), seq.record(id), "device {id}");
        }
    }

    #[test]
    fn zero_shards_promoted_to_one() {
        let r = ShardedRegistry::new(0, DetectorConfig::default());
        assert_eq!(r.shard_count(), 1);
        r.enroll(5, record(1)).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn concurrent_enrollment_across_threads() {
        let r = Arc::new(ShardedRegistry::new(4, DetectorConfig::default()));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        r.enroll(t * 1000 + i, record((t * 50 + i) as u8)).unwrap();
                    }
                });
            }
        });
        assert_eq!(r.len(), 200);
    }

    #[test]
    fn snapshot_roundtrip_is_lossless_and_deterministic() {
        let r = ShardedRegistry::new(4, DetectorConfig::default());
        // Enroll out of order: the snapshot must sort by id.
        r.enroll(9, record(9)).unwrap();
        r.enroll(2, record(2)).unwrap();
        r.enroll(700, record(3)).unwrap();
        let snap = r.snapshot_json();
        assert!(snap.contains("\"schema\": \"ropuf-verifier/v1\""));
        assert!(snap.find("\"device_id\": 2").unwrap() < snap.find("\"device_id\": 9").unwrap());

        let loaded = ShardedRegistry::from_snapshot(&snap, DetectorConfig::default()).unwrap();
        assert_eq!(loaded.shard_count(), 4);
        assert_eq!(loaded.len(), 3);
        for id in [2u64, 9, 700] {
            assert_eq!(loaded.record(id), r.record(id), "device {id}");
        }
        // Emit → load → emit is byte-identical.
        assert_eq!(loaded.snapshot_json(), snap);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let cfg = DetectorConfig::default();
        assert!(matches!(
            ShardedRegistry::from_snapshot("not json", cfg),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            ShardedRegistry::from_snapshot("{\"schema\": \"other/v9\"}", cfg),
            Err(SnapshotError::Schema(_))
        ));
        // A forged giant shard count must be a typed error, not an
        // allocation abort.
        let forged_shards =
            format!("{{\"schema\": \"{SCHEMA}\", \"shards\": 99999999999999, \"devices\": []}}");
        assert!(matches!(
            ShardedRegistry::from_snapshot(&forged_shards, cfg),
            Err(SnapshotError::Schema(_))
        ));
        let bad_hex = format!(
            "{{\"schema\": \"{SCHEMA}\", \"shards\": 1, \"devices\": [{{\"device_id\": 0, \"scheme\": \"lisa\", \"scheme_tag\": 76, \"helper\": \"zz\", \"key_digest\": \"00\"}}]}}"
        );
        assert!(matches!(
            ShardedRegistry::from_snapshot(&bad_hex, cfg),
            Err(SnapshotError::Hex("helper"))
        ));
        let dup = format!(
            "{{\"schema\": \"{SCHEMA}\", \"shards\": 1, \"devices\": [\
             {{\"device_id\": 3, \"scheme\": \"lisa\", \"scheme_tag\": 76, \"helper\": \"4c01\", \"key_digest\": \"{}\"}},\
             {{\"device_id\": 3, \"scheme\": \"lisa\", \"scheme_tag\": 76, \"helper\": \"4c01\", \"key_digest\": \"{}\"}}]}}",
            "00".repeat(32),
            "00".repeat(32)
        );
        assert!(matches!(
            ShardedRegistry::from_snapshot(&dup, cfg),
            Err(SnapshotError::Duplicate(3))
        ));
    }
}
