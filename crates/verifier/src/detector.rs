//! Per-device online attack detection.
//!
//! Each of the paper's attacks (§VI) needs two things the defender can
//! see: **manipulated helper data** on the device and **many queries**,
//! most of which fail key regeneration. No single observation proves an
//! attack — helper NVM can glitch, devices fail occasionally under
//! noise, traffic bursts happen — so the detector combines three weak
//! signals into one [`AuthVerdict`] per query, in the spirit of the
//! evidence-combination calculi for belief functions:
//!
//! 1. **Helper integrity** — the presented helper blob is wire-format
//!    reparsed for the enrolled scheme and digest-compared against the
//!    enrolled bytes. Any mismatch is the strongest evidence the paper's
//!    attacks exist at all.
//! 2. **Query-rate budget** — a sliding window over logical time; the
//!    statistical attacks need hundreds of queries where a benign
//!    device authenticates a handful of times.
//! 3. **Failure streak** — consecutive failed authentications; error
//!    injection drives regeneration failure rates toward 1 for wrong
//!    hypotheses, while benign noise failures are rare and isolated.
//!
//! A flag **latches**: once a device is flagged it stays quarantined
//! until the defender intervenes, and the flag timestamp is the
//! time-to-detection measurement closed-loop campaigns report.

use std::collections::VecDeque;
use std::fmt;

use ropuf_constructions::{helper_digest, validate_helper, SanityPolicy};

/// Why a device was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagReason {
    /// The presented helper blob parses but differs from the enrolled
    /// bytes.
    HelperMismatch,
    /// The presented helper blob no longer parses for the enrolled
    /// scheme.
    MalformedHelper,
    /// More queries inside the sliding window than the budget allows.
    RateBudget,
    /// Too many consecutive failed authentications.
    FailureStreak,
}

impl FlagReason {
    /// Short machine-readable label ("helper-mismatch", …) used in
    /// campaign reports.
    pub fn label(&self) -> &'static str {
        match self {
            FlagReason::HelperMismatch => "helper-mismatch",
            FlagReason::MalformedHelper => "malformed-helper",
            FlagReason::RateBudget => "rate-budget",
            FlagReason::FailureStreak => "failure-streak",
        }
    }

    /// Stable one-byte discriminant used by the durable storage layer
    /// (`ropuf-verifier/v2` snapshots and WAL flag records). Matches
    /// the `ropuf-wire/v1` `WireFlagReason` numbering.
    pub fn code(self) -> u8 {
        match self {
            FlagReason::HelperMismatch => 0,
            FlagReason::MalformedHelper => 1,
            FlagReason::RateBudget => 2,
            FlagReason::FailureStreak => 3,
        }
    }

    /// Parses a stored discriminant; `None` for bytes no release ever
    /// wrote (storage decoders turn that into a typed error).
    pub fn from_code(value: u8) -> Option<Self> {
        match value {
            0 => Some(FlagReason::HelperMismatch),
            1 => Some(FlagReason::MalformedHelper),
            2 => Some(FlagReason::RateBudget),
            3 => Some(FlagReason::FailureStreak),
            _ => None,
        }
    }
}

impl fmt::Display for FlagReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-query decision of the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthVerdict {
    /// The response verified and no detector tripped.
    Accept,
    /// The response did not verify (unknown device, wrong tag, or an
    /// observable reconstruction failure) — below the flagging bar.
    Reject,
    /// A detector tripped; the device is quarantined.
    Flagged(FlagReason),
}

impl AuthVerdict {
    /// `true` for [`AuthVerdict::Accept`].
    pub fn is_accept(&self) -> bool {
        matches!(self, AuthVerdict::Accept)
    }

    /// `true` for [`AuthVerdict::Flagged`].
    pub fn is_flagged(&self) -> bool {
        matches!(self, AuthVerdict::Flagged(_))
    }
}

/// Detector thresholds, shared by every device of a verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Enable the helper-data integrity signal (reparse + digest
    /// compare) when a query presents helper bytes.
    pub integrity_check: bool,
    /// Width of the sliding query-rate window, in ticks of the caller's
    /// logical clock.
    pub rate_window: u64,
    /// Maximum queries tolerated inside one window before flagging.
    pub rate_budget: u32,
    /// Consecutive failed authentications before flagging.
    pub failure_streak: u32,
}

impl Default for DetectorConfig {
    /// Defaults sized for the closed-loop scenarios: a benign device
    /// authenticating every few ticks stays far inside every budget,
    /// while the paper's attacks (hundreds of back-to-back queries with
    /// manipulated helper blobs) trip within a handful of queries.
    fn default() -> Self {
        Self {
            integrity_check: true,
            rate_window: 64,
            rate_budget: 32,
            failure_streak: 4,
        }
    }
}

/// Online attack detector for one enrolled device.
///
/// `observe` consumes the defender-visible facts of one query —
/// logical timestamp, presented helper bytes (when the gateway can read
/// the device's NVM), and whether the response verified — and returns
/// the combined verdict. Timestamps must be non-decreasing per device.
#[derive(Debug, Clone)]
pub struct DeviceDetector {
    config: DetectorConfig,
    scheme_tag: u8,
    enrolled_digest: [u8; 32],
    recent: VecDeque<u64>,
    consecutive_failures: u32,
    flagged: Option<(u64, FlagReason)>,
}

impl DeviceDetector {
    /// Creates the detector for a device enrolled with `enrolled_helper`
    /// under the scheme identified by `scheme_tag`.
    pub fn new(config: DetectorConfig, scheme_tag: u8, enrolled_helper: &[u8]) -> Self {
        Self {
            config,
            scheme_tag,
            enrolled_digest: helper_digest(enrolled_helper),
            recent: VecDeque::new(),
            consecutive_failures: 0,
            flagged: None,
        }
    }

    /// `(timestamp, reason)` of the first flag, once flagged.
    pub fn flagged(&self) -> Option<(u64, FlagReason)> {
        self.flagged
    }

    /// Re-latches a flag recorded by the durable storage layer, so a
    /// recovered registry quarantines exactly the devices the crashed
    /// process had quarantined. First flag wins, like the live latch:
    /// restoring onto an already-flagged detector is a no-op.
    pub fn restore_flag(&mut self, at: u64, reason: FlagReason) {
        if self.flagged.is_none() {
            self.flagged = Some((at, reason));
        }
    }

    /// Judges one query. `presented_helper` is the device's current
    /// helper NVM contents when the defender can read them (`None`
    /// disables the integrity signal for this query); `auth_ok` is
    /// whether the response verified against the enrolled credential.
    pub fn observe(
        &mut self,
        now: u64,
        presented_helper: Option<&[u8]>,
        auth_ok: bool,
    ) -> AuthVerdict {
        // Quarantine latch: a flagged device stays flagged.
        if let Some((_, reason)) = self.flagged {
            return AuthVerdict::Flagged(reason);
        }

        // Signal 1: helper integrity (digest compare + wire reparse).
        if self.config.integrity_check {
            if let Some(helper) = presented_helper {
                if helper_digest(helper) != self.enrolled_digest {
                    let reason = if validate_helper(self.scheme_tag, helper, SanityPolicy::Lenient)
                        .is_err()
                    {
                        FlagReason::MalformedHelper
                    } else {
                        FlagReason::HelperMismatch
                    };
                    return self.flag(now, reason);
                }
            }
        }

        // Signal 2: sliding-window query-rate budget.
        while self
            .recent
            .front()
            .is_some_and(|&t| t + self.config.rate_window <= now)
        {
            self.recent.pop_front();
        }
        self.recent.push_back(now);
        if self.recent.len() > self.config.rate_budget as usize {
            return self.flag(now, FlagReason::RateBudget);
        }

        // Signal 3: consecutive-failure streak.
        if auth_ok {
            self.consecutive_failures = 0;
            AuthVerdict::Accept
        } else {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.config.failure_streak {
                self.flag(now, FlagReason::FailureStreak)
            } else {
                AuthVerdict::Reject
            }
        }
    }

    fn flag(&mut self, now: u64, reason: FlagReason) -> AuthVerdict {
        self.flagged = Some((now, reason));
        AuthVerdict::Flagged(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LISA_TAG;

    /// A structurally valid enrolled blob is irrelevant for most signal
    /// tests; integrity is exercised with real blobs in the service
    /// tests, here with digest mismatches on raw bytes.
    fn detector(config: DetectorConfig) -> (DeviceDetector, Vec<u8>) {
        let enrolled = vec![LISA_TAG, 1, 2, 3, 4];
        (DeviceDetector::new(config, LISA_TAG, &enrolled), enrolled)
    }

    fn relaxed() -> DetectorConfig {
        DetectorConfig {
            integrity_check: true,
            rate_window: 10,
            rate_budget: 3,
            failure_streak: 2,
        }
    }

    #[test]
    fn matching_helper_and_good_auth_accepts() {
        let (mut d, enrolled) = detector(relaxed());
        assert_eq!(d.observe(0, Some(&enrolled), true), AuthVerdict::Accept);
        assert_eq!(d.flagged(), None);
    }

    #[test]
    fn tampered_helper_flags_immediately_and_latches() {
        let (mut d, enrolled) = detector(relaxed());
        let mut tampered = enrolled.clone();
        tampered[2] ^= 0xFF;
        // Tampered bytes may or may not reparse; either way it's a flag.
        let v = d.observe(5, Some(&tampered), true);
        assert!(v.is_flagged());
        assert_eq!(d.flagged().map(|(t, _)| t), Some(5));
        // Latch: even a pristine follow-up query stays flagged.
        assert!(d.observe(6, Some(&enrolled), true).is_flagged());
    }

    #[test]
    fn garbage_helper_reports_malformed() {
        let (mut d, _) = detector(relaxed());
        let garbage = vec![0xEE; 7];
        assert_eq!(
            d.observe(0, Some(&garbage), true),
            AuthVerdict::Flagged(FlagReason::MalformedHelper)
        );
    }

    #[test]
    fn rate_budget_flags_bursts_but_not_spaced_traffic() {
        let cfg = relaxed(); // window 10, budget 3
        let (mut d, enrolled) = detector(cfg);
        // Spaced traffic: one query per 11 ticks never accumulates.
        for i in 0..10u64 {
            assert_eq!(
                d.observe(i * 11, Some(&enrolled), true),
                AuthVerdict::Accept
            );
        }
        // Burst: 4 queries in one window trips the budget.
        let (mut d, enrolled) = detector(cfg);
        for i in 0..3u64 {
            assert!(!d.observe(100 + i, Some(&enrolled), true).is_flagged());
        }
        assert_eq!(
            d.observe(103, Some(&enrolled), true),
            AuthVerdict::Flagged(FlagReason::RateBudget)
        );
    }

    #[test]
    fn failure_streak_flags_and_success_resets() {
        let (mut d, enrolled) = detector(relaxed()); // streak 2
        assert_eq!(d.observe(0, Some(&enrolled), false), AuthVerdict::Reject);
        assert_eq!(d.observe(20, Some(&enrolled), true), AuthVerdict::Accept);
        assert_eq!(d.observe(40, Some(&enrolled), false), AuthVerdict::Reject);
        assert_eq!(
            d.observe(60, Some(&enrolled), false),
            AuthVerdict::Flagged(FlagReason::FailureStreak)
        );
    }

    #[test]
    fn integrity_can_be_disabled() {
        let mut cfg = relaxed();
        cfg.integrity_check = false;
        let (mut d, enrolled) = detector(cfg);
        let mut tampered = enrolled;
        tampered[3] ^= 1;
        assert_eq!(d.observe(0, Some(&tampered), true), AuthVerdict::Accept);
    }

    #[test]
    fn no_helper_means_no_integrity_signal() {
        let (mut d, _) = detector(relaxed());
        assert_eq!(d.observe(0, None, true), AuthVerdict::Accept);
    }
}
