//! The resilient client: deadlines, reconnects, and idempotency-aware
//! retries over a faulty network.
//!
//! The plain [`Client`](crate::Client) assumes a healthy transport —
//! one error and the exchange is simply lost. This module is the
//! production posture: every socket operation has a deadline, every
//! failure is classified (connect, transport, overload) and retried
//! under a budgeted, capped-exponential-backoff [`RetryPolicy`] with
//! deterministic seeded jitter, and a torn connection is transparently
//! re-dialed. Retries respect idempotency per message type:
//!
//! | request | retry rule |
//! |---------|-----------|
//! | `Authenticate` / `BatchAuthenticate` | retry freely — the verifier judges each attempt on its own evidence; a replayed genuine attempt is just another genuine attempt |
//! | `QueryVerdict` / scrapes | retry freely — pure reads |
//! | `Enroll` | retry, treating [`ErrorCode::DuplicateDevice`] after a retry as success: the first attempt may have been applied with only its *answer* lost |
//! | answered [`ErrorCode::Overloaded`] | wait the server's `retry_after_ms` hint, then retry (budgeted like any other retry) |
//! | answered [`ErrorCode::ReadOnly`] and other typed errors | surface immediately — the server answered; retrying cannot change its mind |
//!
//! For chaos testing, the transport layer can be wrapped in a seeded
//! [`FaultPlan`] per connection — partial I/O, injected delays,
//! connection resets — making an entire retry storm deterministic and
//! replayable.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ropuf_proto::{
    parse_retry_after_ms, ErrorCode, FaultPlan, FaultyStream, FrameAccum, FrameError, FramePoll,
    Request, Response, MAX_FRAME,
};
use ropuf_telemetry::{Counter, Registry};

use crate::transport::{ClientError, Transport};

/// Socket deadlines for one connection. `None` disables that deadline
/// (the [`Default`] is fully armed: 1 s connect, 5 s read/write —
/// generous for a LAN, finite for a wedge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadlines {
    /// TCP connect deadline.
    pub connect: Option<Duration>,
    /// Per-`read(2)` deadline once connected.
    pub read: Option<Duration>,
    /// Per-`write(2)` deadline once connected.
    pub write: Option<Duration>,
}

impl Default for Deadlines {
    fn default() -> Self {
        Self {
            connect: Some(Duration::from_secs(1)),
            read: Some(Duration::from_secs(5)),
            write: Some(Duration::from_secs(5)),
        }
    }
}

impl Deadlines {
    /// No deadlines anywhere — the pre-hardening behavior.
    pub fn none() -> Self {
        Self {
            connect: None,
            read: None,
            write: None,
        }
    }
}

/// Capped exponential backoff with deterministic seeded jitter and a
/// hard retry budget.
///
/// The delay for retry `attempt` (0-based) of operation `op` is drawn
/// from `[base/2, base]` where `base = min(base_delay · 2^attempt,
/// max_delay)` — "equal jitter": never more than the cap, never so
/// small that a thundering herd stays in phase. The draw is a pure
/// function of `(seed, op, attempt)`, so a chaos run's entire timing
/// schedule replays bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per operation (total attempts = budget + 1).
    pub budget: u32,
    /// First retry's nominal delay.
    pub base_delay: Duration,
    /// Hard ceiling on any single delay.
    pub max_delay: Duration,
    /// Jitter seed; two clients with different seeds desynchronize.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            budget: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (attempts exactly once).
    pub fn no_retries() -> Self {
        Self {
            budget: 0,
            ..Self::default()
        }
    }

    /// The delay before retry `attempt` (0-based) of operation `op`.
    /// Deterministic in `(seed, op, attempt)`; always `<= max_delay`.
    pub fn delay(&self, op: u64, attempt: u32) -> Duration {
        let base_ns = u64::try_from(self.base_delay.as_nanos()).unwrap_or(u64::MAX);
        let cap_ns = u64::try_from(self.max_delay.as_nanos()).unwrap_or(u64::MAX);
        let exp_ns = base_ns.saturating_mul(1u64 << attempt.min(32)).min(cap_ns);
        // Equal jitter: [exp/2, exp], drawn deterministically.
        let half = exp_ns / 2;
        let roll = ropuf_numeric::splitmix64(
            self.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt),
        );
        let jitter = if half == 0 {
            0
        } else {
            roll % (exp_ns - half + 1)
        };
        Duration::from_nanos(half + jitter)
    }
}

/// Why a retry happened — the `cause` label of `client.retries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryCause {
    /// The dial itself failed (refused, timed out).
    Connect,
    /// An established exchange died (reset, EOF, deadline).
    Transport,
    /// The server answered [`ErrorCode::Overloaded`].
    Overloaded,
}

impl RetryCause {
    fn slot(self) -> usize {
        match self {
            RetryCause::Connect => 0,
            RetryCause::Transport => 1,
            RetryCause::Overloaded => 2,
        }
    }
}

/// `cause` label values, in [`RetryCause::slot`] order.
const CAUSES: [&str; 3] = ["connect", "transport", "overloaded"];

/// A framed request/response transport over one TCP connection whose
/// byte stream runs through a [`FaultPlan`] — the chaos-capable
/// cousin of [`TcpTransport`](crate::tcp::TcpTransport). With a
/// transparent (default) plan it is an ordinary deadline-armed
/// transport.
#[derive(Debug)]
pub struct FaultyTcpTransport {
    stream: FaultyStream<TcpStream>,
    accum: FrameAccum,
    out: Vec<u8>,
}

impl FaultyTcpTransport {
    /// Dials `addr` under `deadlines` and arms `plan` on the stream.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures (a connect deadline that
    /// expires is `io::ErrorKind::TimedOut`).
    pub fn connect(addr: SocketAddr, deadlines: &Deadlines, plan: FaultPlan) -> io::Result<Self> {
        let stream = match deadlines.connect {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true).ok(); // latency over batching
        stream.set_read_timeout(deadlines.read)?;
        stream.set_write_timeout(deadlines.write)?;
        Ok(Self {
            stream: FaultyStream::new(stream, plan),
            accum: FrameAccum::new(),
            out: Vec::new(),
        })
    }

    /// One exchange returning the raw response payload bytes — the
    /// bit-for-bit comparison form the equivalence suites consume.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on transport or framing failure.
    pub fn roundtrip_raw(&mut self, request_payload: &[u8]) -> Result<Vec<u8>, FrameError> {
        self.out.clear();
        ropuf_proto::append_frame(&mut self.out, request_payload)?;
        // write_all through the fault plan: partial writes and delays
        // are absorbed here, resets surface as io errors.
        io::Write::write_all(&mut self.stream, &self.out).map_err(FrameError::Io)?;
        ropuf_proto::frame::bound_scratch(&mut self.out);
        self.accum.finish_frame();
        loop {
            match self.accum.poll(&mut self.stream)? {
                FramePoll::Frame => {
                    let payload = self.accum.payload().to_vec();
                    self.accum.finish_frame();
                    return Ok(payload);
                }
                // A deadline expiring surfaces as WouldBlock/TimedOut
                // from the kernel; `poll` maps hard errors already, and
                // Pending only means "no complete frame yet" on a
                // stream that made progress — keep pulling.
                FramePoll::Pending => continue,
                FramePoll::Eof => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-exchange",
                    )))
                }
            }
        }
    }
}

impl Transport for FaultyTcpTransport {
    fn roundtrip_frame(&mut self, request_payload: &[u8]) -> Result<Response, FrameError> {
        let payload = self.roundtrip_raw(request_payload)?;
        Ok(Response::decode(&payload)?)
    }
}

/// Per-connection fault plans: called with a connection serial
/// (0 for the first dial, 1 for the first re-dial, …) and returns the
/// plan to arm on that connection's stream.
pub type PlanFactory = Box<dyn FnMut(u64) -> FaultPlan + Send>;

/// A self-healing typed client: dials on demand, re-dials on
/// transport failure, and retries per the idempotency table in the
/// [module docs](self).
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    deadlines: Deadlines,
    plans: Option<PlanFactory>,
    conn: Option<FaultyTcpTransport>,
    conn_serial: u64,
    op_serial: u64,
    retries: [Counter; CAUSES.len()],
    reconnects: u64,
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addr", &self.addr)
            .field("policy", &self.policy)
            .field("conn_serial", &self.conn_serial)
            .finish_non_exhaustive()
    }
}

impl ResilientClient {
    /// Builds a client for `addr`. Nothing is dialed until the first
    /// operation.
    ///
    /// # Errors
    ///
    /// Address resolution failure.
    pub fn new(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
        deadlines: Deadlines,
    ) -> io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(Self {
            addr,
            policy,
            deadlines,
            plans: None,
            conn: None,
            conn_serial: 0,
            op_serial: 0,
            retries: CAUSES.map(|_| Counter::default()),
            reconnects: 0,
        })
    }

    /// Arms a per-connection fault-plan factory (chaos testing).
    pub fn with_faults(mut self, plans: PlanFactory) -> Self {
        self.plans = Some(plans);
        self
    }

    /// Registers `client.retries{cause}` counters in `telemetry`; the
    /// client counts into them from then on.
    pub fn attach_telemetry(&mut self, telemetry: &Registry) {
        self.retries = CAUSES.map(|cause| telemetry.counter("client.retries", &[("cause", cause)]));
    }

    /// Total retries so far, all causes.
    pub fn retries_total(&self) -> u64 {
        self.retries.iter().map(Counter::get).sum()
    }

    /// Connections re-dialed after the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn count_retry(&self, cause: RetryCause) {
        self.retries[cause.slot()].inc();
    }

    fn ensure_connected(&mut self) -> io::Result<&mut FaultyTcpTransport> {
        if self.conn.is_none() {
            let serial = self.conn_serial;
            self.conn_serial += 1;
            if serial > 0 {
                self.reconnects += 1;
            }
            let plan = match &mut self.plans {
                Some(factory) => factory(serial),
                None => FaultPlan::new(0), // fresh plan: fully transparent
            };
            self.conn = Some(FaultyTcpTransport::connect(
                self.addr,
                &self.deadlines,
                plan,
            )?);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// One budgeted exchange, returning the raw response payload. The
    /// core loop every typed method builds on; `dup_ok` is the enroll
    /// idempotency rule (`DuplicateDevice` after at least one retry is
    /// reported as-is but guaranteed to be this device's own record —
    /// the caller maps it to success).
    ///
    /// # Errors
    ///
    /// The final attempt's failure once the budget is exhausted, or
    /// the first non-retryable server answer.
    pub fn exchange_raw(&mut self, request_payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let op = self.op_serial;
        self.op_serial += 1;
        let mut attempt: u32 = 0;
        loop {
            let outcome: Result<Vec<u8>, (RetryCause, Option<Duration>)> = match self
                .ensure_connected()
            {
                Ok(conn) => match conn.roundtrip_raw(request_payload) {
                    Ok(payload) => {
                        // Peek for an overload answer: [0xEE][code=8].
                        if payload.first() == Some(&0xEE)
                            && payload.get(1) == Some(&ErrorCode::Overloaded.code())
                        {
                            let hint = Response::decode(&payload)
                                .ok()
                                .and_then(|r| match r {
                                    Response::Error { detail, .. } => parse_retry_after_ms(&detail),
                                    _ => None,
                                })
                                .map(|ms| Duration::from_millis(u64::from(ms)));
                            Err((RetryCause::Overloaded, hint))
                        } else {
                            return Ok(payload);
                        }
                    }
                    Err(_) => {
                        // The exchange died mid-flight: the connection
                        // is in an unknown framing state, drop it.
                        self.conn = None;
                        Err((RetryCause::Transport, None))
                    }
                },
                Err(_) => Err((RetryCause::Connect, None)),
            };
            let (cause, hint) = outcome.expect_err("success returned above");
            if attempt >= self.policy.budget {
                return Err(ClientError::Transport(FrameError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "retry budget ({}) exhausted; last failure: {}",
                        self.policy.budget,
                        CAUSES[cause.slot()]
                    ),
                ))));
            }
            self.count_retry(cause);
            // An overloaded server said when to come back; cap its
            // hint by the policy's ceiling like any other delay.
            let delay = match hint {
                Some(server_hint) => server_hint.min(self.policy.max_delay),
                None => self.policy.delay(op, attempt),
            };
            std::thread::sleep(delay);
            attempt += 1;
        }
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = self.exchange_raw(&request.encode())?;
        let response = Response::decode(&payload)
            .map_err(|e| ClientError::Transport(FrameError::Decode(e)))?;
        match response {
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            response => Ok(response),
        }
    }

    /// Version handshake, retried per policy.
    ///
    /// # Errors
    ///
    /// See [`ResilientClient::exchange_raw`] and
    /// [`Client::hello`](crate::Client::hello).
    pub fn hello(&mut self, client_name: &str) -> Result<String, ClientError> {
        match self.exchange(&Request::Hello {
            protocol: ropuf_proto::PROTOCOL_VERSION,
            client: client_name.to_string(),
        })? {
            Response::HelloOk { server, .. } => Ok(server),
            _ => Err(ClientError::UnexpectedResponse("HelloOk")),
        }
    }

    /// Enrollment with the idempotent retry rule: a
    /// [`ErrorCode::DuplicateDevice`] answer after this *same call*
    /// already retried is success — the earlier attempt was applied
    /// and only its answer was lost.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::DuplicateDevice`] on the *first* attempt is a real
    /// conflict and surfaces; [`ErrorCode::ReadOnly`] always surfaces.
    pub fn enroll(
        &mut self,
        device_id: u64,
        scheme_tag: u8,
        helper: Vec<u8>,
        key_digest: [u8; 32],
    ) -> Result<(), ClientError> {
        let retries_before = self.retries_total();
        match self.exchange(&Request::Enroll {
            device_id,
            scheme_tag,
            helper,
            key_digest,
        }) {
            Ok(Response::EnrollOk { .. }) => Ok(()),
            Ok(_) => Err(ClientError::UnexpectedResponse("EnrollOk")),
            Err(e)
                if e.error_code() == Some(ErrorCode::DuplicateDevice)
                    && self.retries_total() > retries_before =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// One authentication attempt, retried freely.
    ///
    /// # Errors
    ///
    /// See [`Client::authenticate`](crate::Client::authenticate).
    pub fn authenticate(
        &mut self,
        item: ropuf_proto::AuthItem,
    ) -> Result<ropuf_proto::WireVerdict, ClientError> {
        match self.exchange(&Request::Authenticate(item))? {
            Response::Verdict(verdict) => Ok(verdict),
            _ => Err(ClientError::UnexpectedResponse("Verdict")),
        }
    }

    /// A device's flag state, retried freely.
    ///
    /// # Errors
    ///
    /// See [`Client::query_verdict`](crate::Client::query_verdict).
    pub fn query_verdict(
        &mut self,
        device_id: u64,
    ) -> Result<Option<(u64, ropuf_proto::WireFlagReason)>, ClientError> {
        match self.exchange(&Request::QueryVerdict { device_id })? {
            Response::FlagInfo { flagged } => Ok(flagged),
            _ => Err(ClientError::UnexpectedResponse("FlagInfo")),
        }
    }

    /// A live metrics scrape, retried freely (it may be shed under
    /// brown-out — the retry waits out the `retry_after_ms` hint).
    ///
    /// # Errors
    ///
    /// See [`Client::metrics`](crate::Client::metrics).
    pub fn metrics(&mut self) -> Result<ropuf_telemetry::Snapshot, ClientError> {
        match self.exchange(&Request::MetricsSnapshot)? {
            Response::MetricsBin { bytes } => ropuf_telemetry::Snapshot::decode(&bytes)
                .map_err(|_| ClientError::UnexpectedResponse("decodable ropuf-metrics/v1 blob")),
            _ => Err(ClientError::UnexpectedResponse("MetricsBin")),
        }
    }

    /// Drops the current connection (the next operation re-dials).
    /// Chaos tests use this to pin a plan change to an exact boundary.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }
}

const _: () = assert!(MAX_FRAME > 0); // keep the import honest

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_capped_jittered_and_deterministic() {
        let policy = RetryPolicy {
            budget: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            seed: 42,
        };
        for op in 0..32u64 {
            for attempt in 0..16u32 {
                let d = policy.delay(op, attempt);
                assert!(d <= policy.max_delay, "delay {d:?} over cap");
                let nominal = policy
                    .base_delay
                    .saturating_mul(1 << attempt.min(32))
                    .min(policy.max_delay);
                assert!(d >= nominal / 2, "delay {d:?} under half of {nominal:?}");
                // Deterministic: same inputs, same delay.
                assert_eq!(d, policy.delay(op, attempt));
            }
        }
        // Different seeds desynchronize at least one draw.
        let other = RetryPolicy { seed: 43, ..policy };
        assert!((0..32).any(|op| other.delay(op, 3) != policy.delay(op, 3)));
    }

    #[test]
    fn refused_connection_exhausts_the_budget_and_fails() {
        // Nothing listens on this address: every dial fails fast.
        let policy = RetryPolicy {
            budget: 2,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(200),
            seed: 7,
        };
        let mut client = ResilientClient::new("127.0.0.1:1", policy, Deadlines::default()).unwrap();
        let err = client.hello("nobody-home").unwrap_err();
        assert!(
            err.to_string().contains("retry budget (2) exhausted"),
            "{err}"
        );
        assert_eq!(client.retries_total(), 2);
    }
}
