//! The network serving surface of the ropuf verifier.
//!
//! PR 2 built the defender half — sharded registry, HMAC
//! authentication, online attack detection — but only as an in-process
//! library. This crate puts it on the wire: a concurrent TCP server
//! speaking [`ropuf-wire/v1`](ropuf_proto), an in-process loopback
//! transport with byte-identical semantics for deterministic tests,
//! a typed client, and the campaign-driven traffic model the `loadgen`
//! harness replays against it. Every future scaling PR (async I/O,
//! caching, replication) builds on this layer.
//!
//! # Pieces
//!
//! * [`handler`] — [`RequestHandler`]: protocol semantics against the
//!   shared [`Verifier`](ropuf_verifier::Verifier); quarantined
//!   devices are rejected at the wire with
//!   [`ErrorCode::DeviceFlagged`](ropuf_proto::ErrorCode).
//! * [`tcp`] — [`TcpServer`]: `std::net::TcpListener` accept loop
//!   dispatching connections to a fixed worker-thread pool, plus the
//!   client-side [`TcpTransport`].
//! * [`evented`] (Linux) — [`EventedServer`]: non-blocking epoll
//!   readiness loops driving per-connection state machines — the
//!   many-thousands-of-connections backend, with pipelining, bounded
//!   buffers, slow-client eviction, and graceful shutdown. Same
//!   handler, same wire semantics, proven equivalent by the
//!   `equivalence` test suite.
//! * [`sys`] (Linux) — the in-tree `epoll`, `SO_REUSEPORT`, and
//!   `writev` syscall wrappers (no `libc` crate; the workspace stays
//!   dependency-free).
//! * [`telemetry`] — [`ServerTelemetry`]: backend-labeled request and
//!   connection metrics, per-message-type phase latency histograms,
//!   and the slow-request trace ring; scrapeable mid-run over the wire
//!   via `Request::MetricsSnapshot` / `Request::TraceDump`.
//! * [`transport`] — the [`Transport`] abstraction, the
//!   [`LoopbackTransport`] (same handler, full codec, no sockets) and
//!   the typed [`Client`].
//! * [`traffic`] — [`TrafficPlan`]: deterministic mixed benign/LISA
//!   workloads built from campaign fleet seeds, replayable over any
//!   transport.
//!
//! # Example: loopback serving
//!
//! ```
//! use std::sync::Arc;
//! use ropuf_server::{Client, LoopbackTransport, VerifierHandler};
//! use ropuf_verifier::{DetectorConfig, Verifier};
//!
//! let verifier = Arc::new(Verifier::new(4, DetectorConfig::default()));
//! let handler = Arc::new(VerifierHandler::new(verifier));
//! let mut client = Client::new(LoopbackTransport::new(handler));
//! let server = client.hello("example").unwrap();
//! assert!(server.starts_with("ropuf-server/"));
//! ```
//!
//! For the socket path, see [`TcpServer`] and the `loadgen` binary in
//! `crates/bench`.

// `deny`, not `forbid`: the syscall wrappers in `sys::epoll` and
// `sys::net` are the sanctioned `#[allow(unsafe_code)]` islands (FFI
// boundary only); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
#[cfg(target_os = "linux")]
pub mod evented;
pub mod handler;
pub mod resilient;
pub mod sys;
pub mod tcp;
pub mod telemetry;
pub mod traffic;
pub mod transport;

pub use admission::{evented_pressure, Admission, OverloadPolicy, RequestClass};
#[cfg(target_os = "linux")]
pub use evented::{EventedConfig, EventedServer};
pub use handler::{wire_reason, wire_verdict, RequestHandler, VerifierHandler};
pub use resilient::{
    Deadlines, FaultyTcpTransport, PlanFactory, ResilientClient, RetryCause, RetryPolicy,
};
pub use tcp::{TcpServer, TcpTransport};
pub use telemetry::ServerTelemetry;
pub use traffic::{DeviceTraffic, Role, TrafficPlan, TrafficSpec};
pub use transport::{Client, ClientError, LoopbackTransport, Transport};
