//! The TCP serving surface.
//!
//! ```text
//!            accept loop (1 thread)
//!   TcpListener ──────────────┐
//!        │   connections      │ mpsc channel (bounded by backlog)
//!        ▼                    ▼
//!   ┌─────────────────────────────────────┐
//!   │ fixed worker pool (N threads)       │   each worker:
//!   │  worker 0   worker 1  …  worker N-1 │   FrameReader → Request
//!   └─────────────────────────────────────┘   → handler.handle()
//!        │ per-shard locks inside the Verifier │ → FrameWriter
//!        ▼
//!   shared RequestHandler (Arc)
//! ```
//!
//! One worker owns one connection at a time and serves its requests
//! back-to-back (the protocol is strictly request/response per
//! connection; concurrency comes from many connections). Malformed
//! frames are answered with a typed
//! [`ErrorCode::MalformedRequest`](ropuf_proto::ErrorCode) error
//! before the connection is dropped — a hostile peer learns the
//! request was bad, not a stack trace.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ropuf_proto::{
    ErrorCode, FrameError, FramePoll, FrameReader, FrameWriter, RequestRef, Response,
};
use ropuf_telemetry::Sampler;

use crate::admission::{Admission, OverloadPolicy, RequestClass};
use crate::handler::RequestHandler;
use crate::telemetry::{elapsed_ns, request_device_hash, LaneStats, ServerTelemetry};

/// A running TCP server: accept thread + fixed worker pool.
///
/// Dropping the handle without calling [`TcpServer::shutdown`] leaks
/// the serving threads until process exit; tests and binaries should
/// shut down explicitly.
#[derive(Debug)]
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Clones of the currently live connections keyed by a serial id,
    /// so shutdown can force-close streams a worker is still blocked
    /// reading. Workers remove their entry (dropping the duplicate
    /// descriptor) as soon as their connection finishes.
    connections: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    telemetry: Arc<ServerTelemetry>,
    admission: Arc<Admission>,
    /// The time-series sampler thread; `None` when the sample interval
    /// is zero. Stopped (joined) when the server handle drops.
    sampler: Option<Sampler>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts one
    /// accept thread plus `workers` serving threads (`0` is promoted
    /// to 1), with the same telemetry defaults as
    /// [`EventedConfig::default`](crate::evented::EventedConfig): 1 ms
    /// slow-trace threshold, 256-record trace ring, 1 s sampling into
    /// a 512-point time-series ring.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        workers: usize,
    ) -> io::Result<Self> {
        Self::spawn_traced(
            addr,
            handler,
            workers,
            Duration::from_millis(1),
            256,
            Duration::from_secs(1),
            512,
        )
    }

    /// [`TcpServer::spawn`] with every telemetry knob exposed: the
    /// slow-trace threshold (`Duration::ZERO` traces everything) and
    /// ring capacity, plus the time-series sampling interval
    /// (`Duration::ZERO` disables the sampler) and point capacity.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn_traced(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        workers: usize,
        slow_trace_threshold: Duration,
        trace_capacity: usize,
        sample_interval: Duration,
        series_capacity: usize,
    ) -> io::Result<Self> {
        Self::spawn_configured(
            addr,
            handler,
            workers,
            slow_trace_threshold,
            trace_capacity,
            sample_interval,
            series_capacity,
            OverloadPolicy::disabled(),
        )
    }

    /// [`TcpServer::spawn`] with an admission budget: this backend
    /// meters pressure as connections accepted but not yet finished
    /// (the worker pool's invisible queue), so the policy's thresholds
    /// are connection counts. Shed requests are answered inline with
    /// [`ErrorCode::Overloaded`](ropuf_proto::ErrorCode) — no decode,
    /// no verifier work — while admitted traffic keeps serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn_overload(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        workers: usize,
        policy: OverloadPolicy,
    ) -> io::Result<Self> {
        Self::spawn_configured(
            addr,
            handler,
            workers,
            Duration::from_millis(1),
            256,
            Duration::from_secs(1),
            512,
            policy,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_configured(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        workers: usize,
        slow_trace_threshold: Duration,
        trace_capacity: usize,
        sample_interval: Duration,
        series_capacity: usize,
        policy: OverloadPolicy,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let telemetry = ServerTelemetry::new(
            "blocking",
            slow_trace_threshold,
            trace_capacity,
            series_capacity,
            sample_interval,
        );
        let sampler = telemetry.start_sampler();
        let admission = Arc::new(Admission::new(policy, &telemetry));
        let (tx, rx) = mpsc::channel::<(u64, TcpStream, Instant)>();
        let rx = Arc::new(Mutex::new(rx));

        let worker_handles = (0..workers.max(1))
            .map(|worker_id| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let connections = Arc::clone(&connections);
                let telemetry = Arc::clone(&telemetry);
                let admission = Arc::clone(&admission);
                std::thread::spawn(move || {
                    let lane = telemetry.lane(worker_id as u32);
                    // Wall anchor: everything since the last connection
                    // finished (idle included) is this worker's wall
                    // time; busy time accrues per frame inside
                    // `serve_connection`. busy/wall is utilization.
                    let mut last_tick = Instant::now();
                    loop {
                        // Hold the receiver lock only while claiming.
                        let next = rx.lock().expect("worker queue poisoned").recv();
                        match next {
                            Ok((conn_id, stream, queued_at)) => {
                                serve_connection(
                                    stream,
                                    handler.as_ref(),
                                    &telemetry,
                                    &admission,
                                    &lane,
                                    worker_id as u32,
                                    queued_at,
                                );
                                admission.end();
                                telemetry.connection_closed(false, false);
                                // Release the shutdown registry's duplicate
                                // descriptor now, not at server shutdown.
                                connections
                                    .lock()
                                    .expect("connection list poisoned")
                                    .retain(|(id, _)| *id != conn_id);
                                let now = Instant::now();
                                lane.wall_ns.add(elapsed_ns(last_tick, now));
                                last_tick = now;
                            }
                            Err(_) => break, // accept loop gone: drain done
                        }
                    }
                })
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&connections);
        let accept_telemetry = Arc::clone(&telemetry);
        let accept_admission = Arc::clone(&admission);
        let accept_thread = std::thread::spawn(move || {
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let conn_id = next_id;
                        next_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            accept_conns
                                .lock()
                                .expect("connection list poisoned")
                                .push((conn_id, clone));
                        }
                        accept_telemetry.connection_accepted();
                        accept_admission.begin();
                        if tx.send((conn_id, stream, Instant::now())).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // `tx` drops here; workers drain queued connections and exit.
        });

        Ok(Self {
            local_addr,
            stop,
            connections,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
            telemetry,
            admission,
            sampler,
        })
    }

    /// This backend's admission gate (policy + shed tallies).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted since the server started.
    pub fn accepted_total(&self) -> u64 {
        self.telemetry.accepted_total()
    }

    /// Requests served (one per completed frame) since the server
    /// started.
    pub fn requests_served(&self) -> u64 {
        self.telemetry.requests_served()
    }

    /// Connections accepted but not yet finished serving.
    pub fn open_connections(&self) -> usize {
        usize::try_from(self.telemetry.open_connections()).unwrap_or(usize::MAX)
    }

    /// This server's telemetry: the same registry and trace ring a
    /// wire scrape reads, for in-process inspection.
    pub fn telemetry(&self) -> &Arc<ServerTelemetry> {
        &self.telemetry
    }

    /// Stops accepting, force-closes every open connection (clients
    /// mid-exchange see EOF/reset), and joins every serving thread.
    pub fn shutdown(mut self) {
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Unblock workers parked in a read on a live connection.
        for (_, conn) in self
            .connections
            .lock()
            .expect("connection list poisoned")
            .drain(..)
        {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serves one connection to completion: request frames in, response
/// frames out, until clean EOF, transport failure, or a malformed
/// frame (answered, then dropped).
///
/// The worker loop is allocation-free at steady state: the frame
/// reader reuses its payload buffer, the request is decoded as a
/// borrowing [`ropuf_proto::RequestRef`] straight out of that buffer,
/// and the frame writer encodes the response into its own reused
/// buffer.
///
/// Frames are pulled with the incremental `poll_frame` machinery
/// rather than `read_request_ref`, so the phase clocks start when a
/// complete frame is buffered — time spent blocked on the socket
/// waiting for the peer is not billed to any phase.
///
/// Queue-wait attribution on this backend: the first frame's
/// ready-wait phase is the time the accepted connection sat in the
/// dispatch channel before a worker claimed it (the pool's invisible
/// queue); later frames on the same dedicated worker have no queue and
/// report zero. Responses are written synchronously, so the flush-wait
/// phase is always zero here — out-buffer residency is an evented-only
/// phenomenon.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn RequestHandler,
    telemetry: &ServerTelemetry,
    admission: &Admission,
    lane: &LaneStats,
    worker: u32,
    queued_at: Instant,
) {
    stream.set_nodelay(true).ok(); // response latency over batching
    let (Ok(write_half), Ok(closer)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    let claim_wait_ns = elapsed_ns(queued_at, Instant::now());
    let mut first_frame_anchor = Some(queued_at);
    let mut reader = FrameReader::new(stream);
    let mut writer = FrameWriter::new(write_half);
    loop {
        // On a blocking stream one poll drives the accumulator to a
        // complete frame or clean EOF.
        reader.finish_frame();
        match reader.poll_frame() {
            Ok(FramePoll::Frame) => {
                let t0 = Instant::now();
                let ready_ns = match first_frame_anchor.take() {
                    Some(anchor) => {
                        telemetry.first_frame(elapsed_ns(anchor, t0));
                        claim_wait_ns
                    }
                    None => 0,
                };
                // Counted before decode, same as the evented backend:
                // malformed frames and the metrics scrape itself are
                // part of the tally.
                telemetry.request_started();
                let msg_type = reader.frame_payload().first().copied().unwrap_or(0);
                // Admission first, off the type byte alone: a shed
                // request must cost a small error frame, not a decode
                // and a verifier call. The connection stays up — the
                // client is told when to retry, not reset.
                if let Some(shed) = admission.check_inflight(RequestClass::of(msg_type)) {
                    let t1 = Instant::now();
                    let ok = writer.write_response(&shed).is_ok();
                    let t3 = Instant::now();
                    let record = telemetry.observe_queued(
                        msg_type,
                        0,
                        ready_ns,
                        elapsed_ns(t0, t1),
                        0,
                        elapsed_ns(t1, t3),
                        worker,
                    );
                    telemetry.observe_drained(record, 0);
                    lane.busy_ns.add(elapsed_ns(t0, t3));
                    if !ok {
                        break;
                    }
                    continue;
                }
                let decoded = RequestRef::decode(reader.frame_payload());
                let t1 = Instant::now();
                match decoded {
                    Ok(request) => {
                        let device_hash = request_device_hash(&request);
                        let response = match request {
                            // The handler answers with the verifier's
                            // metrics only; fold this backend's own
                            // namespace into the blob.
                            RequestRef::MetricsSnapshot => {
                                telemetry.merged_metrics_response(handler.handle_ref(request))
                            }
                            // Traces and the time series live here,
                            // not in the handler.
                            RequestRef::TraceDump => telemetry.trace_response(),
                            RequestRef::TimeSeriesDump => telemetry.timeseries_response(),
                            request => handler.handle_ref(request),
                        };
                        let t2 = Instant::now();
                        let flushed = match writer.write_response(&response) {
                            Ok(()) => true,
                            // The answer outgrew the frame cap (giant
                            // registry snapshot): tell the client why
                            // and keep serving — nothing was
                            // half-written.
                            Err(FrameError::Oversize(n)) => writer
                                .write_response(&Response::Error {
                                    code: ErrorCode::ResponseTooLarge,
                                    detail: format!(
                                        "response needs {n} bytes, frame cap is {}",
                                        ropuf_proto::MAX_FRAME
                                    ),
                                })
                                .is_ok(),
                            Err(_) => false,
                        };
                        let t3 = Instant::now();
                        let record = telemetry.observe_queued(
                            msg_type,
                            device_hash,
                            ready_ns,
                            elapsed_ns(t0, t1),
                            elapsed_ns(t1, t2),
                            elapsed_ns(t2, t3),
                            worker,
                        );
                        // The write above was synchronous: the bytes
                        // are already with the kernel, flush-wait is
                        // genuinely zero.
                        telemetry.observe_drained(record, 0);
                        lane.busy_ns.add(elapsed_ns(t0, t3));
                        if !flushed {
                            break;
                        }
                    }
                    Err(e) => {
                        // Typed answer, then the connection ends —
                        // identical contract (and detail string) to
                        // the pre-telemetry `read_request_ref` path.
                        let t2 = Instant::now();
                        let _ = writer.write_response(&Response::Error {
                            code: ErrorCode::MalformedRequest,
                            detail: FrameError::Decode(e).to_string(),
                        });
                        let t3 = Instant::now();
                        let record = telemetry.observe_queued(
                            msg_type,
                            0,
                            ready_ns,
                            elapsed_ns(t0, t1),
                            elapsed_ns(t1, t2),
                            elapsed_ns(t2, t3),
                            worker,
                        );
                        telemetry.observe_drained(record, 0);
                        lane.busy_ns.add(elapsed_ns(t0, t3));
                        break;
                    }
                }
            }
            Ok(FramePoll::Eof) => break,
            // A blocking socket only reports Pending under a read
            // timeout; nobody sets one here, so treat it as dead.
            Ok(FramePoll::Pending) => break,
            Err(e) if e.is_peer_fault() => {
                let _ = writer.write_response(&Response::Error {
                    code: ErrorCode::MalformedRequest,
                    detail: e.to_string(),
                });
                break;
            }
            Err(_) => break,
        }
    }
    // Actively close: the server's shutdown registry may still hold a
    // clone of this socket, and the peer deserves a real EOF now.
    let _ = closer.shutdown(std::net::Shutdown::Both);
}

/// Client-side transport over a connected [`TcpStream`].
#[derive(Debug)]
pub struct TcpTransport {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
}

impl TcpTransport {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects under [`Deadlines`](crate::resilient::Deadlines): the
    /// dial, every read, and every write each get a finite budget, so
    /// a wedged server surfaces as `io::ErrorKind::TimedOut`/
    /// `WouldBlock` instead of hanging the client forever.
    ///
    /// # Errors
    ///
    /// Propagates resolution, connection, configuration, and clone
    /// failures.
    pub fn connect_with_deadlines(
        addr: impl ToSocketAddrs,
        deadlines: &crate::resilient::Deadlines,
    ) -> io::Result<Self> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let stream = match deadlines.connect {
            Some(timeout) => TcpStream::connect_timeout(&resolved, timeout)?,
            None => TcpStream::connect(resolved)?,
        };
        stream.set_read_timeout(deadlines.read)?;
        stream.set_write_timeout(deadlines.write)?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true).ok(); // latency over batching
        let write_half = stream.try_clone()?;
        Ok(Self {
            reader: FrameReader::new(stream),
            writer: FrameWriter::new(write_half),
        })
    }
}

impl crate::transport::Transport for TcpTransport {
    fn roundtrip_frame(
        &mut self,
        request_payload: &[u8],
    ) -> Result<ropuf_proto::Response, FrameError> {
        self.writer.write_frame(request_payload)?;
        match self.reader.read_response()? {
            Some(response) => Ok(response),
            None => Err(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ))),
        }
    }
}
