//! The campaign-driven traffic model the load generator replays.
//!
//! A [`TrafficPlan`] is a fully materialized, deterministic request
//! workload: a mixed fleet (the first quarter LISA devices that get
//! attacked, the rest benign across the other three constructions,
//! mirroring the `campaign_verifier` scenario) where every device
//! carries its enrollment record plus the exact [`AuthItem`] sequence
//! it will send. Benign devices authenticate once per round across a
//! temperature sweep, spaced inside the detector's rate window.
//! Attacked devices replay a **real LISA attack trajectory**: the
//! attack from `ropuf_attacks` runs against the simulated device with
//! a recording monitor attached, and every oracle query becomes the
//! authentication attempt a verifier gateway would have seen — the
//! manipulated helper bytes presented, and a valid tag exactly when
//! the device's response matched its enrolled behavior.
//!
//! Everything derives from `(master_seed, device_id)` through the
//! campaign's seed derivation, so two builds of the same spec are
//! identical — the property the loopback replay test asserts
//! bit-for-bit through the wire codec.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_attacks::lisa::LisaAttack;
use ropuf_attacks::{Oracle, TrafficMonitor};
use ropuf_campaign::FleetSpec;
use ropuf_constructions::cooperative::{CooperativeConfig, CooperativeScheme, COOP_TAG};
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedScheme, GROUP_TAG};
use ropuf_constructions::pairing::distilled::{
    DistilledConfig, DistilledPairingScheme, DISTILLED_TAG,
};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::{DeviceResponse, HelperDataScheme};
use ropuf_proto::{AuthItem, WireAuthResponse};
use ropuf_sim::{ArrayDims, Environment};
use ropuf_verifier::{auth_key, client_tag, BatchEnrollment, DetectorConfig};

/// What a fleet member does during the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Authenticates honestly, once per round.
    Benign,
    /// Replays a captured LISA key-recovery trajectory.
    LisaAttacker,
}

/// One device's share of the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTraffic {
    /// Fleet identity (also the wire device id).
    pub device_id: u64,
    /// Scheme display name ("lisa", "cooperative", …).
    pub scheme: &'static str,
    /// Benign or attacker.
    pub role: Role,
    /// What the verifier stores for this device.
    pub enrollment: BatchEnrollment,
    /// The exact authentication attempts, in send order (timestamps
    /// are per-device logical clocks, non-decreasing).
    pub requests: Vec<AuthItem>,
}

/// Workload shape: fleet size, mix, and replay length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Fleet size; the first `max(devices/4, 1)` members are LISA
    /// attack targets, the rest round-robin the other constructions.
    pub devices: usize,
    /// Root of all per-device seed derivation (campaign convention).
    pub master_seed: u64,
    /// Benign authentication rounds (one request per device each).
    pub rounds: usize,
    /// Scheme configuration of the attacked slice.
    pub lisa: LisaConfig,
    /// Detector thresholds the server will run — benign pacing keeps
    /// inside this rate budget.
    pub detector: DetectorConfig,
}

impl TrafficSpec {
    /// Number of attacked devices in this spec.
    pub fn attacked(&self) -> usize {
        if self.devices == 0 {
            0
        } else {
            (self.devices / 4).max(1)
        }
    }
}

/// Per-scheme fleet slot, mirroring the `campaign_verifier` mix.
fn scheme_for(slot: usize) -> (&'static str, u8, ArrayDims, Box<dyn HelperDataScheme>) {
    match slot {
        0 => (
            "lisa",
            LISA_TAG,
            ArrayDims::new(16, 8),
            Box::new(LisaScheme::new(LisaConfig::default())),
        ),
        1 => (
            "cooperative",
            COOP_TAG,
            ArrayDims::new(16, 8),
            Box::new(CooperativeScheme::new(CooperativeConfig::default())),
        ),
        2 => (
            "group-based",
            GROUP_TAG,
            ArrayDims::new(10, 4),
            Box::new(GroupBasedScheme::new(GroupBasedConfig::default())),
        ),
        _ => (
            "distiller-pairing",
            DISTILLED_TAG,
            ArrayDims::new(10, 4),
            Box::new(DistilledPairingScheme::new(DistilledConfig::default())),
        ),
    }
}

/// Records every oracle query a running attack issues: the helper
/// bytes presented and whether the response matched the device's
/// enrolled behavior — the two facts a verifier gateway sees.
#[derive(Debug)]
struct RecordingMonitor {
    expected: DeviceResponse,
    events: Rc<RefCell<Vec<(Vec<u8>, bool)>>>,
}

impl TrafficMonitor for RecordingMonitor {
    fn observe(&mut self, helper: &[u8], response: &DeviceResponse) -> bool {
        self.events
            .borrow_mut()
            .push((helper.to_vec(), response == &self.expected));
        false // recording only; the server-side detector judges later
    }
}

/// The materialized workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficPlan {
    /// Per-device traffic, device ids ascending.
    pub devices: Vec<DeviceTraffic>,
}

impl TrafficPlan {
    /// Builds the full plan for `spec`. Deterministic: equal specs
    /// yield equal plans (the loadgen replay contract).
    ///
    /// Devices whose sampled array cannot support their scheme are
    /// skipped, exactly as fleet provisioning does elsewhere.
    pub fn build(spec: &TrafficSpec) -> Self {
        let attacked = spec.attacked();
        let temps: Vec<Environment> = Environment::sweep(18.0, 32.0, spec.rounds.max(1)).collect();
        // Benign pacing: well inside the rate budget (same spacing rule
        // as campaign_verifier).
        let gap = 2 * spec.detector.rate_window / u64::from(spec.detector.rate_budget).max(1);
        let mut devices = Vec::with_capacity(spec.devices);
        for id in 0..spec.devices {
            let slot = if id < attacked {
                0
            } else {
                1 + (id - attacked) % 3
            };
            let (scheme_name, tag, dims, scheme) = scheme_for(slot);
            let fleet = FleetSpec {
                dims,
                devices: spec.devices,
                master_seed: spec.master_seed,
            };
            let Ok(mut device) = fleet.provision_device(id, scheme.as_ref()) else {
                continue;
            };
            let enrollment = BatchEnrollment {
                device_id: id as u64,
                scheme_tag: tag,
                helper: device.helper().to_vec(),
                key_digest: auth_key(device.enrolled_key()),
            };
            let (role, requests) = if id < attacked {
                (
                    Role::LisaAttacker,
                    attack_requests(&mut device, &enrollment, &fleet, id, spec.lisa),
                )
            } else {
                let mut requests = Vec::with_capacity(temps.len());
                for (round, env) in temps.iter().enumerate() {
                    let nonce = format!("auth-{id}-{round}").into_bytes();
                    let response =
                        match ropuf_verifier::device_auth_response(&mut device, &nonce, *env) {
                            DeviceResponse::Tag(t) => WireAuthResponse::Tag(t),
                            DeviceResponse::Failure => WireAuthResponse::Failure,
                        };
                    requests.push(AuthItem {
                        device_id: id as u64,
                        now: round as u64 * gap,
                        nonce,
                        response,
                        presented_helper: Some(enrollment.helper.clone()),
                    });
                }
                (Role::Benign, requests)
            };
            devices.push(DeviceTraffic {
                device_id: id as u64,
                scheme: scheme_name,
                role,
                enrollment,
                requests,
            });
        }
        Self { devices }
    }

    /// The fleet's enrollment batch (input to `Verifier::enroll_batch`).
    pub fn enrollments(&self) -> Vec<BatchEnrollment> {
        self.devices.iter().map(|d| d.enrollment.clone()).collect()
    }

    /// Total authentication requests across the fleet.
    pub fn total_requests(&self) -> usize {
        self.devices.iter().map(|d| d.requests.len()).sum()
    }

    /// Devices with [`Role::LisaAttacker`].
    pub fn attackers(&self) -> impl Iterator<Item = &DeviceTraffic> {
        self.devices.iter().filter(|d| d.role == Role::LisaAttacker)
    }

    /// Devices with [`Role::Benign`].
    pub fn benign(&self) -> impl Iterator<Item = &DeviceTraffic> {
        self.devices.iter().filter(|d| d.role == Role::Benign)
    }
}

/// Runs the real LISA attack against `device` with a recording monitor
/// and converts every oracle query into the authentication attempt the
/// gateway saw: manipulated helper presented, valid tag iff the
/// response matched enrolled behavior, timestamps back-to-back (the
/// adversarial extreme of the rate model, as in the campaign monitor).
fn attack_requests(
    device: &mut ropuf_constructions::Device,
    enrollment: &BatchEnrollment,
    fleet: &FleetSpec,
    id: usize,
    lisa: LisaConfig,
) -> Vec<AuthItem> {
    let truth = device.enrolled_key().clone();
    let events = Rc::new(RefCell::new(Vec::new()));
    {
        let mut oracle = Oracle::new(device);
        let expected = oracle.expected_response(&truth);
        oracle.attach_monitor(Box::new(RecordingMonitor {
            expected,
            events: Rc::clone(&events),
        }));
        let mut rng = StdRng::seed_from_u64(fleet.seeds(id).attack);
        // The trajectory is the product; whether recovery succeeded is
        // the campaign engine's business, not the load generator's.
        let _ = LisaAttack::new(lisa).run(&mut oracle, &mut rng);
    }
    let events = events.borrow();
    events
        .iter()
        .enumerate()
        .map(|(i, (helper, auth_ok))| {
            let nonce = format!("atk-{id}-{i}").into_bytes();
            let response = if *auth_ok {
                WireAuthResponse::Tag(client_tag(&enrollment.key_digest, &nonce))
            } else {
                WireAuthResponse::Failure
            };
            AuthItem {
                device_id: id as u64,
                now: 1 + i as u64,
                nonce,
                response,
                presented_helper: Some(helper.clone()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> TrafficSpec {
        TrafficSpec {
            devices: 6,
            master_seed: 5,
            rounds: 3,
            lisa: LisaConfig::default(),
            detector: DetectorConfig::default(),
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = TrafficPlan::build(&small_spec());
        let b = TrafficPlan::build(&small_spec());
        assert_eq!(a, b);
        assert!(a.total_requests() > 0);
    }

    #[test]
    fn mix_matches_spec() {
        let plan = TrafficPlan::build(&small_spec());
        assert_eq!(plan.attackers().count(), 1, "6 devices -> 1 attacked");
        assert_eq!(plan.benign().count(), plan.devices.len() - 1);
        for d in plan.benign() {
            assert_eq!(d.requests.len(), 3, "one request per round");
            assert!(
                d.requests
                    .iter()
                    .all(|r| r.presented_helper.as_deref() == Some(&d.enrollment.helper[..])),
                "benign traffic presents the enrolled helper"
            );
            let mut last = 0;
            for r in &d.requests {
                assert!(r.now >= last, "per-device clock is non-decreasing");
                last = r.now;
            }
        }
    }

    #[test]
    fn attack_traffic_contains_manipulated_helpers() {
        let plan = TrafficPlan::build(&small_spec());
        let attacker = plan.attackers().next().unwrap();
        assert!(
            attacker.requests.len() > 10,
            "a real trajectory has many queries, got {}",
            attacker.requests.len()
        );
        assert!(
            attacker
                .requests
                .iter()
                .any(|r| r.presented_helper.as_deref() != Some(&attacker.enrollment.helper[..])),
            "the trajectory must present manipulated helper bytes"
        );
    }
}
