//! Server-side telemetry: backend-labeled request/connection counters,
//! per-message-type phase latency histograms, per-lane saturation
//! counters, the slow-request trace ring and the retained time-series
//! ring — everything a wire scrape merges on top of the verifier's own
//! metrics.
//!
//! Both backends (`TcpServer`, `EventedServer`) own one
//! [`ServerTelemetry`] and record into it once per served frame with
//! five phase durations covering the whole lifecycle the client can
//! observe: ready-wait (readiness to decode start), decode, handle,
//! flush, and flush-wait (out-buffer residency until the socket
//! drained). All hot-path writes are `Relaxed` striped-counter adds or
//! per-stripe histogram inserts; nothing here takes a process-wide
//! lock on the request path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ropuf_proto::{ErrorCode, RequestRef, Response};
use ropuf_telemetry::{
    Counter, Gauge, Registry, Sampler, SeriesRing, Snapshot, TimeSeriesSnapshot, TimerHistogram,
    TraceRecord, TraceRing, TraceSnapshot, SERIES_PHASES,
};

/// Message-type label for each request byte the wire can carry, plus a
/// catch-all bucket so a hostile byte can't mint unbounded label
/// values.
pub(crate) fn msg_label(msg_type: u8) -> &'static str {
    match msg_type {
        0x01 => "hello",
        0x02 => "enroll",
        0x03 => "auth",
        0x04 => "batch-auth",
        0x05 => "query-verdict",
        0x06 => "snapshot",
        0x07 => "snapshot-v2",
        0x08 => "metrics",
        0x09 => "trace",
        0x0A => "timeseries",
        0x0B => "loop-info",
        _ => "other",
    }
}

/// The wire bytes `msg_label` distinguishes, in label-table order.
/// `0x00` stands in for the "other" bucket.
const MSG_TYPES: [u8; 12] = [
    0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x00,
];

/// Request-lifecycle phases, in lifecycle order (shared with the
/// time-series sampler's delta schema).
const PHASES: [&str; 5] = SERIES_PHASES;

fn msg_slot(msg_type: u8) -> usize {
    match msg_type {
        0x01..=0x0B => (msg_type - 1) as usize,
        _ => MSG_TYPES.len() - 1,
    }
}

/// Label values for per-lane (event loop / pool worker) saturation
/// metrics. Lanes at or beyond the table's end share one overflow
/// bucket, so a huge auto-bumped worker pool cannot mint thousands of
/// label sets.
const LANE_LABELS: [&str; 33] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16",
    "17", "18", "19", "20", "21", "22", "23", "24", "25", "26", "27", "28", "29", "30", "31",
    "32+",
];

fn lane_label(lane: u32) -> &'static str {
    LANE_LABELS
        .get(lane as usize)
        .copied()
        .unwrap_or(LANE_LABELS[LANE_LABELS.len() - 1])
}

/// Nanoseconds from `earlier` to `later`, saturating at `u64::MAX`
/// (and at zero for out-of-order instants).
pub(crate) fn elapsed_ns(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

/// Pseudonymous device identity for trace records: the splitmix64 mix
/// of the claimed device id, or 0 for requests that carry none. Trace
/// dumps travel over the wire, so raw ids stay out of them.
pub(crate) fn request_device_hash(request: &RequestRef<'_>) -> u64 {
    let id = match request {
        RequestRef::Enroll { device_id, .. } => Some(*device_id),
        RequestRef::Authenticate(item) => Some(item.device_id),
        RequestRef::QueryVerdict { device_id } => Some(*device_id),
        RequestRef::BatchAuthenticate { items } => items.first().map(|i| i.device_id),
        _ => None,
    };
    id.map_or(0, ropuf_numeric::splitmix64)
}

/// Per-lane saturation handles: one event loop (evented backend) or
/// one pool worker (blocking backend). Utilization is
/// `busy_ns / wall_ns` over any scrape interval.
#[derive(Debug, Clone)]
pub(crate) struct LaneStats {
    /// Nanoseconds the lane spent doing work (not parked waiting).
    pub(crate) busy_ns: Counter,
    /// Wall nanoseconds the lane has existed for (accumulated in the
    /// same cadence as `busy_ns`, so the ratio is meaningful over any
    /// window).
    pub(crate) wall_ns: Counter,
    /// Largest pending out-buffer this lane has ever observed, bytes.
    pub(crate) out_highwater: Gauge,
}

/// One backend's worth of server metrics plus the slow-request ring
/// and the retained time-series ring.
///
/// Cheap to clone-by-`Arc`; every handle inside is already shareable.
#[derive(Debug)]
pub struct ServerTelemetry {
    registry: Registry,
    backend: String,
    accepted: Counter,
    open: Gauge,
    requests: Counter,
    evicted_idle: Counter,
    evicted_slow: Counter,
    trace_dropped: Gauge,
    /// `[msg_slot][phase]`, pre-resolved so the hot path never touches
    /// the registry lock. Phases in lifecycle order: ready-wait,
    /// decode, handle, flush, flush-wait.
    phase: Vec<[TimerHistogram; 5]>,
    /// Whole-request latency (ready-wait through flush-wait), the
    /// distribution the time-series heatmap collapses.
    total: TimerHistogram,
    /// Accept-to-first-frame per connection.
    first_frame: TimerHistogram,
    /// Ready-list batch sizes per epoll wakeup (evented backend only).
    ready_batch: TimerHistogram,
    ring: TraceRing,
    series: SeriesRing,
    threshold_ns: u64,
}

impl ServerTelemetry {
    /// Builds a registry for one backend. `backend` labels every
    /// metric (`blocking` or `evented`); requests slower than
    /// `slow_threshold` land in a ring of `trace_capacity` records;
    /// the time-series sampler (when started) retains
    /// `series_capacity` points cut every `sample_interval`.
    pub fn new(
        backend: &str,
        slow_threshold: Duration,
        trace_capacity: usize,
        series_capacity: usize,
        sample_interval: Duration,
    ) -> Arc<Self> {
        let registry = Registry::new();
        let b = [("backend", backend)];
        let accepted = registry.counter("server.connections.accepted", &b);
        let open = registry.gauge("server.connections.open", &b);
        let requests = registry.counter("server.requests", &b);
        let evicted_idle =
            registry.counter("server.evicted", &[("backend", backend), ("kind", "idle")]);
        let evicted_slow =
            registry.counter("server.evicted", &[("backend", backend), ("kind", "slow")]);
        let trace_dropped = registry.gauge("server.trace.dropped", &b);
        let phase = MSG_TYPES
            .iter()
            .map(|&ty| {
                let msg = msg_label(ty);
                PHASES.map(|phase| {
                    registry.histogram(
                        "server.request.phase_ns",
                        &[("backend", backend), ("msg", msg), ("phase", phase)],
                    )
                })
            })
            .collect();
        let total = registry.histogram("server.request.total_ns", &b);
        let first_frame = registry.histogram("server.conn.first_frame_ns", &b);
        let ready_batch = registry.histogram("server.loop.ready_batch", &b);
        let threshold_ns = u64::try_from(slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        Arc::new(Self {
            registry,
            backend: backend.to_owned(),
            accepted,
            open,
            requests,
            evicted_idle,
            evicted_slow,
            trace_dropped,
            phase,
            total,
            first_frame,
            ready_batch,
            ring: TraceRing::new(trace_capacity),
            series: SeriesRing::new(series_capacity, sample_interval),
            threshold_ns,
        })
    }

    /// Registers (idempotently) and returns the `server.shed` counter
    /// for one admission class. Cold path: called once per class when
    /// the admission gate is built.
    pub(crate) fn shed_counter(&self, class: &'static str) -> Counter {
        self.registry.counter(
            "server.shed",
            &[("backend", self.backend.as_str()), ("class", class)],
        )
    }

    /// Registers (idempotently) and returns the pair of
    /// `server.affinity` counters — `result=local` / `result=remote` —
    /// tallying device-carrying requests that landed on (resp. missed)
    /// the event loop owning their registry shard. Cold path: called
    /// once per loop at startup.
    pub(crate) fn affinity_counters(&self) -> (Counter, Counter) {
        let local = self.registry.counter(
            "server.affinity",
            &[("backend", self.backend.as_str()), ("result", "local")],
        );
        let remote = self.registry.counter(
            "server.affinity",
            &[("backend", self.backend.as_str()), ("result", "remote")],
        );
        (local, remote)
    }

    /// Registers (idempotently) and returns the saturation handles for
    /// one lane. Cold path: called once per loop/worker at startup.
    pub(crate) fn lane(&self, lane: u32) -> LaneStats {
        let labels = [
            ("backend", self.backend.as_str()),
            ("worker", lane_label(lane)),
        ];
        LaneStats {
            busy_ns: self.registry.counter("server.worker.busy_ns", &labels),
            wall_ns: self.registry.counter("server.worker.wall_ns", &labels),
            out_highwater: self
                .registry
                .gauge("server.worker.out_highwater_bytes", &labels),
        }
    }

    /// Starts the time-series sampler thread feeding this telemetry's
    /// ring, or `None` when `sample_interval` was zero. The returned
    /// [`Sampler`] stops (and joins) on drop — backends hold it for
    /// their lifetime.
    pub(crate) fn start_sampler(self: &Arc<Self>) -> Option<Sampler> {
        let interval_ns = self.series.interval_ns();
        if interval_ns == 0 {
            return None;
        }
        let source = {
            let telemetry = Arc::clone(self);
            move || telemetry.snapshot()
        };
        Some(Sampler::start(
            self.series.clone(),
            Duration::from_nanos(interval_ns),
            source,
        ))
    }

    /// A connection was accepted (and is now open).
    pub(crate) fn connection_accepted(&self) {
        self.accepted.inc();
        self.open.add(1);
    }

    /// An open connection went away, evicted or not.
    pub(crate) fn connection_closed(&self, evicted_idle: bool, evicted_slow: bool) {
        self.open.sub(1);
        if evicted_idle {
            self.evicted_idle.inc();
        }
        if evicted_slow {
            self.evicted_slow.inc();
        }
    }

    /// Counts a request the moment its frame is complete — before
    /// decode, so malformed frames and the scrape request itself are
    /// part of the tally. This is what makes the CI equality check
    /// (`server.requests == client-side ops`) exact.
    pub(crate) fn request_started(&self) {
        self.requests.inc();
    }

    /// Records a served frame's first four phase timings (ready-wait
    /// through flush) the moment its response is queued, returning the
    /// trace candidate. The caller completes the lifecycle with
    /// [`ServerTelemetry::observe_drained`] once the response bytes
    /// have actually left the out-buffer — immediately, on the
    /// blocking backend, whose write is synchronous.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn observe_queued(
        &self,
        msg_type: u8,
        device_hash: u64,
        ready_ns: u64,
        decode_ns: u64,
        handle_ns: u64,
        flush_ns: u64,
        worker: u32,
    ) -> TraceRecord {
        let slot = &self.phase[msg_slot(msg_type)];
        slot[0].record(ready_ns);
        slot[1].record(decode_ns);
        slot[2].record(handle_ns);
        slot[3].record(flush_ns);
        let total_ns = ready_ns
            .saturating_add(decode_ns)
            .saturating_add(handle_ns)
            .saturating_add(flush_ns);
        TraceRecord {
            seq: 0, // assigned by the ring
            msg_type,
            device_hash,
            ready_ns,
            decode_ns,
            handle_ns,
            flush_ns,
            flush_wait_ns: 0,
            total_ns,
            worker,
        }
    }

    /// Completes a request's lifecycle: records the flush-wait phase
    /// (out-buffer residency) and the whole-request total, and pushes
    /// the trace record when the *total* — waits included — crossed
    /// the slow threshold. Deferring the threshold decision to drain
    /// time is what lets a fast-to-serve but slow-to-drain request
    /// show up in the ring with its tail attributed.
    pub(crate) fn observe_drained(&self, mut record: TraceRecord, flush_wait_ns: u64) {
        record.flush_wait_ns = flush_wait_ns;
        record.total_ns = record.total_ns.saturating_add(flush_wait_ns);
        self.phase[msg_slot(record.msg_type)][4].record(flush_wait_ns);
        self.total.record(record.total_ns);
        if record.total_ns >= self.threshold_ns {
            self.ring.push(record);
        }
    }

    /// Records one connection's accept-to-first-frame latency.
    pub(crate) fn first_frame(&self, ns: u64) {
        self.first_frame.record(ns);
    }

    /// Records one epoll wakeup's ready-list batch size.
    pub(crate) fn ready_batch(&self, n: u64) {
        self.ready_batch.record(n);
    }

    /// Connections accepted since spawn.
    pub(crate) fn accepted_total(&self) -> u64 {
        self.accepted.get()
    }

    /// Connections currently open.
    pub(crate) fn open_connections(&self) -> u64 {
        self.open.get()
    }

    /// Requests served since spawn.
    pub(crate) fn requests_served(&self) -> u64 {
        self.requests.get()
    }

    /// (idle, slow-frame) evictions since spawn.
    pub(crate) fn evictions(&self) -> (u64, u64) {
        (self.evicted_idle.get(), self.evicted_slow.get())
    }

    /// A point-in-time snapshot of this backend's metrics, with the
    /// trace-drop gauge refreshed first.
    pub fn snapshot(&self) -> Snapshot {
        self.trace_dropped.set(self.ring.dropped());
        self.registry.snapshot()
    }

    /// The slow-request ring as a wire-ready snapshot.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        TraceSnapshot::from_ring(&self.ring)
    }

    /// Answers `Request::TraceDump` straight from this backend's ring.
    pub(crate) fn trace_response(&self) -> Response {
        Response::TraceBin {
            bytes: self.trace_snapshot().encode(),
        }
    }

    /// The retained time-series history as a wire-ready snapshot.
    pub fn timeseries_snapshot(&self) -> TimeSeriesSnapshot {
        TimeSeriesSnapshot::from_ring(&self.series)
    }

    /// Answers `Request::TimeSeriesDump` straight from this backend's
    /// series ring.
    pub(crate) fn timeseries_response(&self) -> Response {
        Response::TimeSeriesBin {
            bytes: self.timeseries_snapshot().encode(),
        }
    }

    /// Answers `Request::MetricsSnapshot`: takes the handler's reply
    /// (the verifier's `ropuf-metrics/v1` blob), merges this backend's
    /// own metrics into it, and re-encodes. Namespaces are disjoint
    /// (`server.*` vs `verifier.*`), so the merge never clashes.
    ///
    /// A handler reply that is not a decodable `MetricsBin` (custom
    /// handler, or a typed error) passes through untouched — the
    /// server never turns a working reply into a worse one.
    pub(crate) fn merged_metrics_response(&self, handler_reply: Response) -> Response {
        match handler_reply {
            Response::MetricsBin { bytes } => match Snapshot::decode(&bytes) {
                Ok(mut snapshot) => {
                    snapshot.merge(self.snapshot());
                    Response::MetricsBin {
                        bytes: snapshot.encode(),
                    }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    detail: format!("handler metrics blob undecodable: {e}"),
                },
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_telemetry(threshold: Duration) -> Arc<ServerTelemetry> {
        ServerTelemetry::new("test", threshold, 8, 16, Duration::ZERO)
    }

    #[test]
    fn msg_labels_cover_every_wire_byte() {
        for ty in 0x01..=0x0Bu8 {
            assert_ne!(msg_label(ty), "other", "byte {ty:#04x} should be named");
        }
        assert_eq!(msg_label(0x00), "other");
        assert_eq!(msg_label(0xEE), "other");
        // The slot table and the label table agree.
        for (slot, &ty) in MSG_TYPES.iter().enumerate() {
            assert_eq!(msg_slot(ty), slot);
        }
    }

    #[test]
    fn zero_threshold_traces_everything_and_large_threshold_nothing() {
        let eager = test_telemetry(Duration::ZERO);
        let lazy = test_telemetry(Duration::from_secs(3600));
        for i in 0..5 {
            eager.observe_drained(eager.observe_queued(0x03, i, 5, 10, 20, 30, 0), 40);
            lazy.observe_drained(lazy.observe_queued(0x03, i, 5, 10, 20, 30, 0), 40);
        }
        assert_eq!(eager.trace_snapshot().records.len(), 5);
        assert_eq!(lazy.trace_snapshot().records.len(), 0);
        let record = eager.trace_snapshot().records[0];
        assert_eq!(record.ready_ns, 5);
        assert_eq!(record.flush_wait_ns, 40);
        assert_eq!(record.total_ns, 5 + 10 + 20 + 30 + 40);
        let snap = eager.snapshot();
        for (phase, want) in [
            ("ready-wait", 5u64),
            ("decode", 5),
            ("handle", 5),
            ("flush", 5),
            ("flush-wait", 5),
        ] {
            match snap.find(
                "server.request.phase_ns",
                &[("backend", "test"), ("msg", "auth"), ("phase", phase)],
            ) {
                Some(ropuf_telemetry::MetricValue::Histogram(h)) => {
                    assert_eq!(h.count, want, "phase {phase} should have {want} samples")
                }
                other => panic!("expected {phase}-phase histogram, got {other:?}"),
            }
        }
        match snap.find("server.request.total_ns", &[("backend", "test")]) {
            Some(ropuf_telemetry::MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 5);
                assert_eq!(h.max, 105);
            }
            other => panic!("expected total histogram, got {other:?}"),
        }
    }

    #[test]
    fn lanes_register_and_overflow_into_one_bucket() {
        let t = test_telemetry(Duration::ZERO);
        t.lane(0).busy_ns.add(100);
        t.lane(0).wall_ns.add(200);
        t.lane(99).busy_ns.add(7);
        t.lane(1_000_000).busy_ns.add(3);
        let snap = t.snapshot();
        match snap.find(
            "server.worker.busy_ns",
            &[("backend", "test"), ("worker", "0")],
        ) {
            Some(ropuf_telemetry::MetricValue::Counter(v)) => assert_eq!(*v, 100),
            other => panic!("expected lane-0 busy counter, got {other:?}"),
        }
        // Every out-of-table lane shares the overflow label.
        match snap.find(
            "server.worker.busy_ns",
            &[("backend", "test"), ("worker", "32+")],
        ) {
            Some(ropuf_telemetry::MetricValue::Counter(v)) => assert_eq!(*v, 10),
            other => panic!("expected overflow busy counter, got {other:?}"),
        }
    }

    #[test]
    fn sampler_feeds_the_series_ring() {
        let t = ServerTelemetry::new("test", Duration::ZERO, 8, 32, Duration::from_millis(2));
        let sampler = t.start_sampler().expect("interval > 0 starts a sampler");
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.timeseries_snapshot().points.is_empty() && Instant::now() < deadline {
            t.request_started();
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(sampler);
        let snap = t.timeseries_snapshot();
        assert!(!snap.points.is_empty(), "sampler should have cut points");
        assert_eq!(snap.interval_ns, 2_000_000);
        let requests: u64 = snap.points.iter().map(|p| p.requests).sum();
        assert!(requests <= t.requests_served());
        // Zero interval means no sampler.
        assert!(test_telemetry(Duration::ZERO).start_sampler().is_none());
    }

    #[test]
    fn merge_passthrough_leaves_non_metrics_replies_alone() {
        let t = test_telemetry(Duration::ZERO);
        let err = Response::Error {
            code: ErrorCode::Internal,
            detail: "boom".to_string(),
        };
        assert_eq!(t.merged_metrics_response(err.clone()), err);
    }
}
