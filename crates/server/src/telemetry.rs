//! Server-side telemetry: backend-labeled request/connection counters,
//! per-message-type phase latency histograms, and the slow-request
//! trace ring — everything a wire scrape merges on top of the
//! verifier's own metrics.
//!
//! Both backends (`TcpServer`, `EventedServer`) own one
//! [`ServerTelemetry`] and record into it once per served frame with
//! the three phase durations. All hot-path writes
//! are `Relaxed` striped-counter adds or per-stripe histogram inserts;
//! nothing here takes a process-wide lock on the request path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ropuf_proto::{ErrorCode, RequestRef, Response};
use ropuf_telemetry::{
    Counter, Gauge, Registry, Snapshot, TimerHistogram, TraceRecord, TraceRing, TraceSnapshot,
};

/// Message-type label for each request byte the wire can carry, plus a
/// catch-all bucket so a hostile byte can't mint unbounded label
/// values.
pub(crate) fn msg_label(msg_type: u8) -> &'static str {
    match msg_type {
        0x01 => "hello",
        0x02 => "enroll",
        0x03 => "auth",
        0x04 => "batch-auth",
        0x05 => "query-verdict",
        0x06 => "snapshot",
        0x07 => "snapshot-v2",
        0x08 => "metrics",
        0x09 => "trace",
        _ => "other",
    }
}

/// The wire bytes `msg_label` distinguishes, in label-table order.
/// `0x00` stands in for the "other" bucket.
const MSG_TYPES: [u8; 10] = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x00];

const PHASES: [&str; 3] = ["decode", "handle", "flush"];

fn msg_slot(msg_type: u8) -> usize {
    match msg_type {
        0x01..=0x09 => (msg_type - 1) as usize,
        _ => MSG_TYPES.len() - 1,
    }
}

/// Nanoseconds from `earlier` to `later`, saturating at `u64::MAX`
/// (and at zero for out-of-order instants).
pub(crate) fn elapsed_ns(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

/// Pseudonymous device identity for trace records: the splitmix64 mix
/// of the claimed device id, or 0 for requests that carry none. Trace
/// dumps travel over the wire, so raw ids stay out of them.
pub(crate) fn request_device_hash(request: &RequestRef<'_>) -> u64 {
    let id = match request {
        RequestRef::Enroll { device_id, .. } => Some(*device_id),
        RequestRef::Authenticate(item) => Some(item.device_id),
        RequestRef::QueryVerdict { device_id } => Some(*device_id),
        RequestRef::BatchAuthenticate { items } => items.first().map(|i| i.device_id),
        _ => None,
    };
    id.map_or(0, ropuf_numeric::splitmix64)
}

/// One backend's worth of server metrics plus the slow-request ring.
///
/// Cheap to clone-by-`Arc`; every handle inside is already shareable.
#[derive(Debug)]
pub struct ServerTelemetry {
    registry: Registry,
    accepted: Counter,
    open: Gauge,
    requests: Counter,
    evicted_idle: Counter,
    evicted_slow: Counter,
    trace_dropped: Gauge,
    /// `[msg_slot][phase]`, pre-resolved so the hot path never touches
    /// the registry lock.
    phase: Vec<[TimerHistogram; 3]>,
    ring: TraceRing,
    threshold_ns: u64,
}

impl ServerTelemetry {
    /// Builds a registry for one backend. `backend` labels every
    /// metric (`blocking` or `evented`); requests slower than
    /// `slow_threshold` land in a ring of `trace_capacity` records.
    pub fn new(backend: &str, slow_threshold: Duration, trace_capacity: usize) -> Arc<Self> {
        let registry = Registry::new();
        let b = [("backend", backend)];
        let accepted = registry.counter("server.connections.accepted", &b);
        let open = registry.gauge("server.connections.open", &b);
        let requests = registry.counter("server.requests", &b);
        let evicted_idle =
            registry.counter("server.evicted", &[("backend", backend), ("kind", "idle")]);
        let evicted_slow =
            registry.counter("server.evicted", &[("backend", backend), ("kind", "slow")]);
        let trace_dropped = registry.gauge("server.trace.dropped", &b);
        let phase = MSG_TYPES
            .iter()
            .map(|&ty| {
                let msg = msg_label(ty);
                PHASES.map(|phase| {
                    registry.histogram(
                        "server.request.phase_ns",
                        &[("backend", backend), ("msg", msg), ("phase", phase)],
                    )
                })
            })
            .collect();
        let threshold_ns = u64::try_from(slow_threshold.as_nanos()).unwrap_or(u64::MAX);
        Arc::new(Self {
            registry,
            accepted,
            open,
            requests,
            evicted_idle,
            evicted_slow,
            trace_dropped,
            phase,
            ring: TraceRing::new(trace_capacity),
            threshold_ns,
        })
    }

    /// A connection was accepted (and is now open).
    pub(crate) fn connection_accepted(&self) {
        self.accepted.inc();
        self.open.add(1);
    }

    /// An open connection went away, evicted or not.
    pub(crate) fn connection_closed(&self, evicted_idle: bool, evicted_slow: bool) {
        self.open.sub(1);
        if evicted_idle {
            self.evicted_idle.inc();
        }
        if evicted_slow {
            self.evicted_slow.inc();
        }
    }

    /// Counts a request the moment its frame is complete — before
    /// decode, so malformed frames and the scrape request itself are
    /// part of the tally. This is what makes the CI equality check
    /// (`server.requests == client-side ops`) exact.
    pub(crate) fn request_started(&self) {
        self.requests.inc();
    }

    /// Records one served frame's phase timings, and a trace record
    /// when the request was slow.
    pub(crate) fn observe(
        &self,
        msg_type: u8,
        device_hash: u64,
        decode_ns: u64,
        handle_ns: u64,
        flush_ns: u64,
        worker: u32,
    ) {
        let slot = &self.phase[msg_slot(msg_type)];
        slot[0].record(decode_ns);
        slot[1].record(handle_ns);
        slot[2].record(flush_ns);
        let total_ns = decode_ns.saturating_add(handle_ns).saturating_add(flush_ns);
        if total_ns >= self.threshold_ns {
            self.ring.push(TraceRecord {
                seq: 0, // assigned by the ring
                msg_type,
                device_hash,
                decode_ns,
                handle_ns,
                flush_ns,
                total_ns,
                worker,
            });
        }
    }

    /// Connections accepted since spawn.
    pub(crate) fn accepted_total(&self) -> u64 {
        self.accepted.get()
    }

    /// Connections currently open.
    pub(crate) fn open_connections(&self) -> u64 {
        self.open.get()
    }

    /// Requests served since spawn.
    pub(crate) fn requests_served(&self) -> u64 {
        self.requests.get()
    }

    /// (idle, slow-frame) evictions since spawn.
    pub(crate) fn evictions(&self) -> (u64, u64) {
        (self.evicted_idle.get(), self.evicted_slow.get())
    }

    /// A point-in-time snapshot of this backend's metrics, with the
    /// trace-drop gauge refreshed first.
    pub fn snapshot(&self) -> Snapshot {
        self.trace_dropped.set(self.ring.dropped());
        self.registry.snapshot()
    }

    /// The slow-request ring as a wire-ready snapshot.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        TraceSnapshot::from_ring(&self.ring)
    }

    /// Answers `Request::TraceDump` straight from this backend's ring.
    pub(crate) fn trace_response(&self) -> Response {
        Response::TraceBin {
            bytes: self.trace_snapshot().encode(),
        }
    }

    /// Answers `Request::MetricsSnapshot`: takes the handler's reply
    /// (the verifier's `ropuf-metrics/v1` blob), merges this backend's
    /// own metrics into it, and re-encodes. Namespaces are disjoint
    /// (`server.*` vs `verifier.*`), so the merge never clashes.
    ///
    /// A handler reply that is not a decodable `MetricsBin` (custom
    /// handler, or a typed error) passes through untouched — the
    /// server never turns a working reply into a worse one.
    pub(crate) fn merged_metrics_response(&self, handler_reply: Response) -> Response {
        match handler_reply {
            Response::MetricsBin { bytes } => match Snapshot::decode(&bytes) {
                Ok(mut snapshot) => {
                    snapshot.merge(self.snapshot());
                    Response::MetricsBin {
                        bytes: snapshot.encode(),
                    }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    detail: format!("handler metrics blob undecodable: {e}"),
                },
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_labels_cover_every_wire_byte() {
        for ty in 0x01..=0x09u8 {
            assert_ne!(msg_label(ty), "other", "byte {ty:#04x} should be named");
        }
        assert_eq!(msg_label(0x00), "other");
        assert_eq!(msg_label(0xEE), "other");
        // The slot table and the label table agree.
        for (slot, &ty) in MSG_TYPES.iter().enumerate() {
            assert_eq!(msg_slot(ty), slot);
        }
    }

    #[test]
    fn zero_threshold_traces_everything_and_large_threshold_nothing() {
        let eager = ServerTelemetry::new("test", Duration::ZERO, 8);
        let lazy = ServerTelemetry::new("test", Duration::from_secs(3600), 8);
        for i in 0..5 {
            eager.observe(0x03, i, 10, 20, 30, 0);
            lazy.observe(0x03, i, 10, 20, 30, 0);
        }
        assert_eq!(eager.trace_snapshot().records.len(), 5);
        assert_eq!(lazy.trace_snapshot().records.len(), 0);
        let snap = eager.snapshot();
        match snap.find(
            "server.request.phase_ns",
            &[("backend", "test"), ("msg", "auth"), ("phase", "handle")],
        ) {
            Some(ropuf_telemetry::MetricValue::Histogram(h)) => assert_eq!(h.count, 5),
            other => panic!("expected handle-phase histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_passthrough_leaves_non_metrics_replies_alone() {
        let t = ServerTelemetry::new("test", Duration::ZERO, 8);
        let err = Response::Error {
            code: ErrorCode::Internal,
            detail: "boom".to_string(),
        };
        assert_eq!(t.merged_metrics_response(err.clone()), err);
    }
}
