//! The event-driven TCP serving surface: epoll readiness loops driving
//! per-connection state machines.
//!
//! ```text
//!   event loop 0 .. N-1 (std::thread each, own epoll instance)
//!   ┌────────────────────────────────────────────────────────────┐
//!   │ epoll_wait ──▶ listener readable?  accept until WouldBlock │
//!   │           ──▶ waker readable?      drain, re-check flags   │
//!   │           ──▶ connection event ──▶ per-connection machine: │
//!   │                                                            │
//!   │   ┌──────────────┐ header ┌───────────────┐ frame          │
//!   │   │ reading frame│───────▶│reading payload│──────┐         │
//!   │   │    header    │        │  (FrameAccum) │      ▼         │
//!   │   └──────▲───────┘        └───────────────┘  decode →      │
//!   │          │ pipelining: next frame             handle →     │
//!   │          └──────────────────────────────── append response │
//!   │                                                 │          │
//!   │   ┌─────────────────────────┐  write readiness  ▼          │
//!   │   │ draining write buffer   │◀──────── bounded out-buffer  │
//!   │   └─────────────────────────┘   (backpressure: stop        │
//!   │                                  reading while over-full)  │
//!   └────────────────────────────────────────────────────────────┘
//!        │ all loops share one Arc<dyn RequestHandler>
//!        ▼
//!   shared Verifier (per-shard locks, exactly as the blocking pool)
//! ```
//!
//! Where the blocking [`TcpServer`](crate::tcp::TcpServer) dedicates a
//! worker thread to one connection at a time (concurrency capped by
//! the pool size, one slow client stalls a worker), this server
//! multiplexes **thousands of connections per loop thread**: each
//! connection is a small state machine that only runs when the kernel
//! says its socket is ready. Connections support pipelining (many
//! requests in flight back-to-back on one socket; responses come back
//! in order), per-connection buffers are bounded (the 64 KiB
//! [`SCRATCH_RETAIN`](ropuf_proto::SCRATCH_RETAIN) retention rule plus
//! a configurable write-buffer high-water mark that pauses reading —
//! backpressure instead of unbounded queueing), and two timers evict
//! hostile or dead peers: an idle timeout between requests and a
//! stricter mid-frame timeout that defeats slow-loris trickles.
//!
//! Protocol semantics are **identical** to the blocking server: both
//! funnel decoded [`RequestRef`]s through the same shared
//! [`RequestHandler`], malformed frames are answered with a typed
//! [`ErrorCode::MalformedRequest`] before the connection closes, and
//! oversized responses degrade to [`ErrorCode::ResponseTooLarge`]. The
//! equivalence suite replays identical traffic through both backends
//! and asserts bit-for-bit identical response bytes.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ropuf_proto::{
    append_frame, ErrorCode, FrameAccum, FrameError, FramePoll, RequestRef, Response,
};

use ropuf_telemetry::{Sampler, TraceRecord};

use crate::admission::{Admission, OverloadPolicy, RequestClass};
use crate::handler::RequestHandler;
use crate::sys::epoll::{event, Epoll, Event};
use crate::telemetry::{elapsed_ns, request_device_hash, LaneStats, ServerTelemetry};

/// Tuning knobs of the evented server. [`EventedConfig::default`] is
/// the production shape; tests shrink the timeouts to milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventedConfig {
    /// Event-loop threads. Each owns an epoll instance; accepted
    /// connections stay on the loop that accepted them. `0` is
    /// promoted to 1.
    pub loops: usize,
    /// A connection with no complete frame for this long — and no
    /// frame in progress — is evicted.
    pub idle_timeout: Duration,
    /// Once a frame's first byte arrives, the whole frame must arrive
    /// within this window or the connection is evicted (slow-loris
    /// defense: trickling one byte per second does not reset it).
    pub frame_timeout: Duration,
    /// Write-buffer high-water mark: while a connection has more than
    /// this many unsent response bytes, the loop stops reading from it
    /// (backpressure) until the peer drains.
    pub max_write_buffer: usize,
    /// How long a graceful [`EventedServer::shutdown`] waits for open
    /// connections to take their answers before force-closing them.
    pub drain_timeout: Duration,
    /// A served request whose decode + handle + flush time meets this
    /// threshold lands in the slow-request trace ring
    /// ([`Request::TraceDump`](ropuf_proto::Request::TraceDump)).
    /// `Duration::ZERO` traces every request.
    pub slow_trace_threshold: Duration,
    /// Capacity of the slow-request trace ring (oldest records are
    /// overwritten).
    pub trace_capacity: usize,
    /// Interval at which the in-server sampler thread cuts a
    /// [`SeriesPoint`](ropuf_telemetry::SeriesPoint) delta into the
    /// time-series ring
    /// ([`Request::TimeSeriesDump`](ropuf_proto::Request::TimeSeriesDump)).
    /// `Duration::ZERO` disables the sampler entirely.
    pub sample_interval: Duration,
    /// Capacity of the time-series ring (oldest points are
    /// overwritten). At the default 1 s interval, 512 points is
    /// ~8.5 minutes of history in ~140 KiB.
    pub series_capacity: usize,
    /// Admission budget. On this backend pressure is a connection's
    /// pending out-buffer bytes — the direct measure of a peer that
    /// asks faster than it reads. Sensible budgets sit below
    /// [`EventedConfig::max_write_buffer`], so cheap `Overloaded`
    /// answers go out *before* backpressure stops reading entirely.
    /// Disabled by default.
    pub overload: OverloadPolicy,
}

impl Default for EventedConfig {
    fn default() -> Self {
        Self {
            loops: 1,
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(10),
            max_write_buffer: 1024 * 1024,
            drain_timeout: Duration::from_secs(1),
            slow_trace_threshold: Duration::from_millis(1),
            trace_capacity: 256,
            sample_interval: Duration::from_secs(1),
            series_capacity: 512,
            overload: OverloadPolicy::disabled(),
        }
    }
}

#[derive(Debug)]
struct Shared {
    /// Graceful stop: stop accepting, answer what's buffered, drain.
    stop: AtomicBool,
    /// Force stop: close everything now.
    force: AtomicBool,
    /// Aggregate serving counters, phase histograms, and the
    /// slow-request ring, shared by all loops.
    telemetry: Arc<ServerTelemetry>,
    /// Admission gate (policy + shed tallies), shared by all loops.
    admission: Admission,
    /// Write halves of each loop's waker pipe.
    wakers: Mutex<Vec<UnixStream>>,
}

/// A running event-driven TCP server.
///
/// Like the blocking server, dropping the handle without calling
/// [`EventedServer::shutdown`] / [`EventedServer::force_shutdown`]
/// leaks the loop threads until process exit.
#[derive(Debug)]
pub struct EventedServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// The time-series sampler thread; `None` when
    /// [`EventedConfig::sample_interval`] is zero. Stopped (joined) on
    /// shutdown.
    sampler: Option<Sampler>,
}

impl EventedServer {
    /// Binds `addr` (port 0 = ephemeral) and starts `config.loops`
    /// event-loop threads sharing the listener.
    ///
    /// # Errors
    ///
    /// Propagates bind / epoll-creation / waker-creation failures.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        config: EventedConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let telemetry = ServerTelemetry::new(
            "evented",
            config.slow_trace_threshold,
            config.trace_capacity,
            config.series_capacity,
            config.sample_interval,
        );
        let admission = Admission::new(config.overload, &telemetry);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            force: AtomicBool::new(false),
            telemetry,
            admission,
            wakers: Mutex::new(Vec::new()),
        });
        let sampler = shared.telemetry.start_sampler();

        // A failure partway through (fd exhaustion on a clone, a pair
        // or spawn error) must not leak the loops already running, so
        // fallible setup is collected and unwound explicitly.
        let mut threads = Vec::new();
        for loop_id in 0..config.loops.max(1) {
            let setup = (|| -> io::Result<(TcpListener, UnixStream, UnixStream)> {
                let listener = listener.try_clone()?;
                let (wake_tx, wake_rx) = UnixStream::pair()?;
                wake_rx.set_nonblocking(true)?;
                wake_tx.set_nonblocking(true)?;
                Ok((listener, wake_tx, wake_rx))
            })();
            let (listener, wake_tx, wake_rx) = match setup {
                Ok(parts) => parts,
                Err(e) => {
                    Self::stop_loops(&shared, &mut threads, true);
                    return Err(e);
                }
            };
            shared
                .wakers
                .lock()
                .expect("waker list poisoned")
                .push(wake_tx);
            let loop_shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            let spawned = std::thread::Builder::new()
                .name(format!("evented-loop-{loop_id}"))
                .spawn(move || {
                    let mut event_loop =
                        match EventLoop::new(listener, wake_rx, config, loop_id as u32) {
                            Ok(event_loop) => event_loop,
                            Err(e) => panic!("event loop {loop_id} failed to initialize: {e}"),
                        };
                    event_loop.run(handler.as_ref(), &loop_shared);
                });
            match spawned {
                Ok(thread) => threads.push(thread),
                Err(e) => {
                    Self::stop_loops(&shared, &mut threads, true);
                    return Err(e);
                }
            }
        }

        Ok(Self {
            local_addr,
            shared,
            threads,
            sampler,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently established across all loops.
    pub fn open_connections(&self) -> usize {
        usize::try_from(self.shared.telemetry.open_connections()).unwrap_or(usize::MAX)
    }

    /// Connections accepted since the server started.
    pub fn accepted_total(&self) -> u64 {
        self.shared.telemetry.accepted_total()
    }

    /// Requests served (one per completed frame) since the server started.
    pub fn requests_served(&self) -> u64 {
        self.shared.telemetry.requests_served()
    }

    /// Connections evicted by the idle / mid-frame (slow-loris) timers.
    pub fn evictions(&self) -> (u64, u64) {
        self.shared.telemetry.evictions()
    }

    /// This server's telemetry: the same registry and trace ring a
    /// wire scrape reads, for in-process inspection.
    pub fn telemetry(&self) -> &Arc<ServerTelemetry> {
        &self.shared.telemetry
    }

    /// This server's admission gate (policy + shed tallies).
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// Flags the loops to stop (skipping the drain window when
    /// `force`), wakes them, and joins `threads`. Shared by both
    /// shutdown flavors and the spawn-failure unwind.
    fn stop_loops(shared: &Shared, threads: &mut Vec<JoinHandle<()>>, force: bool) {
        if force {
            shared.force.store(true, Ordering::SeqCst);
        }
        shared.stop.store(true, Ordering::SeqCst);
        for waker in shared
            .wakers
            .lock()
            .expect("waker list poisoned")
            .iter_mut()
        {
            let _ = waker.write(&[1]);
        }
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful shutdown: stops accepting, flushes every buffered
    /// response, closes each connection once its write buffer drains,
    /// force-closes whatever remains after
    /// [`EventedConfig::drain_timeout`], and joins the loop threads.
    pub fn shutdown(mut self) {
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        Self::stop_loops(&self.shared, &mut self.threads, false);
    }

    /// Immediate shutdown: every open connection is closed now,
    /// mid-exchange peers see EOF/reset.
    pub fn force_shutdown(mut self) {
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        Self::stop_loops(&self.shared, &mut self.threads, true);
    }
}

/// Why a connection is being torn down (drives eviction counters).
enum Teardown {
    /// Normal close (EOF, error, drained-after-closing).
    Normal,
    /// Idle timer fired.
    Idle,
    /// Mid-frame (slow-loris) timer fired.
    SlowFrame,
}

/// A response queued in a connection's out-buffer whose flush-wait
/// clock is still running: the trace record is finalized (and its
/// flush-wait phase recorded) only once the socket has accepted every
/// byte up to `end`.
#[derive(Debug)]
struct PendingFlush {
    /// Absolute out-stream offset (total bytes ever queued on this
    /// connection) at which this response ends.
    end: u64,
    /// When the response landed in the out-buffer — the flush-wait
    /// clock's start.
    queued_at: Instant,
    /// The partially-filled record from
    /// [`ServerTelemetry::observe_queued`].
    record: TraceRecord,
}

/// One connection's full state: socket, incremental frame reader,
/// bounded response buffer, and the timer bookkeeping.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    accum: FrameAccum,
    /// Encoded-but-unsent response bytes (frames laid end to end).
    out: Vec<u8>,
    /// Prefix of `out` already written to the socket.
    sent: usize,
    /// Interest bits currently registered with epoll.
    interest: u32,
    /// Last observable progress: connection accepted, a complete
    /// frame served, or response bytes accepted by the socket — the
    /// idle timer's anchor.
    last_activity: Instant,
    /// Deadline for the frame currently in flight, set when its first
    /// byte arrives. Deliberately **not** reset by later bytes: a
    /// trickle must still finish the frame inside the window.
    frame_deadline: Option<Instant>,
    /// No more requests will be read; close once `out` drains.
    closing: bool,
    /// When the connection was accepted — the accept-to-first-frame
    /// clock's start.
    accepted_at: Instant,
    /// Whether the first complete frame has been observed (the
    /// accept-to-first-frame histogram records exactly once).
    saw_first_frame: bool,
    /// Total bytes ever appended to `out` (monotonic, survives the
    /// compaction `flush_out` performs on the buffer itself).
    queued_total: u64,
    /// Total bytes the socket has ever accepted (monotonic).
    sent_total: u64,
    /// Responses queued but not yet fully accepted by the socket,
    /// oldest first (responses drain in order).
    pending_flush: VecDeque<PendingFlush>,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.sent
    }

    /// Finalizes every queued trace record whose response bytes the
    /// socket has now fully accepted, crediting the elapsed out-buffer
    /// residency as the flush-wait phase.
    fn settle_flushed(&mut self, telemetry: &ServerTelemetry) {
        while self
            .pending_flush
            .front()
            .is_some_and(|p| p.end <= self.sent_total)
        {
            let entry = self.pending_flush.pop_front().expect("front checked");
            telemetry.observe_drained(entry.record, elapsed_ns(entry.queued_at, Instant::now()));
        }
    }
}

/// Slab token space: listener and waker own fixed tokens, connections
/// map to `slab index + CONN_BASE`.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const CONN_BASE: u64 = 2;

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    waker: UnixStream,
    config: EventedConfig,
    /// Which loop thread this is — the `worker` field of the trace
    /// records this loop emits.
    loop_id: u32,
    conns: Vec<Option<Conn>>,
    free: VecDeque<usize>,
    /// Response-encode scratch shared by every connection on this loop
    /// (handling is synchronous, so one buffer suffices).
    encode_scratch: Vec<u8>,
    /// Set once the stop flag has been observed and the listener
    /// deregistered.
    draining: bool,
    drain_deadline: Option<Instant>,
    /// This loop's saturation counters and high-water gauge, resolved
    /// once at `run` entry (registry lookups are too slow per-frame).
    lane: Option<LaneStats>,
    /// Largest pending out-buffer any connection on this loop has
    /// reached; the gauge is only touched when this grows.
    out_highwater: usize,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        waker: UnixStream,
        config: EventedConfig,
        loop_id: u32,
    ) -> io::Result<Self> {
        let epoll = Epoll::new()?;
        epoll.add(&listener, event::IN, TOKEN_LISTENER)?;
        epoll.add(&waker, event::IN, TOKEN_WAKER)?;
        Ok(Self {
            epoll,
            listener,
            waker,
            config,
            loop_id,
            conns: Vec::new(),
            free: VecDeque::new(),
            encode_scratch: Vec::new(),
            draining: false,
            drain_deadline: None,
            lane: None,
            out_highwater: 0,
        })
    }

    /// Wait-timeout granularity: fine enough to honor the configured
    /// timers (tests use tens of milliseconds), coarse enough not to
    /// spin.
    fn tick_ms(&self) -> i32 {
        let finest = self
            .config
            .idle_timeout
            .min(self.config.frame_timeout)
            .min(self.config.drain_timeout);
        ((finest.as_millis() / 4).clamp(1, 50)) as i32
    }

    fn run(&mut self, handler: &dyn RequestHandler, shared: &Shared) {
        self.lane = Some(shared.telemetry.lane(self.loop_id));
        let mut events = vec![Event::default(); 1024];
        let tick = self.tick_ms();
        loop {
            let wait_start = Instant::now();
            let n = match self.epoll.wait(&mut events, tick) {
                Ok(n) => n,
                Err(_) => break, // epoll itself failed: abandon ship
            };
            // Everything serviced from this wake-up measures its
            // ready-wait phase from here: the kernel said "ready" now,
            // and whatever sits behind earlier events in the batch (or
            // behind earlier pipelined frames) waits its turn.
            let ready_at = Instant::now();
            if n > 0 {
                shared.telemetry.ready_batch(n as u64);
            }
            for ev in &events[..n] {
                match ev.token() {
                    TOKEN_LISTENER => self.accept_ready(shared),
                    TOKEN_WAKER => {
                        let mut buf = [0u8; 64];
                        while matches!(self.waker.read(&mut buf), Ok(n) if n > 0) {}
                    }
                    token => {
                        let index = (token - CONN_BASE) as usize;
                        self.service(index, ev.writable(), ready_at, handler, shared);
                    }
                }
            }
            self.sweep_timers(shared);
            if shared.force.load(Ordering::SeqCst) {
                self.close_all(shared);
                break;
            }
            if shared.stop.load(Ordering::SeqCst) {
                if !self.draining {
                    self.draining = true;
                    let _ = self.epoll.delete(&self.listener);
                    self.drain_deadline = Some(Instant::now() + self.config.drain_timeout);
                    // Everything already answered should flush; no new
                    // requests are read once `closing` is set.
                    for index in 0..self.conns.len() {
                        if let Some(conn) = self.conns[index].as_mut() {
                            conn.closing = true;
                        }
                        self.service(index, true, Instant::now(), handler, shared);
                    }
                }
                let open = self.conns.iter().flatten().count();
                let expired = self
                    .drain_deadline
                    .is_some_and(|deadline| Instant::now() >= deadline);
                if open == 0 || expired {
                    self.close_all(shared);
                    break;
                }
            }
            // Saturation accounting: wall covers the whole iteration
            // (park included), busy only the part after the kernel
            // returned. busy/wall is the loop's utilization.
            if let Some(lane) = &self.lane {
                let end = Instant::now();
                lane.busy_ns.add(elapsed_ns(ready_at, end));
                lane.wall_ns.add(elapsed_ns(wait_start, end));
            }
        }
    }

    fn accept_ready(&mut self, shared: &Shared) {
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok(); // latency over batching
                    let index = self.free.pop_front().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = index as u64 + CONN_BASE;
                    let now = Instant::now();
                    let conn = Conn {
                        stream,
                        accum: FrameAccum::new(),
                        out: Vec::new(),
                        sent: 0,
                        interest: event::IN | event::RDHUP,
                        last_activity: now,
                        frame_deadline: None,
                        closing: false,
                        accepted_at: now,
                        saw_first_frame: false,
                        queued_total: 0,
                        sent_total: 0,
                        pending_flush: VecDeque::new(),
                    };
                    if self.epoll.add(&conn.stream, conn.interest, token).is_err() {
                        self.free.push_back(index);
                        continue; // conn drops, socket closes
                    }
                    self.conns[index] = Some(conn);
                    shared.telemetry.connection_accepted();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry on next event
            }
        }
    }

    /// Runs one connection's state machine as far as readiness allows:
    /// flush pending output, read/handle frames (pipelined) until the
    /// socket runs dry or backpressure pauses it, flush again, then
    /// re-register interest.
    fn service(
        &mut self,
        index: usize,
        writable: bool,
        ready_at: Instant,
        handler: &dyn RequestHandler,
        shared: &Shared,
    ) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return; // already closed this iteration
        };

        if writable {
            if !flush_out(conn) {
                self.close(index, Teardown::Normal, shared);
                return;
            }
            conn.settle_flushed(&shared.telemetry);
        }

        let teardown = loop {
            if conn.closing {
                break None; // no more reads; wait for the drain
            }
            if conn.pending_out() > self.config.max_write_buffer {
                break None; // backpressure: resume when the peer drains
            }
            match conn.accum.poll(&mut conn.stream) {
                Ok(FramePoll::Frame) => {
                    let t0 = Instant::now();
                    conn.last_activity = t0;
                    conn.frame_deadline = None;
                    if !conn.saw_first_frame {
                        conn.saw_first_frame = true;
                        shared
                            .telemetry
                            .first_frame(elapsed_ns(conn.accepted_at, t0));
                    }
                    // Counted before decode: malformed frames and the
                    // metrics scrape itself are part of the tally, so
                    // `server.requests` equals the client-side op
                    // count exactly.
                    shared.telemetry.request_started();
                    let msg_type = conn.accum.payload().first().copied().unwrap_or(0);
                    // Admission off the type byte alone, metered by
                    // this connection's unsent response bytes: a shed
                    // request costs a small error frame, never a decode
                    // or a verifier call, and the connection lives on.
                    if let Some(shed) = shared
                        .admission
                        .check(RequestClass::of(msg_type), conn.pending_out() as u64)
                    {
                        let t2 = Instant::now();
                        let before = conn.out.len();
                        let queued = queue_response(conn, &shed, &mut self.encode_scratch);
                        conn.queued_total += (conn.out.len() - before) as u64;
                        let t3 = Instant::now();
                        let record = shared.telemetry.observe_queued(
                            msg_type,
                            0,
                            elapsed_ns(ready_at, t0),
                            0,
                            elapsed_ns(t0, t2),
                            elapsed_ns(t2, t3),
                            self.loop_id,
                        );
                        conn.pending_flush.push_back(PendingFlush {
                            end: conn.queued_total,
                            queued_at: t3,
                            record,
                        });
                        conn.accum.finish_frame();
                        if !queued {
                            break Some(Teardown::Normal);
                        }
                        continue;
                    }
                    let decoded = RequestRef::decode(conn.accum.payload());
                    let t1 = Instant::now();
                    let keep_going = match decoded {
                        Ok(request) => {
                            let device_hash = request_device_hash(&request);
                            let response = match request {
                                // The handler only knows the verifier's
                                // metrics; the serving layer folds its
                                // own namespace into the blob.
                                RequestRef::MetricsSnapshot => shared
                                    .telemetry
                                    .merged_metrics_response(handler.handle_ref(request)),
                                // Traces and the time series live
                                // here, not in the handler.
                                RequestRef::TraceDump => shared.telemetry.trace_response(),
                                RequestRef::TimeSeriesDump => {
                                    shared.telemetry.timeseries_response()
                                }
                                request => handler.handle_ref(request),
                            };
                            let t2 = Instant::now();
                            let before = conn.out.len();
                            let queued = queue_response(conn, &response, &mut self.encode_scratch);
                            conn.queued_total += (conn.out.len() - before) as u64;
                            let t3 = Instant::now();
                            let record = shared.telemetry.observe_queued(
                                msg_type,
                                device_hash,
                                // Pipelined frames behind this one re-use
                                // the same wake-up anchor, so their
                                // ready-wait grows by exactly the time
                                // earlier frames held the loop: genuine
                                // queueing, attributed.
                                elapsed_ns(ready_at, t0),
                                elapsed_ns(t0, t1),
                                elapsed_ns(t1, t2),
                                elapsed_ns(t2, t3),
                                self.loop_id,
                            );
                            conn.pending_flush.push_back(PendingFlush {
                                end: conn.queued_total,
                                queued_at: t3,
                                record,
                            });
                            queued
                        }
                        Err(e) => {
                            // Same contract as the blocking server: a
                            // typed answer, then the connection ends.
                            let t2 = Instant::now();
                            let before = conn.out.len();
                            let answered = queue_response(
                                conn,
                                &Response::Error {
                                    code: ErrorCode::MalformedRequest,
                                    detail: FrameError::Decode(e).to_string(),
                                },
                                &mut self.encode_scratch,
                            );
                            conn.queued_total += (conn.out.len() - before) as u64;
                            let t3 = Instant::now();
                            let record = shared.telemetry.observe_queued(
                                msg_type,
                                0,
                                elapsed_ns(ready_at, t0),
                                elapsed_ns(t0, t1),
                                elapsed_ns(t1, t2),
                                elapsed_ns(t2, t3),
                                self.loop_id,
                            );
                            conn.pending_flush.push_back(PendingFlush {
                                end: conn.queued_total,
                                queued_at: t3,
                                record,
                            });
                            conn.closing = true;
                            conn.frame_deadline = None;
                            answered
                        }
                    };
                    conn.accum.finish_frame();
                    if !keep_going {
                        break Some(Teardown::Normal);
                    }
                    // Pipelining: immediately try the next frame.
                }
                Ok(FramePoll::Pending) => {
                    if conn.accum.mid_frame() && conn.frame_deadline.is_none() {
                        conn.frame_deadline = Some(Instant::now() + self.config.frame_timeout);
                    }
                    break None;
                }
                Ok(FramePoll::Eof) => {
                    // Clean EOF: answer nothing further, drain and close.
                    conn.closing = true;
                    conn.frame_deadline = None;
                    break None;
                }
                Err(e) if e.is_peer_fault() => {
                    // Oversized frame header: typed answer, then close.
                    queue_response(
                        conn,
                        &Response::Error {
                            code: ErrorCode::MalformedRequest,
                            detail: e.to_string(),
                        },
                        &mut self.encode_scratch,
                    );
                    conn.closing = true;
                    // No more frames will be read; the only remaining
                    // timer that should apply is the idle one.
                    conn.frame_deadline = None;
                    break None;
                }
                Err(_) => break Some(Teardown::Normal), // dead transport
            }
        };
        if let Some(reason) = teardown {
            self.close(index, reason, shared);
            return;
        }

        // Out-buffer peak is measured *before* the flush below: this
        // is the residency the responses just queued actually saw.
        let pending = conn.pending_out();
        if pending > self.out_highwater {
            self.out_highwater = pending;
            if let Some(lane) = &self.lane {
                lane.out_highwater.set(pending as u64);
            }
        }

        if !flush_out(conn) {
            self.close(index, Teardown::Normal, shared);
            return;
        }
        conn.settle_flushed(&shared.telemetry);
        if conn.closing && conn.pending_out() == 0 {
            self.close(index, Teardown::Normal, shared);
            return;
        }

        // Re-register interest: read (and watch for peer half-close)
        // unless paused, write only while output is pending. RDHUP is
        // dropped together with IN: it is level-triggered, so keeping
        // it on a draining connection whose peer already half-closed
        // would wake every epoll_wait instantly — a busy spin. A dead
        // peer still surfaces through ERR/HUP on the write side.
        let paused = conn.closing || conn.pending_out() > self.config.max_write_buffer;
        let mut interest = 0;
        if !paused {
            interest |= event::IN | event::RDHUP;
        }
        if conn.pending_out() > 0 {
            interest |= event::OUT;
        }
        if interest != conn.interest {
            conn.interest = interest;
            let token = index as u64 + CONN_BASE;
            if self.epoll.modify(&conn.stream, interest, token).is_err() {
                self.close(index, Teardown::Normal, shared);
            }
        }
    }

    fn sweep_timers(&mut self, shared: &Shared) {
        let now = Instant::now();
        for index in 0..self.conns.len() {
            let Some(conn) = self.conns[index].as_ref() else {
                continue;
            };
            // The mid-frame timer only judges a peer the server is
            // actually reading from: a backpressure-paused connection
            // is stalled by the server's own high-water mark, and a
            // closing one is past reading entirely.
            let paused = conn.closing || conn.pending_out() > self.config.max_write_buffer;
            if let Some(deadline) = conn.frame_deadline {
                if !paused && now >= deadline {
                    self.close(index, Teardown::SlowFrame, shared);
                    continue;
                }
            }
            // Idle is the unconditional backstop: no complete frame
            // and no accepted write bytes for the whole window closes
            // the connection whatever state it is in — a peer that
            // never reads its answers, a closing connection whose peer
            // refuses to drain the final answer, a paused-mid-frame
            // stall. The (stricter) mid-frame timer above fires first
            // on active connections; sane configs keep
            // `idle_timeout > frame_timeout`.
            if now.duration_since(conn.last_activity) >= self.config.idle_timeout {
                self.close(index, Teardown::Idle, shared);
            }
        }
    }

    fn close(&mut self, index: usize, reason: Teardown, shared: &Shared) {
        if let Some(mut conn) = self.conns[index].take() {
            // A connection killed mid-flush still owes its lifecycle
            // accounting: settle whatever the socket did accept, then
            // finalize the responses that never fully drained — their
            // flush-wait ends here, at teardown, so the phase
            // histograms and the total never under-count a request the
            // server answered but the wire lost. Without this, every
            // force-shutdown or eviction leaked its queued records.
            conn.settle_flushed(&shared.telemetry);
            let now = Instant::now();
            for entry in conn.pending_flush.drain(..) {
                shared
                    .telemetry
                    .observe_drained(entry.record, elapsed_ns(entry.queued_at, now));
            }
            // Counters next: a peer that observes the EOF below must
            // already see its eviction accounted for.
            shared.telemetry.connection_closed(
                matches!(reason, Teardown::Idle),
                matches!(reason, Teardown::SlowFrame),
            );
            let _ = self.epoll.delete(&conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.free.push_back(index);
        }
    }

    fn close_all(&mut self, shared: &Shared) {
        for index in 0..self.conns.len() {
            self.close(index, Teardown::Normal, shared);
        }
    }
}

/// Encodes `response` and appends it to the connection's out-buffer.
/// An oversize response degrades to the same typed
/// [`ErrorCode::ResponseTooLarge`] answer the blocking server gives.
/// Returns `false` only when even the fallback cannot be queued.
fn queue_response(conn: &mut Conn, response: &Response, scratch: &mut Vec<u8>) -> bool {
    response.encode_into(scratch);
    let queued = match append_frame(&mut conn.out, scratch) {
        Ok(()) => true,
        Err(FrameError::Oversize(n)) => {
            let fallback = Response::Error {
                code: ErrorCode::ResponseTooLarge,
                detail: format!(
                    "response needs {n} bytes, frame cap is {}",
                    ropuf_proto::MAX_FRAME
                ),
            };
            fallback.encode_into(scratch);
            append_frame(&mut conn.out, scratch).is_ok()
        }
        Err(_) => false,
    };
    // One giant snapshot must not pin MAX_FRAME of encode capacity on
    // the loop thread forever — same retention rule as every other
    // reused buffer.
    ropuf_proto::frame::bound_scratch(scratch);
    queued
}

/// Writes as much pending output as the socket accepts. Returns
/// `false` when the transport died. Re-bounds the out-buffer once it
/// fully drains (the 64 KiB retention rule).
fn flush_out(conn: &mut Conn) -> bool {
    while conn.sent < conn.out.len() {
        match conn.stream.write(&conn.out[conn.sent..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.sent += n;
                conn.sent_total += n as u64;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.sent == conn.out.len() && !conn.out.is_empty() {
        conn.out.clear();
        conn.sent = 0;
        ropuf_proto::frame::bound_scratch(&mut conn.out);
    } else if conn.sent > ropuf_proto::SCRATCH_RETAIN {
        // Partial drain: compact the already-written prefix so a
        // connection that pipelines forever against a slightly-slow
        // reader cannot grow `out` without bound — the high-water mark
        // must measure *pending* bytes against a buffer that holds
        // only pending bytes.
        conn.out.drain(..conn.sent);
        conn.sent = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::VerifierHandler;
    use crate::tcp::TcpTransport;
    use crate::transport::Client;
    use ropuf_verifier::{DetectorConfig, Verifier};

    fn spawn_default() -> EventedServer {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        EventedServer::spawn("127.0.0.1:0", handler, EventedConfig::default()).expect("bind")
    }

    #[test]
    fn hello_roundtrips_over_the_evented_server() {
        let server = spawn_default();
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        let name = client.hello("evented-unit").unwrap();
        assert!(name.starts_with("ropuf-server/"), "{name}");
        assert_eq!(server.accepted_total(), 1);
        assert_eq!(server.requests_served(), 1);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_answers_buffered_requests() {
        let server = spawn_default();
        let addr = server.local_addr();
        let mut client = Client::new(TcpTransport::connect(addr).unwrap());
        client.hello("draining").unwrap();
        server.shutdown();
        // The connection is closed afterwards; a new exchange fails.
        assert!(client.hello("after-shutdown").is_err());
    }

    #[test]
    fn force_shutdown_closes_connections() {
        let server = spawn_default();
        let addr = server.local_addr();
        let mut client = Client::new(TcpTransport::connect(addr).unwrap());
        client.hello("doomed").unwrap();
        assert_eq!(server.open_connections(), 1);
        server.force_shutdown();
        assert!(client.hello("again").is_err());
    }

    #[test]
    fn wire_scrape_merges_server_and_verifier_metrics() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                slow_trace_threshold: Duration::ZERO,
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        client.hello("scraper").unwrap();
        let snap = client.metrics().unwrap();
        // The scrape's own request is already in the tally: hello + it.
        assert_eq!(snap.counter_total("server.requests"), 2);
        // Verifier namespace rode along in the same blob.
        assert!(snap.metrics.iter().any(|m| m.name.starts_with("verifier.")));
        // Both requests landed phase samples under their own msg label.
        assert!(snap.histogram_samples("server.request.phase_ns") >= 2);
        // Threshold zero: both prior requests are in the ring (the
        // dump request itself is recorded only after it is answered).
        let trace = client.trace_dump().unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].msg_type, 0x01); // hello
        assert_eq!(trace.records[1].msg_type, 0x08); // metrics scrape
                                                     // Every record's total is exactly the sum of its five phases:
                                                     // nothing a client waited on is left unattributed.
        for record in &trace.records {
            assert_eq!(
                record.total_ns,
                record.ready_ns
                    + record.decode_ns
                    + record.handle_ns
                    + record.flush_ns
                    + record.flush_wait_ns,
                "{record:?}"
            );
        }
        // The saturation instruments registered under this loop's lane.
        assert!(snap
            .find("server.loop.ready_batch", &[("backend", "evented")])
            .is_some());
        assert!(snap
            .find(
                "server.worker.busy_ns",
                &[("backend", "evented"), ("worker", "0")]
            )
            .is_some());
        assert!(snap
            .find("server.conn.first_frame_ns", &[("backend", "evented")])
            .is_some());
        server.shutdown();
    }

    #[test]
    fn wire_timeseries_returns_sampled_history() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                sample_interval: Duration::from_millis(5),
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        let deadline = Instant::now() + Duration::from_secs(10);
        let snap = loop {
            client.hello("series").unwrap();
            let snap = client.timeseries().unwrap();
            if snap.points.iter().any(|p| p.requests > 0) || Instant::now() >= deadline {
                break snap;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        assert_eq!(snap.interval_ns, 5_000_000);
        assert!(
            snap.points.iter().any(|p| p.requests > 0),
            "sampler should have cut a point with traffic in it: {snap:?}"
        );
        server.shutdown();
    }

    #[test]
    fn huge_trace_threshold_keeps_the_ring_empty() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                slow_trace_threshold: Duration::from_secs(3600),
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        client.hello("fast").unwrap();
        let trace = client.trace_dump().unwrap();
        assert!(trace.records.is_empty(), "{:?}", trace.records);
        assert_eq!(trace.dropped, 0);
        server.shutdown();
    }

    #[test]
    fn multiple_loops_share_the_listener() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                loops: 3,
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..6 {
                scope.spawn(move || {
                    let mut client = Client::new(TcpTransport::connect(addr).unwrap());
                    client.hello(&format!("loop-share-{t}")).unwrap();
                });
            }
        });
        assert_eq!(server.accepted_total(), 6);
        server.shutdown();
    }
}
