//! The event-driven TCP serving surface: epoll readiness loops driving
//! per-connection state machines.
//!
//! ```text
//!   event loop 0 .. N-1 (std::thread each, own epoll instance,
//!                        own SO_REUSEPORT accept queue)
//!   ┌────────────────────────────────────────────────────────────┐
//!   │ epoll_wait ──▶ listener readable?  accept until WouldBlock │
//!   │           ──▶ waker readable?      drain, re-check flags   │
//!   │           ──▶ connection event ──▶ per-connection machine: │
//!   │                                                            │
//!   │   ┌──────────────┐ header ┌───────────────┐ frame          │
//!   │   │ reading frame│───────▶│reading payload│──────┐         │
//!   │   │    header    │        │  (FrameAccum) │      ▼         │
//!   │   └──────▲───────┘        └───────────────┘  decode →      │
//!   │          │ pipelining: next frame             handle →     │
//!   │          └──────────────────────────────── append response │
//!   │                                                 │          │
//!   │   ┌─────────────────────────┐  write readiness  ▼          │
//!   │   │ drain out-queue: one    │◀──────── bounded out-queue   │
//!   │   │ writev() per readiness  │   (backpressure: stop        │
//!   │   └─────────────────────────┘    reading while over-full)  │
//!   └────────────────────────────────────────────────────────────┘
//!        │ all loops share one Arc<dyn RequestHandler>
//!        ▼
//!   shared Verifier (per-shard locks, exactly as the blocking pool)
//! ```
//!
//! Where the blocking [`TcpServer`](crate::tcp::TcpServer) dedicates a
//! worker thread to one connection at a time (concurrency capped by
//! the pool size, one slow client stalls a worker), this server
//! multiplexes **thousands of connections per loop thread**: each
//! connection is a small state machine that only runs when the kernel
//! says its socket is ready. Connections support pipelining (many
//! requests in flight back-to-back on one socket; responses come back
//! in order), per-connection buffers are bounded (the 64 KiB
//! [`SCRATCH_RETAIN`](ropuf_proto::SCRATCH_RETAIN) retention rule plus
//! a configurable write-buffer high-water mark that pauses reading —
//! backpressure instead of unbounded queueing), and two timers evict
//! hostile or dead peers: an idle timeout between requests and a
//! stricter mid-frame timeout that defeats slow-loris trickles.
//!
//! # Tail-latency discipline
//!
//! Three mechanisms keep the p999 flat when thousands of connections
//! are held open:
//!
//! * **Per-loop accept queues** — with [`EventedConfig::reuseport`]
//!   (the default on IPv4) every loop binds its own `SO_REUSEPORT`
//!   listener, so the kernel shards incoming connections across loops
//!   and an accept never wakes more than one thread.
//! * **Vectored flush** — responses are queued one segment per frame
//!   (the segmented `OutQueue`) and drained with a single gathered `writev` per
//!   readiness instead of one `write` per frame; a pipelined burst
//!   leaves in one syscall and a partially-accepted burst advances by
//!   byte count with no buffer compaction.
//! * **Loop-affine sharding** — clients that ask
//!   [`Request::LoopInfo`](ropuf_proto::Request::LoopInfo) per
//!   connection can steer a device's traffic to the loop its registry
//!   shard folds onto (`shard % loops`); the `server.affinity`
//!   counters measure how well they steered. Cross-loop requests are
//!   served identically — affinity is an optimization, never a
//!   correctness requirement.
//!
//! Protocol semantics are **identical** to the blocking server: both
//! funnel decoded [`RequestRef`]s through the same shared
//! [`RequestHandler`], malformed frames are answered with a typed
//! [`ErrorCode::MalformedRequest`] before the connection closes, and
//! oversized responses degrade to [`ErrorCode::ResponseTooLarge`]. The
//! equivalence suite replays identical traffic through both backends —
//! and through every loop/reuseport topology — and asserts bit-for-bit
//! identical response bytes.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ropuf_proto::{
    append_frame, ErrorCode, FrameAccum, FrameError, FramePoll, RequestRef, Response,
};

use ropuf_telemetry::{Counter, Sampler, TraceRecord};

use crate::admission::{evented_pressure, Admission, OverloadPolicy, RequestClass};
use crate::handler::RequestHandler;
use crate::sys::epoll::{event, Epoll, Event};
use crate::sys::net;
use crate::telemetry::{elapsed_ns, request_device_hash, LaneStats, ServerTelemetry};

/// Tuning knobs of the evented server. [`EventedConfig::default`] is
/// the production shape; tests shrink the timeouts to milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventedConfig {
    /// Event-loop threads. Each owns an epoll instance; accepted
    /// connections stay on the loop that accepted them. `0` is
    /// promoted to 1.
    pub loops: usize,
    /// Give every loop its own `SO_REUSEPORT` accept queue (IPv4
    /// only): the kernel shards incoming connections across loops and
    /// an accept wakes exactly one thread. When off — or when the
    /// address is IPv6, or the reuseport bind is refused — all loops
    /// fall back to sharing one listener.
    pub reuseport: bool,
    /// Spin briefly on zero-timeout polls before parking in
    /// `epoll_wait`: readiness surfaces without a sleep/wake
    /// transition, shaving scheduler latency off the tail at the price
    /// of burning idle CPU. For latency-critical deployments with
    /// cores to spare.
    pub busy_poll: bool,
    /// A connection with no complete frame for this long — and no
    /// frame in progress — is evicted.
    pub idle_timeout: Duration,
    /// Once a frame's first byte arrives, the whole frame must arrive
    /// within this window or the connection is evicted (slow-loris
    /// defense: trickling one byte per second does not reset it).
    pub frame_timeout: Duration,
    /// Write-buffer high-water mark: while a connection has more than
    /// this many unsent response bytes, the loop stops reading from it
    /// (backpressure) until the peer drains.
    pub max_write_buffer: usize,
    /// How long a graceful [`EventedServer::shutdown`] waits for open
    /// connections to take their answers before force-closing them.
    pub drain_timeout: Duration,
    /// A served request whose decode + handle + flush time meets this
    /// threshold lands in the slow-request trace ring
    /// ([`Request::TraceDump`](ropuf_proto::Request::TraceDump)).
    /// `Duration::ZERO` traces every request.
    pub slow_trace_threshold: Duration,
    /// Capacity of the slow-request trace ring (oldest records are
    /// overwritten).
    pub trace_capacity: usize,
    /// Interval at which the in-server sampler thread cuts a
    /// [`SeriesPoint`](ropuf_telemetry::SeriesPoint) delta into the
    /// time-series ring
    /// ([`Request::TimeSeriesDump`](ropuf_proto::Request::TimeSeriesDump)).
    /// `Duration::ZERO` disables the sampler entirely.
    pub sample_interval: Duration,
    /// Capacity of the time-series ring (oldest points are
    /// overwritten). At the default 1 s interval, 512 points is
    /// ~8.5 minutes of history in ~140 KiB.
    pub series_capacity: usize,
    /// Admission budget. On this backend pressure is a connection's
    /// pending out-buffer bytes plus the loop's remaining ready-event
    /// backlog (see
    /// [`evented_pressure`]) — the
    /// direct measures of a peer that asks faster than it reads and a
    /// loop that wakes to more work than it can finish. Sensible
    /// budgets sit below [`EventedConfig::max_write_buffer`], so cheap
    /// `Overloaded` answers go out *before* backpressure stops reading
    /// entirely. Disabled by default.
    pub overload: OverloadPolicy,
}

impl Default for EventedConfig {
    fn default() -> Self {
        Self {
            loops: 1,
            reuseport: true,
            busy_poll: false,
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(10),
            max_write_buffer: 1024 * 1024,
            drain_timeout: Duration::from_secs(1),
            slow_trace_threshold: Duration::from_millis(1),
            trace_capacity: 256,
            sample_interval: Duration::from_secs(1),
            series_capacity: 512,
            overload: OverloadPolicy::disabled(),
        }
    }
}

#[derive(Debug)]
struct Shared {
    /// Graceful stop: stop accepting, answer what's buffered, drain.
    stop: AtomicBool,
    /// Force stop: close everything now.
    force: AtomicBool,
    /// Aggregate serving counters, phase histograms, and the
    /// slow-request ring, shared by all loops.
    telemetry: Arc<ServerTelemetry>,
    /// Admission gate (policy + shed tallies), shared by all loops.
    admission: Admission,
    /// Write halves of each loop's waker pipe.
    wakers: Mutex<Vec<UnixStream>>,
}

/// A running event-driven TCP server.
///
/// Like the blocking server, dropping the handle without calling
/// [`EventedServer::shutdown`] / [`EventedServer::force_shutdown`]
/// leaks the loop threads until process exit.
#[derive(Debug)]
pub struct EventedServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// The time-series sampler thread; `None` when
    /// [`EventedConfig::sample_interval`] is zero. Stopped (joined) on
    /// shutdown.
    sampler: Option<Sampler>,
}

/// Binds one listener per loop. With `reuseport` on and an IPv4
/// address, every loop gets its **own** kernel accept queue on the
/// same address; otherwise (reuseport off, IPv6, or the reuseport
/// bind refused) one listener is bound and cloned per loop.
fn bind_listeners(
    addr: &impl ToSocketAddrs,
    loops: usize,
    reuseport: bool,
) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
    if reuseport {
        let v4 = addr.to_socket_addrs()?.find_map(|a| match a {
            SocketAddr::V4(v4) => Some(v4),
            SocketAddr::V6(_) => None,
        });
        if let Some(v4) = v4 {
            if let Ok(first) = net::bind_reuseport(v4) {
                // Port 0 resolves on the first bind; the siblings join
                // the same reuseport group on the resolved port.
                let local = first.local_addr()?;
                if let SocketAddr::V4(resolved) = local {
                    let mut listeners = vec![first];
                    for _ in 1..loops {
                        listeners.push(net::bind_reuseport(resolved)?);
                    }
                    return Ok((listeners, local));
                }
            }
            // Refused (exotic kernel / container policy): take the
            // shared-listener path below — correctness is identical,
            // only accept scalability differs.
        }
    }
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let mut listeners = Vec::with_capacity(loops);
    for _ in 1..loops {
        listeners.push(listener.try_clone()?);
    }
    listeners.push(listener);
    Ok((listeners, local))
}

impl EventedServer {
    /// Binds `addr` (port 0 = ephemeral) and starts `config.loops`
    /// event-loop threads — each owning its own `SO_REUSEPORT` accept
    /// queue when [`EventedConfig::reuseport`] applies, sharing one
    /// listener otherwise.
    ///
    /// # Errors
    ///
    /// Propagates bind / epoll-creation / waker-creation failures.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn RequestHandler>,
        config: EventedConfig,
    ) -> io::Result<Self> {
        let loops = config.loops.max(1);
        let (listeners, local_addr) = bind_listeners(&addr, loops, config.reuseport)?;
        let telemetry = ServerTelemetry::new(
            "evented",
            config.slow_trace_threshold,
            config.trace_capacity,
            config.series_capacity,
            config.sample_interval,
        );
        let admission = Admission::new(config.overload, &telemetry);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            force: AtomicBool::new(false),
            telemetry,
            admission,
            wakers: Mutex::new(Vec::new()),
        });
        let sampler = shared.telemetry.start_sampler();

        // A failure partway through (a pair or spawn error) must not
        // leak the loops already running, so fallible setup is
        // collected and unwound explicitly.
        let mut threads = Vec::new();
        for (loop_id, listener) in listeners.into_iter().enumerate() {
            let setup = (|| -> io::Result<(UnixStream, UnixStream)> {
                let (wake_tx, wake_rx) = UnixStream::pair()?;
                wake_rx.set_nonblocking(true)?;
                wake_tx.set_nonblocking(true)?;
                Ok((wake_tx, wake_rx))
            })();
            let (wake_tx, wake_rx) = match setup {
                Ok(parts) => parts,
                Err(e) => {
                    Self::stop_loops(&shared, &mut threads, true);
                    return Err(e);
                }
            };
            shared
                .wakers
                .lock()
                .expect("waker list poisoned")
                .push(wake_tx);
            let loop_shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            let spawned = std::thread::Builder::new()
                .name(format!("evented-loop-{loop_id}"))
                .spawn(move || {
                    let mut event_loop =
                        match EventLoop::new(listener, wake_rx, config, loop_id as u32) {
                            Ok(event_loop) => event_loop,
                            Err(e) => panic!("event loop {loop_id} failed to initialize: {e}"),
                        };
                    event_loop.run(handler.as_ref(), &loop_shared);
                });
            match spawned {
                Ok(thread) => threads.push(thread),
                Err(e) => {
                    Self::stop_loops(&shared, &mut threads, true);
                    return Err(e);
                }
            }
        }

        Ok(Self {
            local_addr,
            shared,
            threads,
            sampler,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently established across all loops.
    pub fn open_connections(&self) -> usize {
        usize::try_from(self.shared.telemetry.open_connections()).unwrap_or(usize::MAX)
    }

    /// Connections accepted since the server started.
    pub fn accepted_total(&self) -> u64 {
        self.shared.telemetry.accepted_total()
    }

    /// Requests served (one per completed frame) since the server started.
    pub fn requests_served(&self) -> u64 {
        self.shared.telemetry.requests_served()
    }

    /// Connections evicted by the idle / mid-frame (slow-loris) timers.
    pub fn evictions(&self) -> (u64, u64) {
        self.shared.telemetry.evictions()
    }

    /// This server's telemetry: the same registry and trace ring a
    /// wire scrape reads, for in-process inspection.
    pub fn telemetry(&self) -> &Arc<ServerTelemetry> {
        &self.shared.telemetry
    }

    /// This server's admission gate (policy + shed tallies).
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// Flags the loops to stop (skipping the drain window when
    /// `force`), wakes them, and joins `threads`. Shared by both
    /// shutdown flavors and the spawn-failure unwind.
    fn stop_loops(shared: &Shared, threads: &mut Vec<JoinHandle<()>>, force: bool) {
        if force {
            shared.force.store(true, Ordering::SeqCst);
        }
        shared.stop.store(true, Ordering::SeqCst);
        for waker in shared
            .wakers
            .lock()
            .expect("waker list poisoned")
            .iter_mut()
        {
            let _ = waker.write(&[1]);
        }
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Graceful shutdown: stops accepting, flushes every buffered
    /// response, closes each connection once its write buffer drains,
    /// force-closes whatever remains after
    /// [`EventedConfig::drain_timeout`], and joins the loop threads.
    pub fn shutdown(mut self) {
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        Self::stop_loops(&self.shared, &mut self.threads, false);
    }

    /// Immediate shutdown: every open connection is closed now,
    /// mid-exchange peers see EOF/reset.
    pub fn force_shutdown(mut self) {
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        Self::stop_loops(&self.shared, &mut self.threads, true);
    }
}

/// Why a connection is being torn down (drives eviction counters).
enum Teardown {
    /// Normal close (EOF, error, drained-after-closing).
    Normal,
    /// Idle timer fired.
    Idle,
    /// Mid-frame (slow-loris) timer fired.
    SlowFrame,
}

/// A response queued in a connection's out-queue whose flush-wait
/// clock is still running: the trace record is finalized (and its
/// flush-wait phase recorded) only once the socket has accepted every
/// byte up to `end`.
#[derive(Debug)]
struct PendingFlush {
    /// Absolute out-stream offset (total bytes ever queued on this
    /// connection) at which this response ends.
    end: u64,
    /// When the response landed in the out-queue — the flush-wait
    /// clock's start.
    queued_at: Instant,
    /// The partially-filled record from
    /// [`ServerTelemetry::observe_queued`].
    record: TraceRecord,
}

/// Recycled-segment pool cap per connection: enough to serve a
/// pipelined burst allocation-free, small enough that thousands of
/// idle connections hold no meaningful memory.
const OUT_POOL: usize = 8;

/// A connection's outbound bytes: one segment per encoded response
/// frame, drained oldest-first with gathered writes.
///
/// Keeping frames in separate segments (instead of one flat `Vec`)
/// buys two things on the flush path: a pipelined burst of responses
/// leaves in a **single `writev`** instead of one `write` per frame,
/// and a partially-accepted burst advances by byte count — the old
/// flat-buffer `drain(..sent)` compaction memmove is gone entirely.
/// Fully-drained segments recycle through a bounded pool under the
/// same [`SCRATCH_RETAIN`](ropuf_proto::SCRATCH_RETAIN) retention rule
/// as every other reused buffer.
#[derive(Debug, Default)]
struct OutQueue {
    /// Encoded frames not yet fully accepted by the socket, oldest
    /// first.
    segs: VecDeque<Vec<u8>>,
    /// Bytes of the front segment already accepted.
    head: usize,
    /// Total unsent bytes across all segments.
    pending: usize,
    /// Drained segments awaiting reuse.
    pool: Vec<Vec<u8>>,
}

impl OutQueue {
    fn pending(&self) -> usize {
        self.pending
    }

    fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Frames `payload` (`[len u32 le][payload]`) into its own
    /// segment. Returns the framed byte count, or the
    /// [`FrameError::Oversize`] verdict with the queue unchanged.
    fn push_frame(&mut self, payload: &[u8]) -> Result<usize, FrameError> {
        let mut seg = self.pool.pop().unwrap_or_default();
        seg.clear();
        match append_frame(&mut seg, payload) {
            Ok(()) => {
                let n = seg.len();
                self.pending += n;
                self.segs.push_back(seg);
                Ok(n)
            }
            Err(e) => {
                self.recycle(seg);
                Err(e)
            }
        }
    }

    /// Fills `bufs` with the unsent byte ranges, oldest first (the
    /// front segment minus its accepted prefix, then whole segments).
    /// Returns how many slices were produced.
    fn fill_slices<'a>(&'a self, bufs: &mut [&'a [u8]]) -> usize {
        let mut n = 0;
        for (i, seg) in self.segs.iter().enumerate() {
            if n == bufs.len() {
                break;
            }
            let slice = if i == 0 { &seg[self.head..] } else { &seg[..] };
            if !slice.is_empty() {
                bufs[n] = slice;
                n += 1;
            }
        }
        n
    }

    /// Marks `n` bytes as accepted by the socket: whole segments are
    /// popped and recycled, a mid-segment landing just moves the head.
    fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.pending, "advance past pending bytes");
        self.pending -= n;
        while n > 0 {
            // `n <= pending` means the queue can never run dry here;
            // the sink reported bytes the queue handed it.
            let Some(seg) = self.segs.pop_front() else {
                break;
            };
            let left = seg.len() - self.head;
            if n >= left {
                n -= left;
                self.head = 0;
                self.recycle(seg);
            } else {
                self.head += n;
                self.segs.push_front(seg);
                n = 0;
            }
        }
    }

    fn recycle(&mut self, seg: Vec<u8>) {
        // Retention rule: one giant snapshot frame must not pin
        // MAX_FRAME of capacity in the pool forever.
        if self.pool.len() < OUT_POOL && seg.capacity() <= ropuf_proto::SCRATCH_RETAIN {
            self.pool.push(seg);
        }
    }

    /// Drains through `write_bufs` — one gathered write per call —
    /// until the queue empties or the sink reports `WouldBlock`.
    /// Returns the total bytes accepted.
    ///
    /// # Errors
    ///
    /// The sink's fatal error; a sink that accepts zero bytes of a
    /// non-empty queue surfaces as [`io::ErrorKind::WriteZero`] (the
    /// transport is gone).
    fn drain_with(
        &mut self,
        mut write_bufs: impl FnMut(&[&[u8]]) -> io::Result<usize>,
    ) -> io::Result<usize> {
        let mut total = 0;
        while !self.is_empty() {
            let written = {
                let mut bufs: [&[u8]; net::MAX_IOVECS] = [&[]; net::MAX_IOVECS];
                let n = self.fill_slices(&mut bufs);
                match write_bufs(&bufs[..n]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "sink accepted no bytes",
                        ))
                    }
                    Ok(w) => w,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            self.advance(written);
            total += written;
        }
        Ok(total)
    }
}

/// One connection's full state: socket, incremental frame reader,
/// bounded response queue, and the timer bookkeeping.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    accum: FrameAccum,
    /// Encoded-but-unsent response frames.
    out: OutQueue,
    /// Interest bits currently registered with epoll.
    interest: u32,
    /// Last observable progress: connection accepted, a complete
    /// frame served, or response bytes accepted by the socket — the
    /// idle timer's anchor.
    last_activity: Instant,
    /// Deadline for the frame currently in flight, set when its first
    /// byte arrives. Deliberately **not** reset by later bytes: a
    /// trickle must still finish the frame inside the window.
    frame_deadline: Option<Instant>,
    /// No more requests will be read; close once `out` drains.
    closing: bool,
    /// When the connection was accepted — the accept-to-first-frame
    /// clock's start.
    accepted_at: Instant,
    /// Whether the first complete frame has been observed (the
    /// accept-to-first-frame histogram records exactly once).
    saw_first_frame: bool,
    /// Total bytes ever queued for this connection (monotonic).
    queued_total: u64,
    /// Total bytes the socket has ever accepted (monotonic).
    sent_total: u64,
    /// Responses queued but not yet fully accepted by the socket,
    /// oldest first (responses drain in order).
    pending_flush: VecDeque<PendingFlush>,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.pending()
    }

    /// Finalizes every queued trace record whose response bytes the
    /// socket has now fully accepted, crediting the elapsed out-queue
    /// residency as the flush-wait phase.
    fn settle_flushed(&mut self, telemetry: &ServerTelemetry) {
        while self
            .pending_flush
            .front()
            .is_some_and(|p| p.end <= self.sent_total)
        {
            let entry = self.pending_flush.pop_front().expect("front checked");
            telemetry.observe_drained(entry.record, elapsed_ns(entry.queued_at, Instant::now()));
        }
    }
}

/// Slab token space: listener and waker own fixed tokens, connections
/// map to `slab index + CONN_BASE`.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const CONN_BASE: u64 = 2;

/// Ready-list bounds: start small (most wake-ups carry a handful of
/// events) and double whenever the kernel fills the list, so a loop
/// holding thousands of connections reaches [`EVENTS_MAX`]-event
/// drains without every idle server paying for the allocation.
const EVENTS_MIN: usize = 256;
const EVENTS_MAX: usize = 4096;

/// How long [`EventedConfig::busy_poll`] spins on zero-timeout polls
/// before parking in a blocking wait.
const BUSY_POLL_SPIN: Duration = Duration::from_micros(200);

struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    waker: UnixStream,
    config: EventedConfig,
    /// Which loop thread this is — the `worker` field of the trace
    /// records this loop emits, and the answer to `LoopInfo`.
    loop_id: u32,
    /// Total loops in this server (≥ 1) — `LoopInfo`'s denominator and
    /// the affinity fold's modulus.
    loops_total: u32,
    conns: Vec<Option<Conn>>,
    free: VecDeque<usize>,
    /// Response-encode scratch shared by every connection on this loop
    /// (handling is synchronous, so one buffer suffices).
    encode_scratch: Vec<u8>,
    /// Set once the stop flag has been observed and the listener
    /// deregistered.
    draining: bool,
    drain_deadline: Option<Instant>,
    /// This loop's saturation counters and high-water gauge, resolved
    /// once at `run` entry (registry lookups are too slow per-frame).
    lane: Option<LaneStats>,
    /// Loop-affinity counters `(local, remote)`, resolved once at
    /// `run` entry.
    affinity: Option<(Counter, Counter)>,
    /// Registry shard count behind the handler (0 = unsharded) — the
    /// affinity accounting's modulus, resolved once at `run` entry.
    shard_count: usize,
    /// Ready events still waiting behind the one being serviced in the
    /// current batch — folded into admission pressure so a loop that
    /// wakes to a wall of work sheds from the front of it, not after
    /// digging through.
    ready_backlog: u64,
    /// Largest pending out-queue any connection on this loop has
    /// reached; the gauge is only touched when this grows.
    out_highwater: usize,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        waker: UnixStream,
        config: EventedConfig,
        loop_id: u32,
    ) -> io::Result<Self> {
        let epoll = Epoll::new()?;
        epoll.add(&listener, event::IN, TOKEN_LISTENER)?;
        epoll.add(&waker, event::IN, TOKEN_WAKER)?;
        Ok(Self {
            epoll,
            listener,
            waker,
            config,
            loop_id,
            loops_total: config.loops.max(1) as u32,
            conns: Vec::new(),
            free: VecDeque::new(),
            encode_scratch: Vec::new(),
            draining: false,
            drain_deadline: None,
            lane: None,
            affinity: None,
            shard_count: 0,
            ready_backlog: 0,
            out_highwater: 0,
        })
    }

    /// Wait-timeout granularity: fine enough to honor the configured
    /// timers (tests use tens of milliseconds), coarse enough not to
    /// spin.
    fn tick_ms(&self) -> i32 {
        let finest = self
            .config
            .idle_timeout
            .min(self.config.frame_timeout)
            .min(self.config.drain_timeout);
        ((finest.as_millis() / 4).clamp(1, 50)) as i32
    }

    /// One epoll wait honoring the busy-poll mode: spin on
    /// zero-timeout polls for [`BUSY_POLL_SPIN`] (readiness surfaces
    /// without a sleep/wake transition), then park normally. Stop
    /// requests still land promptly in the spin window — the waker
    /// write makes the loop's epoll readable.
    fn wait_ready(&self, events: &mut [Event], tick: i32) -> io::Result<usize> {
        if self.config.busy_poll {
            let deadline = Instant::now() + BUSY_POLL_SPIN;
            loop {
                let n = self.epoll.wait(events, 0)?;
                if n > 0 {
                    return Ok(n);
                }
                if Instant::now() >= deadline {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        self.epoll.wait(events, tick)
    }

    fn run(&mut self, handler: &dyn RequestHandler, shared: &Shared) {
        self.lane = Some(shared.telemetry.lane(self.loop_id));
        self.affinity = Some(shared.telemetry.affinity_counters());
        self.shard_count = handler.shard_count();
        let mut events = vec![Event::default(); EVENTS_MIN];
        let tick = self.tick_ms();
        loop {
            let wait_start = Instant::now();
            let n = match self.wait_ready(&mut events, tick) {
                Ok(n) => n,
                Err(_) => break, // epoll itself failed: abandon ship
            };
            let batch_start = Instant::now();
            if n > 0 {
                shared.telemetry.ready_batch(n as u64);
            }
            for (i, ev) in events[..n].iter().enumerate() {
                match ev.token() {
                    TOKEN_LISTENER => self.accept_ready(shared),
                    TOKEN_WAKER => {
                        let mut buf = [0u8; 64];
                        while matches!(self.waker.read(&mut buf), Ok(n) if n > 0) {}
                    }
                    token => {
                        let index = (token - CONN_BASE) as usize;
                        // Events still queued behind this one feed the
                        // admission pressure for every frame serviced
                        // from it.
                        self.ready_backlog = (n - i - 1) as u64;
                        // Ready-wait is stamped when *this
                        // connection's* drain actually starts — not
                        // once per batch. The time earlier events in
                        // the batch held the loop is already on the
                        // books as their own decode/handle/flush
                        // phases; stamping the whole batch at the
                        // kernel's return double-billed it onto every
                        // later peer's ready-wait.
                        self.service(index, ev.writable(), Instant::now(), handler, shared);
                    }
                }
            }
            self.ready_backlog = 0;
            // Adaptive batch drain: a full ready list means the kernel
            // had more to report — grow the list so a loop holding
            // thousands of hot connections services them in one sweep
            // instead of re-entering epoll_wait per slice.
            if n == events.len() && events.len() < EVENTS_MAX {
                let doubled = (events.len() * 2).min(EVENTS_MAX);
                events.resize(doubled, Event::default());
            }
            self.sweep_timers(shared);
            if shared.force.load(Ordering::SeqCst) {
                self.close_all(shared);
                break;
            }
            if shared.stop.load(Ordering::SeqCst) {
                if !self.draining {
                    self.draining = true;
                    let _ = self.epoll.delete(&self.listener);
                    self.drain_deadline = Some(Instant::now() + self.config.drain_timeout);
                    // Everything already answered should flush; no new
                    // requests are read once `closing` is set.
                    for index in 0..self.conns.len() {
                        if let Some(conn) = self.conns[index].as_mut() {
                            conn.closing = true;
                        }
                        self.service(index, true, Instant::now(), handler, shared);
                    }
                }
                let open = self.conns.iter().flatten().count();
                let expired = self
                    .drain_deadline
                    .is_some_and(|deadline| Instant::now() >= deadline);
                if open == 0 || expired {
                    self.close_all(shared);
                    break;
                }
            }
            // Saturation accounting: wall covers the whole iteration
            // (park and busy-poll spin included), busy only the part
            // after the kernel returned. busy/wall is the loop's
            // utilization.
            if let Some(lane) = &self.lane {
                let end = Instant::now();
                lane.busy_ns.add(elapsed_ns(batch_start, end));
                lane.wall_ns.add(elapsed_ns(wait_start, end));
            }
        }
    }

    fn accept_ready(&mut self, shared: &Shared) {
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok(); // latency over batching
                    let index = self.free.pop_front().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    let token = index as u64 + CONN_BASE;
                    let now = Instant::now();
                    let conn = Conn {
                        stream,
                        accum: FrameAccum::new(),
                        out: OutQueue::default(),
                        interest: event::IN | event::RDHUP,
                        last_activity: now,
                        frame_deadline: None,
                        closing: false,
                        accepted_at: now,
                        saw_first_frame: false,
                        queued_total: 0,
                        sent_total: 0,
                        pending_flush: VecDeque::new(),
                    };
                    if self.epoll.add(&conn.stream, conn.interest, token).is_err() {
                        self.free.push_back(index);
                        continue; // conn drops, socket closes
                    }
                    self.conns[index] = Some(conn);
                    shared.telemetry.connection_accepted();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return, // transient accept failure; retry on next event
            }
        }
    }

    /// Runs one connection's state machine as far as readiness allows:
    /// flush pending output, read/handle frames (pipelined) until the
    /// socket runs dry or backpressure pauses it, flush again, then
    /// re-register interest.
    ///
    /// `drain_start` is when this connection's turn actually began —
    /// the ready-wait anchor for every frame serviced in this pass
    /// (pipelined frames behind the first accumulate the time earlier
    /// frames held the loop: genuine queueing, attributed).
    fn service(
        &mut self,
        index: usize,
        writable: bool,
        drain_start: Instant,
        handler: &dyn RequestHandler,
        shared: &Shared,
    ) {
        let Some(conn) = self.conns.get_mut(index).and_then(Option::as_mut) else {
            return; // already closed this iteration
        };

        if writable {
            if !flush_out(conn) {
                self.close(index, Teardown::Normal, shared);
                return;
            }
            conn.settle_flushed(&shared.telemetry);
        }

        let teardown = loop {
            if conn.closing {
                break None; // no more reads; wait for the drain
            }
            if conn.pending_out() > self.config.max_write_buffer {
                break None; // backpressure: resume when the peer drains
            }
            match conn.accum.poll(&mut conn.stream) {
                Ok(FramePoll::Frame) => {
                    let t0 = Instant::now();
                    conn.last_activity = t0;
                    conn.frame_deadline = None;
                    if !conn.saw_first_frame {
                        conn.saw_first_frame = true;
                        shared
                            .telemetry
                            .first_frame(elapsed_ns(conn.accepted_at, t0));
                    }
                    // Counted before decode: malformed frames and the
                    // metrics scrape itself are part of the tally, so
                    // `server.requests` equals the client-side op
                    // count exactly.
                    shared.telemetry.request_started();
                    let msg_type = conn.accum.payload().first().copied().unwrap_or(0);
                    // Admission off the type byte alone, metered by
                    // this connection's unsent response bytes plus the
                    // ready backlog still queued behind it on the
                    // loop: a shed request costs a small error frame,
                    // never a decode or a verifier call, and the
                    // connection lives on.
                    if let Some(shed) = shared.admission.check(
                        RequestClass::of(msg_type),
                        evented_pressure(conn.pending_out() as u64, self.ready_backlog),
                    ) {
                        let t2 = Instant::now();
                        let queued = queue_response(conn, &shed, &mut self.encode_scratch);
                        let t3 = Instant::now();
                        let record = shared.telemetry.observe_queued(
                            msg_type,
                            0,
                            elapsed_ns(drain_start, t0),
                            0,
                            elapsed_ns(t0, t2),
                            elapsed_ns(t2, t3),
                            self.loop_id,
                        );
                        conn.pending_flush.push_back(PendingFlush {
                            end: conn.queued_total,
                            queued_at: t3,
                            record,
                        });
                        conn.accum.finish_frame();
                        if !queued {
                            break Some(Teardown::Normal);
                        }
                        continue;
                    }
                    let decoded = RequestRef::decode(conn.accum.payload());
                    let t1 = Instant::now();
                    let keep_going = match decoded {
                        Ok(request) => {
                            let device_hash = request_device_hash(&request);
                            // Loop-affinity accounting: the device
                            // hash is the same splitmix64 the registry
                            // shards by, so `hash % shards` *is* the
                            // device's shard, and a shard is local
                            // when it folds onto this loop. Cross-loop
                            // requests are served identically — the
                            // counters measure how well topology-aware
                            // clients steered, nothing more.
                            if device_hash != 0 && self.shard_count != 0 {
                                if let Some((local, remote)) = &self.affinity {
                                    let shard = device_hash % self.shard_count as u64;
                                    if shard % u64::from(self.loops_total)
                                        == u64::from(self.loop_id)
                                    {
                                        local.add(1);
                                    } else {
                                        remote.add(1);
                                    }
                                }
                            }
                            let response = match request {
                                // The handler only knows the verifier's
                                // metrics; the serving layer folds its
                                // own namespace into the blob.
                                RequestRef::MetricsSnapshot => shared
                                    .telemetry
                                    .merged_metrics_response(handler.handle_ref(request)),
                                // Traces and the time series live
                                // here, not in the handler.
                                RequestRef::TraceDump => shared.telemetry.trace_response(),
                                RequestRef::TimeSeriesDump => {
                                    shared.telemetry.timeseries_response()
                                }
                                // Topology discovery is answered by
                                // the loop itself: the handler cannot
                                // know which accept queue a socket
                                // landed on.
                                RequestRef::LoopInfo => Response::LoopInfoOk {
                                    loop_id: self.loop_id,
                                    loops: self.loops_total,
                                },
                                request => handler.handle_ref(request),
                            };
                            let t2 = Instant::now();
                            let queued = queue_response(conn, &response, &mut self.encode_scratch);
                            let t3 = Instant::now();
                            let record = shared.telemetry.observe_queued(
                                msg_type,
                                device_hash,
                                elapsed_ns(drain_start, t0),
                                elapsed_ns(t0, t1),
                                elapsed_ns(t1, t2),
                                elapsed_ns(t2, t3),
                                self.loop_id,
                            );
                            conn.pending_flush.push_back(PendingFlush {
                                end: conn.queued_total,
                                queued_at: t3,
                                record,
                            });
                            queued
                        }
                        Err(e) => {
                            // Same contract as the blocking server: a
                            // typed answer, then the connection ends.
                            let t2 = Instant::now();
                            let answered = queue_response(
                                conn,
                                &Response::Error {
                                    code: ErrorCode::MalformedRequest,
                                    detail: FrameError::Decode(e).to_string(),
                                },
                                &mut self.encode_scratch,
                            );
                            let t3 = Instant::now();
                            let record = shared.telemetry.observe_queued(
                                msg_type,
                                0,
                                elapsed_ns(drain_start, t0),
                                elapsed_ns(t0, t1),
                                elapsed_ns(t1, t2),
                                elapsed_ns(t2, t3),
                                self.loop_id,
                            );
                            conn.pending_flush.push_back(PendingFlush {
                                end: conn.queued_total,
                                queued_at: t3,
                                record,
                            });
                            conn.closing = true;
                            conn.frame_deadline = None;
                            answered
                        }
                    };
                    conn.accum.finish_frame();
                    if !keep_going {
                        break Some(Teardown::Normal);
                    }
                    // Pipelining: immediately try the next frame.
                }
                Ok(FramePoll::Pending) => {
                    if conn.accum.mid_frame() && conn.frame_deadline.is_none() {
                        conn.frame_deadline = Some(Instant::now() + self.config.frame_timeout);
                    }
                    break None;
                }
                Ok(FramePoll::Eof) => {
                    // Clean EOF: answer nothing further, drain and close.
                    conn.closing = true;
                    conn.frame_deadline = None;
                    break None;
                }
                Err(e) if e.is_peer_fault() => {
                    // Oversized frame header: typed answer, then close.
                    queue_response(
                        conn,
                        &Response::Error {
                            code: ErrorCode::MalformedRequest,
                            detail: e.to_string(),
                        },
                        &mut self.encode_scratch,
                    );
                    conn.closing = true;
                    // No more frames will be read; the only remaining
                    // timer that should apply is the idle one.
                    conn.frame_deadline = None;
                    break None;
                }
                Err(_) => break Some(Teardown::Normal), // dead transport
            }
        };
        if let Some(reason) = teardown {
            self.close(index, reason, shared);
            return;
        }

        // Out-queue peak is measured *before* the flush below: this
        // is the residency the responses just queued actually saw.
        let pending = conn.pending_out();
        if pending > self.out_highwater {
            self.out_highwater = pending;
            if let Some(lane) = &self.lane {
                lane.out_highwater.set(pending as u64);
            }
        }

        if !flush_out(conn) {
            self.close(index, Teardown::Normal, shared);
            return;
        }
        conn.settle_flushed(&shared.telemetry);
        if conn.closing && conn.pending_out() == 0 {
            self.close(index, Teardown::Normal, shared);
            return;
        }

        // Re-register interest: read (and watch for peer half-close)
        // unless paused, write only while output is pending. RDHUP is
        // dropped together with IN: it is level-triggered, so keeping
        // it on a draining connection whose peer already half-closed
        // would wake every epoll_wait instantly — a busy spin. A dead
        // peer still surfaces through ERR/HUP on the write side.
        let paused = conn.closing || conn.pending_out() > self.config.max_write_buffer;
        let mut interest = 0;
        if !paused {
            interest |= event::IN | event::RDHUP;
        }
        if conn.pending_out() > 0 {
            interest |= event::OUT;
        }
        if interest != conn.interest {
            conn.interest = interest;
            let token = index as u64 + CONN_BASE;
            if self.epoll.modify(&conn.stream, interest, token).is_err() {
                self.close(index, Teardown::Normal, shared);
            }
        }
    }

    fn sweep_timers(&mut self, shared: &Shared) {
        let now = Instant::now();
        for index in 0..self.conns.len() {
            let Some(conn) = self.conns[index].as_ref() else {
                continue;
            };
            // The mid-frame timer only judges a peer the server is
            // actually reading from: a backpressure-paused connection
            // is stalled by the server's own high-water mark, and a
            // closing one is past reading entirely.
            let paused = conn.closing || conn.pending_out() > self.config.max_write_buffer;
            if let Some(deadline) = conn.frame_deadline {
                if !paused && now >= deadline {
                    self.close(index, Teardown::SlowFrame, shared);
                    continue;
                }
            }
            // Idle is the unconditional backstop: no complete frame
            // and no accepted write bytes for the whole window closes
            // the connection whatever state it is in — a peer that
            // never reads its answers, a closing connection whose peer
            // refuses to drain the final answer, a paused-mid-frame
            // stall. The (stricter) mid-frame timer above fires first
            // on active connections; sane configs keep
            // `idle_timeout > frame_timeout`.
            if now.duration_since(conn.last_activity) >= self.config.idle_timeout {
                self.close(index, Teardown::Idle, shared);
            }
        }
    }

    fn close(&mut self, index: usize, reason: Teardown, shared: &Shared) {
        if let Some(mut conn) = self.conns[index].take() {
            // A connection killed mid-flush still owes its lifecycle
            // accounting: settle whatever the socket did accept, then
            // finalize the responses that never fully drained — their
            // flush-wait ends here, at teardown, so the phase
            // histograms and the total never under-count a request the
            // server answered but the wire lost. Without this, every
            // force-shutdown or eviction leaked its queued records.
            conn.settle_flushed(&shared.telemetry);
            let now = Instant::now();
            for entry in conn.pending_flush.drain(..) {
                shared
                    .telemetry
                    .observe_drained(entry.record, elapsed_ns(entry.queued_at, now));
            }
            // Counters next: a peer that observes the EOF below must
            // already see its eviction accounted for.
            shared.telemetry.connection_closed(
                matches!(reason, Teardown::Idle),
                matches!(reason, Teardown::SlowFrame),
            );
            let _ = self.epoll.delete(&conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.free.push_back(index);
        }
    }

    fn close_all(&mut self, shared: &Shared) {
        for index in 0..self.conns.len() {
            self.close(index, Teardown::Normal, shared);
        }
    }
}

/// Encodes `response` and appends it to the connection's out-queue
/// (one segment per frame), advancing `queued_total` by the framed
/// byte count. An oversize response degrades to the same typed
/// [`ErrorCode::ResponseTooLarge`] answer the blocking server gives.
/// Returns `false` only when even the fallback cannot be queued.
fn queue_response(conn: &mut Conn, response: &Response, scratch: &mut Vec<u8>) -> bool {
    response.encode_into(scratch);
    let queued = match conn.out.push_frame(scratch) {
        Ok(n) => {
            conn.queued_total += n as u64;
            true
        }
        Err(FrameError::Oversize(n)) => {
            let fallback = Response::Error {
                code: ErrorCode::ResponseTooLarge,
                detail: format!(
                    "response needs {n} bytes, frame cap is {}",
                    ropuf_proto::MAX_FRAME
                ),
            };
            fallback.encode_into(scratch);
            match conn.out.push_frame(scratch) {
                Ok(n) => {
                    conn.queued_total += n as u64;
                    true
                }
                Err(_) => false,
            }
        }
        Err(_) => false,
    };
    // One giant snapshot must not pin MAX_FRAME of encode capacity on
    // the loop thread forever — same retention rule as every other
    // reused buffer.
    ropuf_proto::frame::bound_scratch(scratch);
    queued
}

/// Drains as much pending output as the socket accepts — one gathered
/// `writev` per attempt instead of one `write` per frame, so a
/// pipelined burst of responses leaves in a single syscall. Returns
/// `false` when the transport died.
fn flush_out(conn: &mut Conn) -> bool {
    if conn.out.is_empty() {
        return true;
    }
    let fd = conn.stream.as_raw_fd();
    match conn.out.drain_with(|bufs| net::writev(fd, bufs)) {
        Ok(0) => true,
        Ok(written) => {
            conn.sent_total += written as u64;
            conn.last_activity = Instant::now();
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::VerifierHandler;
    use crate::tcp::TcpTransport;
    use crate::transport::Client;
    use ropuf_proto::{FaultPlan, FaultyStream, Request, RATE_ONE};
    use ropuf_verifier::{DetectorConfig, Verifier};

    fn spawn_default() -> EventedServer {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        EventedServer::spawn("127.0.0.1:0", handler, EventedConfig::default()).expect("bind")
    }

    #[test]
    fn hello_roundtrips_over_the_evented_server() {
        let server = spawn_default();
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        let name = client.hello("evented-unit").unwrap();
        assert!(name.starts_with("ropuf-server/"), "{name}");
        assert_eq!(server.accepted_total(), 1);
        assert_eq!(server.requests_served(), 1);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_answers_buffered_requests() {
        let server = spawn_default();
        let addr = server.local_addr();
        let mut client = Client::new(TcpTransport::connect(addr).unwrap());
        client.hello("draining").unwrap();
        server.shutdown();
        // The connection is closed afterwards; a new exchange fails.
        assert!(client.hello("after-shutdown").is_err());
    }

    #[test]
    fn force_shutdown_closes_connections() {
        let server = spawn_default();
        let addr = server.local_addr();
        let mut client = Client::new(TcpTransport::connect(addr).unwrap());
        client.hello("doomed").unwrap();
        assert_eq!(server.open_connections(), 1);
        server.force_shutdown();
        assert!(client.hello("again").is_err());
    }

    #[test]
    fn wire_scrape_merges_server_and_verifier_metrics() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                slow_trace_threshold: Duration::ZERO,
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        client.hello("scraper").unwrap();
        let snap = client.metrics().unwrap();
        // The scrape's own request is already in the tally: hello + it.
        assert_eq!(snap.counter_total("server.requests"), 2);
        // Verifier namespace rode along in the same blob.
        assert!(snap.metrics.iter().any(|m| m.name.starts_with("verifier.")));
        // Both requests landed phase samples under their own msg label.
        assert!(snap.histogram_samples("server.request.phase_ns") >= 2);
        // Threshold zero: both prior requests are in the ring (the
        // dump request itself is recorded only after it is answered).
        let trace = client.trace_dump().unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.records[0].msg_type, 0x01); // hello
        assert_eq!(trace.records[1].msg_type, 0x08); // metrics scrape
                                                     // Every record's total is exactly the sum of its five phases:
                                                     // nothing a client waited on is left unattributed.
        for record in &trace.records {
            assert_eq!(
                record.total_ns,
                record.ready_ns
                    + record.decode_ns
                    + record.handle_ns
                    + record.flush_ns
                    + record.flush_wait_ns,
                "{record:?}"
            );
        }
        // The saturation instruments registered under this loop's lane.
        assert!(snap
            .find("server.loop.ready_batch", &[("backend", "evented")])
            .is_some());
        assert!(snap
            .find(
                "server.worker.busy_ns",
                &[("backend", "evented"), ("worker", "0")]
            )
            .is_some());
        assert!(snap
            .find("server.conn.first_frame_ns", &[("backend", "evented")])
            .is_some());
        server.shutdown();
    }

    #[test]
    fn wire_timeseries_returns_sampled_history() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                sample_interval: Duration::from_millis(5),
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        let deadline = Instant::now() + Duration::from_secs(10);
        let snap = loop {
            client.hello("series").unwrap();
            let snap = client.timeseries().unwrap();
            if snap.points.iter().any(|p| p.requests > 0) || Instant::now() >= deadline {
                break snap;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        assert_eq!(snap.interval_ns, 5_000_000);
        assert!(
            snap.points.iter().any(|p| p.requests > 0),
            "sampler should have cut a point with traffic in it: {snap:?}"
        );
        server.shutdown();
    }

    #[test]
    fn huge_trace_threshold_keeps_the_ring_empty() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                slow_trace_threshold: Duration::from_secs(3600),
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let mut client = Client::new(TcpTransport::connect(server.local_addr()).unwrap());
        client.hello("fast").unwrap();
        let trace = client.trace_dump().unwrap();
        assert!(trace.records.is_empty(), "{:?}", trace.records);
        assert_eq!(trace.dropped, 0);
        server.shutdown();
    }

    /// Drives `loops`-loop serving end to end: 6 concurrent clients
    /// all get accepted and answered whatever listener topology is in
    /// effect, and each connection learns its loop coordinates.
    fn exercise_multi_loop(reuseport: bool) {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                loops: 3,
                reuseport,
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..6 {
                scope.spawn(move || {
                    let mut client = Client::new(TcpTransport::connect(addr).unwrap());
                    client.hello(&format!("loop-share-{t}")).unwrap();
                    let (loop_id, loops) = client.loop_info().unwrap();
                    assert_eq!(loops, 3);
                    assert!(loop_id < 3, "loop id {loop_id} out of range");
                });
            }
        });
        assert_eq!(server.accepted_total(), 6);
        server.shutdown();
    }

    #[test]
    fn multiple_loops_serve_with_reuseport_listeners() {
        exercise_multi_loop(true);
    }

    #[test]
    fn multiple_loops_serve_sharing_one_listener() {
        exercise_multi_loop(false);
    }

    #[test]
    fn single_threaded_handler_answers_loop_zero_of_one() {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        let handler = Arc::new(VerifierHandler::new(verifier));
        let mut client = Client::new(crate::transport::LoopbackTransport::new(handler));
        assert_eq!(client.loop_info().unwrap(), (0, 1));
    }

    /// A handler that holds the loop for a long time on every hello —
    /// the tool for proving batch peers don't inherit each other's
    /// service time as ready-wait.
    struct SleepyHello;

    impl RequestHandler for SleepyHello {
        fn handle(&self, request: Request) -> Response {
            match request {
                Request::Hello { protocol, client } => {
                    std::thread::sleep(Duration::from_millis(200));
                    Response::HelloOk {
                        protocol,
                        server: client,
                    }
                }
                _ => Response::Error {
                    code: ErrorCode::MalformedRequest,
                    detail: "sleepy handler only speaks hello".into(),
                },
            }
        }
    }

    #[test]
    fn batch_peers_do_not_inherit_ready_wait() {
        let handler: Arc<dyn RequestHandler> = Arc::new(SleepyHello);
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            handler,
            EventedConfig {
                slow_trace_threshold: Duration::ZERO,
                ..EventedConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        // One client's hello holds the single loop ~200 ms while three
        // more connect and send; their frames then land in one ready
        // batch and are serviced back to back, each sleeping 200 ms.
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut client = Client::new(TcpTransport::connect(addr).unwrap());
                client.hello("first").unwrap();
            });
            std::thread::sleep(Duration::from_millis(50));
            for t in 0..3 {
                scope.spawn(move || {
                    let mut client = Client::new(TcpTransport::connect(addr).unwrap());
                    client.hello(&format!("batched-{t}")).unwrap();
                });
            }
        });
        let mut probe = Client::new(TcpTransport::connect(addr).unwrap());
        let trace = probe.trace_dump().unwrap();
        let hellos: Vec<_> = trace
            .records
            .iter()
            .filter(|r| r.msg_type == 0x01)
            .collect();
        assert_eq!(hellos.len(), 4, "{:?}", trace.records);
        for record in &hellos {
            // Under the batch-level stamp this regression test guards
            // against, the last-served peer booked the ~400 ms its
            // batch-mates spent in the handler as its own ready-wait.
            // Re-stamped at drain start, ready-wait is microseconds.
            assert!(
                record.ready_ns < 100_000_000,
                "batch peer inherited ready-wait: {record:?}"
            );
            assert_eq!(
                record.total_ns,
                record.ready_ns
                    + record.decode_ns
                    + record.handle_ns
                    + record.flush_ns
                    + record.flush_wait_ns,
                "phase sum drifted: {record:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn out_queue_survives_arbitrary_write_chunking() {
        // Every write is truncated to 1–8 bytes (RATE_ONE partial-io):
        // the gathered drain must still deliver the exact byte stream
        // a flat buffer would have.
        let mut queue = OutQueue::default();
        let mut expect = Vec::new();
        for i in 0..32usize {
            let payload: Vec<u8> = (0..i * 7 + 1)
                .map(|b| (b as u8).wrapping_mul(31).wrapping_add(i as u8))
                .collect();
            queue.push_frame(&payload).unwrap();
            append_frame(&mut expect, &payload).unwrap();
        }
        assert_eq!(queue.pending(), expect.len());
        let mut sink = Vec::new();
        let mut faulty = FaultyStream::new(&mut sink, FaultPlan::new(77).with_partial_io(RATE_ONE));
        let written = queue
            .drain_with(|bufs| {
                // A writev the kernel cut short: accept slices in
                // order, stop at the first partial acceptance.
                let mut total = 0;
                for buf in bufs {
                    let n = faulty.write(buf)?;
                    total += n;
                    if n < buf.len() {
                        break;
                    }
                }
                Ok(total)
            })
            .unwrap();
        assert_eq!(written, expect.len());
        assert!(queue.is_empty());
        drop(faulty);
        assert_eq!(sink, expect, "chunked writev drain reordered bytes");
    }

    #[test]
    fn out_queue_recycles_only_bounded_segments() {
        let mut queue = OutQueue::default();
        queue.push_frame(&[1u8; 100]).unwrap();
        queue
            .push_frame(&vec![2u8; ropuf_proto::SCRATCH_RETAIN * 2])
            .unwrap();
        let queued = queue.pending();
        let drained = queue
            .drain_with(|bufs| Ok(bufs.iter().map(|b| b.len()).sum()))
            .unwrap();
        assert_eq!(drained, queued);
        assert!(queue.is_empty());
        // The small segment came back to the pool; the oversized one
        // was dropped (retention rule).
        assert_eq!(queue.pool.len(), 1);
        assert!(queue.pool[0].capacity() <= ropuf_proto::SCRATCH_RETAIN);
    }

    #[test]
    fn out_queue_rejects_oversize_frames_untouched() {
        let mut queue = OutQueue::default();
        let oversize = vec![0u8; ropuf_proto::MAX_FRAME as usize + 1];
        assert!(matches!(
            queue.push_frame(&oversize),
            Err(FrameError::Oversize(_))
        ));
        assert!(queue.is_empty());
        assert_eq!(queue.segs.len(), 0);
    }
}
