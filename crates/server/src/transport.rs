//! Client-side transports and the typed protocol client.
//!
//! [`Transport`] is one request/response exchange; two implementations
//! exist — [`TcpTransport`](crate::tcp::TcpTransport) over real
//! sockets and [`LoopbackTransport`] calling a handler in-process.
//! The loopback path still **encodes and decodes both directions**
//! through the `ropuf_proto` codec, so a loopback scenario exercises
//! byte-identical wire behavior (minus the kernel) and replays
//! bit-for-bit deterministically — which is what the campaign replay
//! tests assert.

use std::sync::Arc;

use ropuf_proto::{
    AuthItem, AuthItemRef, ErrorCode, FrameError, Request, RequestRef, Response, WireFlagReason,
    WireVerdict, PROTOCOL_VERSION,
};

use ropuf_proto::frame::bound_scratch;

use crate::handler::RequestHandler;

/// One synchronous request/response exchange with a server.
///
/// The required entry takes an **already-encoded** request payload, so
/// callers ([`Client`]) encode into a reused buffer once and every
/// transport ships those bytes without re-encoding or copying.
pub trait Transport {
    /// Sends one encoded request frame payload and awaits its
    /// response.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on transport or codec failure.
    fn roundtrip_frame(&mut self, request_payload: &[u8]) -> Result<Response, FrameError>;

    /// Convenience: encodes `request` (allocating) and exchanges it.
    ///
    /// # Errors
    ///
    /// See [`Transport::roundtrip_frame`].
    fn roundtrip(&mut self, request: &Request) -> Result<Response, FrameError> {
        self.roundtrip_frame(&request.encode())
    }
}

/// In-process transport: the same handler the TCP workers call,
/// reached through a full encode/decode of both the request and the
/// response, without sockets. Deterministic and dependency-free — the
/// campaign/test path. Requests are decoded with the same borrowing
/// decoder the socket workers use, so a loopback exchange exercises
/// byte-identical wire behavior (minus the kernel).
pub struct LoopbackTransport {
    handler: Arc<dyn RequestHandler>,
    /// Reused response-encode buffer (the response's trip through the
    /// codec, without a socket to carry it).
    response_scratch: Vec<u8>,
}

impl std::fmt::Debug for LoopbackTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackTransport").finish_non_exhaustive()
    }
}

impl LoopbackTransport {
    /// Wraps a handler.
    pub fn new(handler: Arc<dyn RequestHandler>) -> Self {
        Self {
            handler,
            response_scratch: Vec::new(),
        }
    }
}

impl Transport for LoopbackTransport {
    fn roundtrip_frame(&mut self, request_payload: &[u8]) -> Result<Response, FrameError> {
        // Borrowing decode, exactly as the socket workers do.
        let decoded = RequestRef::decode(request_payload)?;
        let response = self.handler.handle_ref(decoded);
        // And the response takes the same trip back.
        response.encode_into(&mut self.response_scratch);
        let decoded = Response::decode(&self.response_scratch)?;
        bound_scratch(&mut self.response_scratch);
        Ok(decoded)
    }
}

/// Client-side failure: transport trouble, a server-reported wire
/// error, or a response of the wrong shape.
#[derive(Debug)]
pub enum ClientError {
    /// The exchange itself failed.
    Transport(FrameError),
    /// The server answered with a typed wire error.
    Server {
        /// The typed code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server answered with a response type the request cannot
    /// produce (protocol bug or hostile server).
    UnexpectedResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, detail } => {
                write!(f, "server error {code:?}: {detail}")
            }
            ClientError::UnexpectedResponse(expected) => {
                write!(f, "response shape mismatch: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Transport(e)
    }
}

impl ClientError {
    /// The wire error code, when the failure is a server-reported
    /// error.
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Typed `ropuf-wire/v1` client over any [`Transport`].
///
/// Requests are encoded into a buffer the client owns and reuses, so a
/// steady-state request loop allocates nothing on the send side.
#[derive(Debug)]
pub struct Client<T: Transport> {
    transport: T,
    encode_scratch: Vec<u8>,
}

impl<T: Transport> Client<T> {
    /// Wraps a transport. Callers usually [`Client::hello`] first.
    pub fn new(transport: T) -> Self {
        Self {
            transport,
            encode_scratch: Vec::new(),
        }
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        // Owned encode path: keeps even batch requests allocation-free
        // (`Request::encode_into` does not build per-item views).
        request.encode_into(&mut self.encode_scratch);
        self.finish_exchange()
    }

    fn exchange_ref(&mut self, request: &RequestRef<'_>) -> Result<Response, ClientError> {
        request.encode_into(&mut self.encode_scratch);
        self.finish_exchange()
    }

    fn finish_exchange(&mut self) -> Result<Response, ClientError> {
        let result = self.transport.roundtrip_frame(&self.encode_scratch);
        bound_scratch(&mut self.encode_scratch);
        match result? {
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            response => Ok(response),
        }
    }

    /// Version handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorCode::UnsupportedProtocol`]
    /// on version mismatch.
    pub fn hello(&mut self, client_name: &str) -> Result<String, ClientError> {
        match self.exchange(&Request::Hello {
            protocol: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })? {
            Response::HelloOk { server, .. } => Ok(server),
            _ => Err(ClientError::UnexpectedResponse("HelloOk")),
        }
    }

    /// Enrolls a device (the registry stores the digest, never a key).
    ///
    /// # Errors
    ///
    /// [`ErrorCode::DuplicateDevice`] when the id is taken.
    pub fn enroll(
        &mut self,
        device_id: u64,
        scheme_tag: u8,
        helper: Vec<u8>,
        key_digest: [u8; 32],
    ) -> Result<(), ClientError> {
        match self.exchange(&Request::Enroll {
            device_id,
            scheme_tag,
            helper,
            key_digest,
        })? {
            Response::EnrollOk { .. } => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("EnrollOk")),
        }
    }

    /// One authentication attempt.
    ///
    /// # Errors
    ///
    /// A quarantined device comes back as [`ClientError::Server`] with
    /// [`ErrorCode::DeviceFlagged`] — the wire-level rejection.
    pub fn authenticate(&mut self, item: AuthItem) -> Result<WireVerdict, ClientError> {
        self.authenticate_ref(item.as_ref())
    }

    /// One authentication attempt from a borrowed item — the replay
    /// hot path: the item's bytes are encoded straight from the
    /// caller's buffers into the client's reused encode buffer, no
    /// clone per request.
    ///
    /// # Errors
    ///
    /// See [`Client::authenticate`].
    pub fn authenticate_ref(&mut self, item: AuthItemRef<'_>) -> Result<WireVerdict, ClientError> {
        match self.exchange_ref(&RequestRef::Authenticate(item))? {
            Response::Verdict(verdict) => Ok(verdict),
            _ => Err(ClientError::UnexpectedResponse("Verdict")),
        }
    }

    /// A batch of attempts; verdicts come back in item order, flags
    /// inline.
    ///
    /// # Errors
    ///
    /// Transport/shape failures only — per-item outcomes are verdicts.
    pub fn authenticate_batch(
        &mut self,
        items: Vec<AuthItem>,
    ) -> Result<Vec<WireVerdict>, ClientError> {
        match self.exchange(&Request::BatchAuthenticate { items })? {
            Response::VerdictBatch(verdicts) => Ok(verdicts),
            _ => Err(ClientError::UnexpectedResponse("VerdictBatch")),
        }
    }

    /// A device's flag state: `None` when enrolled and unflagged.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownDevice`] when the id is not enrolled.
    pub fn query_verdict(
        &mut self,
        device_id: u64,
    ) -> Result<Option<(u64, WireFlagReason)>, ClientError> {
        match self.exchange(&Request::QueryVerdict { device_id })? {
            Response::FlagInfo { flagged } => Ok(flagged),
            _ => Err(ClientError::UnexpectedResponse("FlagInfo")),
        }
    }

    /// A `ropuf-verifier/v1` registry snapshot.
    ///
    /// # Errors
    ///
    /// Transport/shape failures.
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        match self.exchange(&Request::Snapshot)? {
            Response::SnapshotText { json } => Ok(json),
            _ => Err(ClientError::UnexpectedResponse("SnapshotText")),
        }
    }

    /// A `ropuf-verifier/v2` binary registry snapshot — the compact,
    /// CRC-protected, flag-preserving format; the bytes load directly
    /// via `Verifier::from_snapshot_v2`.
    ///
    /// # Errors
    ///
    /// Transport/shape failures.
    pub fn snapshot_v2(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.exchange(&Request::SnapshotV2)? {
            Response::SnapshotBin { bytes } => Ok(bytes),
            _ => Err(ClientError::UnexpectedResponse("SnapshotBin")),
        }
    }

    /// A live `ropuf-metrics/v1` scrape of the serving stack: the
    /// server backend's own metrics merged with the verifier's. Decoded
    /// and CRC-verified client-side;
    /// [`Snapshot::render_text`](ropuf_telemetry::Snapshot::render_text)
    /// turns the result into the human view.
    ///
    /// # Errors
    ///
    /// Transport/shape failures, or
    /// [`ClientError::UnexpectedResponse`] when the returned blob does
    /// not decode as `ropuf-metrics/v1`.
    pub fn metrics(&mut self) -> Result<ropuf_telemetry::Snapshot, ClientError> {
        match self.exchange(&Request::MetricsSnapshot)? {
            Response::MetricsBin { bytes } => ropuf_telemetry::Snapshot::decode(&bytes)
                .map_err(|_| ClientError::UnexpectedResponse("decodable ropuf-metrics/v1 blob")),
            _ => Err(ClientError::UnexpectedResponse("MetricsBin")),
        }
    }

    /// The server's slow-request trace ring as a decoded
    /// `ropuf-trace/v1` snapshot (empty over loopback — traces live in
    /// the serving backends).
    ///
    /// # Errors
    ///
    /// Transport/shape failures, or
    /// [`ClientError::UnexpectedResponse`] when the returned blob does
    /// not decode as `ropuf-trace/v1`.
    pub fn trace_dump(&mut self) -> Result<ropuf_telemetry::TraceSnapshot, ClientError> {
        match self.exchange(&Request::TraceDump)? {
            Response::TraceBin { bytes } => ropuf_telemetry::TraceSnapshot::decode(&bytes)
                .map_err(|_| ClientError::UnexpectedResponse("decodable ropuf-trace/v1 blob")),
            _ => Err(ClientError::UnexpectedResponse("TraceBin")),
        }
    }

    /// The server's in-memory time-series history as a decoded
    /// `ropuf-timeseries/v1` snapshot: one delta point per sampler
    /// interval (empty over loopback, or when the backend's sampler is
    /// disabled).
    ///
    /// # Errors
    ///
    /// Transport/shape failures, or
    /// [`ClientError::UnexpectedResponse`] when the returned blob does
    /// not decode as `ropuf-timeseries/v1`.
    pub fn timeseries(&mut self) -> Result<ropuf_telemetry::TimeSeriesSnapshot, ClientError> {
        match self.exchange(&Request::TimeSeriesDump)? {
            Response::TimeSeriesBin { bytes } => {
                ropuf_telemetry::TimeSeriesSnapshot::decode(&bytes).map_err(|_| {
                    ClientError::UnexpectedResponse("decodable ropuf-timeseries/v1 blob")
                })
            }
            _ => Err(ClientError::UnexpectedResponse("TimeSeriesBin")),
        }
    }

    /// Which event loop this connection landed on: `(loop_id, loops)`.
    ///
    /// Multi-loop evented servers answer with the accepting loop's
    /// coordinates; single-threaded backends (and loopback) answer
    /// `(0, 1)`. Topology-aware clients use this to steer device
    /// traffic onto connections owned by the device's shard-affine
    /// loop.
    ///
    /// # Errors
    ///
    /// Transport/shape failures.
    pub fn loop_info(&mut self) -> Result<(u32, u32), ClientError> {
        match self.exchange(&Request::LoopInfo)? {
            Response::LoopInfoOk { loop_id, loops } => Ok((loop_id, loops)),
            _ => Err(ClientError::UnexpectedResponse("LoopInfoOk")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::VerifierHandler;
    use ropuf_verifier::{DetectorConfig, Verifier};

    fn loopback_client() -> Client<LoopbackTransport> {
        let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
        Client::new(LoopbackTransport::new(Arc::new(VerifierHandler::new(
            verifier,
        ))))
    }

    #[test]
    fn hello_over_loopback() {
        let mut client = loopback_client();
        let server = client.hello("unit-test").unwrap();
        assert!(server.starts_with("ropuf-server/"), "{server}");
    }

    #[test]
    fn server_errors_become_typed_client_errors() {
        let mut client = loopback_client();
        let err = client.query_verdict(12345).unwrap_err();
        assert_eq!(err.error_code(), Some(ErrorCode::UnknownDevice));
        assert!(err.to_string().contains("12345"), "{err}");
    }

    #[test]
    fn snapshot_over_loopback() {
        let mut client = loopback_client();
        let json = client.snapshot().unwrap();
        assert!(json.contains("ropuf-verifier/v1"));
    }

    #[test]
    fn snapshot_v2_over_loopback() {
        let mut client = loopback_client();
        let bytes = client.snapshot_v2().unwrap();
        let restored = Verifier::from_snapshot_v2(&bytes, DetectorConfig::default()).unwrap();
        assert!(restored.registry().is_empty());
    }
}
