//! Admission control: bounded budgets with graceful brown-out.
//!
//! An overloaded verifier must degrade *predictably*: answer cheap
//! typed errors fast instead of queueing unboundedly, and shed the
//! traffic that matters least first. The policy here is two
//! thresholds over one backend-supplied pressure signal (queued
//! out-buffer bytes on the evented backend, in-flight connections on
//! the blocking one):
//!
//! * **brown-out** (`brownout_pressure`): observability scrapes
//!   (metrics/trace/time-series/snapshots) and `QueryVerdict` lookups
//!   are shed with [`ErrorCode::Overloaded`]; authentication and
//!   enrollment keep serving. Scrapes are the right first sacrifice —
//!   they are large, bursty, and retryable, and the fleet has other
//!   replicas to scrape.
//! * **hard limit** (`max_pressure`): everything but the `Hello`
//!   handshake is shed. The answer is a pre-classified one-byte-peek
//!   decision plus a tiny error frame — no decode, no verifier work —
//!   so it leaves the server in well under a millisecond and tells
//!   the client exactly when to come back (`retry_after_ms`).
//!
//! Shedding is visible: every refusal counts into
//! `server.shed{class}`. The default policy is disabled (infinite
//! budgets) so existing deployments and the equivalence suites are
//! byte-for-byte unaffected until a budget is configured.

use std::sync::atomic::{AtomicU64, Ordering};

use ropuf_proto::{overload_detail, ErrorCode, Response};
use ropuf_telemetry::Counter;

use crate::telemetry::ServerTelemetry;

/// Coarse request taxonomy for admission decisions, classifiable from
/// the first payload byte alone — shedding must not pay for a decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// `Authenticate` / `BatchAuthenticate` — the product traffic,
    /// shed last.
    Auth,
    /// `Enroll` — mutations; kept through brown-out, shed at the hard
    /// limit.
    Mutate,
    /// `QueryVerdict` — point lookups, shed at brown-out.
    Verdict,
    /// Snapshots and observability dumps — shed first at brown-out.
    Scrape,
    /// `Hello` and unclassifiable bytes — handshakes are admitted
    /// always (they are how a client learns who it is talking to),
    /// garbage is cheaper to reject through the normal decode error
    /// path than to special-case here.
    Other,
}

impl RequestClass {
    /// Classifies a request by its wire type byte (the first payload
    /// byte of a frame).
    pub fn of(msg_type: u8) -> Self {
        match msg_type {
            0x03 | 0x04 => RequestClass::Auth,
            0x02 => RequestClass::Mutate,
            0x05 => RequestClass::Verdict,
            0x06..=0x0A => RequestClass::Scrape,
            _ => RequestClass::Other,
        }
    }

    /// The `class` label value for `server.shed`.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Auth => "auth",
            RequestClass::Mutate => "mutate",
            RequestClass::Verdict => "verdict",
            RequestClass::Scrape => "scrape",
            RequestClass::Other => "other",
        }
    }

    fn slot(self) -> usize {
        match self {
            RequestClass::Auth => 0,
            RequestClass::Mutate => 1,
            RequestClass::Verdict => 2,
            RequestClass::Scrape => 3,
            RequestClass::Other => 4,
        }
    }
}

/// Every class, in [`RequestClass::slot`] order.
const CLASSES: [RequestClass; 5] = [
    RequestClass::Auth,
    RequestClass::Mutate,
    RequestClass::Verdict,
    RequestClass::Scrape,
    RequestClass::Other,
];

/// Ready events below this depth contribute nothing to pressure: batch
/// sizes in the tens are the evented loop's normal operating point,
/// not overload.
pub const READY_BACKLOG_GRACE: u64 = 256;

/// Pressure (in pending-out-byte equivalents) each ready event beyond
/// [`READY_BACKLOG_GRACE`] adds: a deep ready list means that many
/// more frames are already committed to decode + handle + flush ahead
/// of this one.
pub const READY_EVENT_COST: u64 = 4096;

/// The evented backend's pressure signal: the connection's unsent
/// response bytes **plus** the depth of the epoll ready list still
/// waiting behind the event being serviced. Pending-out bytes alone
/// (PR 9) miss a ready-wait-dominated overload — thousands of
/// connections with empty out-buffers all going ready at once — so
/// backlog beyond [`READY_BACKLOG_GRACE`] is folded in at
/// [`READY_EVENT_COST`] byte-equivalents per event.
pub fn evented_pressure(pending_out_bytes: u64, ready_backlog: u64) -> u64 {
    pending_out_bytes.saturating_add(
        ready_backlog
            .saturating_sub(READY_BACKLOG_GRACE)
            .saturating_mul(READY_EVENT_COST),
    )
}

/// Overload thresholds. Pressure is whatever unit the backend
/// measures: queued out-buffer bytes (evented) or in-flight
/// connections (blocking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// At or above this pressure, scrapes and verdict lookups are
    /// shed (brown-out).
    pub brownout_pressure: u64,
    /// At or above this pressure, everything but `Hello` is shed.
    pub max_pressure: u64,
    /// Backoff hint carried in the `Overloaded` error detail.
    pub retry_after_ms: u32,
}

impl OverloadPolicy {
    /// The disabled policy: infinite budgets, nothing is ever shed.
    pub fn disabled() -> Self {
        Self {
            brownout_pressure: u64::MAX,
            max_pressure: u64::MAX,
            retry_after_ms: 50,
        }
    }

    /// `true` when any budget is finite.
    pub fn is_enabled(&self) -> bool {
        self.brownout_pressure != u64::MAX || self.max_pressure != u64::MAX
    }
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One backend's admission gate: the policy, an in-flight tally for
/// backends that meter by request, and the shed counters. Shareable
/// across serving threads; every decision is a couple of relaxed
/// atomic loads.
#[derive(Debug)]
pub struct Admission {
    policy: OverloadPolicy,
    inflight: AtomicU64,
    shed: [Counter; CLASSES.len()],
}

impl Admission {
    /// Builds the gate, registering `server.shed{class}` counters in
    /// the backend's telemetry.
    pub fn new(policy: OverloadPolicy, telemetry: &ServerTelemetry) -> Self {
        Self {
            policy,
            inflight: AtomicU64::new(0),
            shed: CLASSES.map(|class| telemetry.shed_counter(class.label())),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &OverloadPolicy {
        &self.policy
    }

    /// Decides one request given the backend's current pressure.
    /// `None` admits; `Some(response)` is the shed answer to write
    /// back (already counted in `server.shed{class}`).
    pub fn check(&self, class: RequestClass, pressure: u64) -> Option<Response> {
        let shed = if pressure >= self.policy.max_pressure {
            class != RequestClass::Other
        } else if pressure >= self.policy.brownout_pressure {
            matches!(class, RequestClass::Verdict | RequestClass::Scrape)
        } else {
            false
        };
        if !shed {
            return None;
        }
        self.shed[class.slot()].inc();
        Some(Response::Error {
            code: ErrorCode::Overloaded,
            detail: overload_detail(self.policy.retry_after_ms),
        })
    }

    /// Convenience for request-metered backends: [`Admission::check`]
    /// against the internal in-flight tally.
    pub fn check_inflight(&self, class: RequestClass) -> Option<Response> {
        self.check(class, self.inflight.load(Ordering::Relaxed))
    }

    /// Marks one request (or connection) in flight; pair with
    /// [`Admission::end`].
    pub fn begin(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Ends one in-flight request (or connection).
    pub fn end(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current in-flight tally.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Total requests shed so far, all classes.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(Counter::get).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn telemetry() -> std::sync::Arc<ServerTelemetry> {
        ServerTelemetry::new("test", Duration::ZERO, 8, 16, Duration::ZERO)
    }

    #[test]
    fn classes_cover_the_wire_bytes() {
        assert_eq!(RequestClass::of(0x03), RequestClass::Auth);
        assert_eq!(RequestClass::of(0x04), RequestClass::Auth);
        assert_eq!(RequestClass::of(0x02), RequestClass::Mutate);
        assert_eq!(RequestClass::of(0x05), RequestClass::Verdict);
        for scrape in 0x06..=0x0A {
            assert_eq!(RequestClass::of(scrape), RequestClass::Scrape);
        }
        assert_eq!(RequestClass::of(0x01), RequestClass::Other);
        // LoopInfo is topology discovery, admitted like the handshake.
        assert_eq!(RequestClass::of(0x0B), RequestClass::Other);
        assert_eq!(RequestClass::of(0xEE), RequestClass::Other);
    }

    #[test]
    fn ready_backlog_trips_brownout_with_empty_out_buffers() {
        let t = telemetry();
        let gate = Admission::new(
            OverloadPolicy {
                brownout_pressure: 64 * 1024,
                max_pressure: 512 * 1024,
                retry_after_ms: 2,
            },
            &t,
        );
        // Normal batch depths add no pressure at all.
        assert_eq!(evented_pressure(0, 0), 0);
        assert_eq!(evented_pressure(0, READY_BACKLOG_GRACE), 0);
        assert_eq!(
            gate.check(RequestClass::Verdict, evented_pressure(0, 64)),
            None
        );
        // A ready list deep past the grace band is overload even when
        // not a single byte is queued for write — the PR 9 signal
        // (pending-out only) could never see this.
        let deep = READY_BACKLOG_GRACE + 64 * 1024 / READY_EVENT_COST;
        assert!(evented_pressure(0, deep) >= 64 * 1024);
        assert!(gate
            .check(RequestClass::Verdict, evented_pressure(0, deep))
            .is_some());
        // And the two signals compose: bytes already near the budget
        // need only a shallow backlog to cross it.
        assert!(gate
            .check(
                RequestClass::Scrape,
                evented_pressure(60 * 1024, READY_BACKLOG_GRACE + 1)
            )
            .is_some());
        // Auth still serves through brown-out either way.
        assert_eq!(
            gate.check(RequestClass::Auth, evented_pressure(0, deep)),
            None
        );
    }

    #[test]
    fn disabled_policy_admits_everything() {
        let t = telemetry();
        let gate = Admission::new(OverloadPolicy::disabled(), &t);
        assert!(!gate.policy().is_enabled());
        for class in CLASSES {
            assert_eq!(gate.check(class, u64::MAX - 1), None);
        }
        assert_eq!(gate.shed_total(), 0);
    }

    #[test]
    fn brownout_sheds_scrapes_and_verdicts_only() {
        let t = telemetry();
        let gate = Admission::new(
            OverloadPolicy {
                brownout_pressure: 10,
                max_pressure: 100,
                retry_after_ms: 25,
            },
            &t,
        );
        // Below brown-out: everything admitted.
        for class in CLASSES {
            assert_eq!(gate.check(class, 9), None);
        }
        // Brown-out: scrape + verdict shed with the retry hint; auth
        // and enroll keep serving.
        for class in [RequestClass::Scrape, RequestClass::Verdict] {
            match gate.check(class, 10) {
                Some(Response::Error { code, detail }) => {
                    assert_eq!(code, ErrorCode::Overloaded);
                    assert_eq!(ropuf_proto::parse_retry_after_ms(&detail), Some(25));
                }
                other => panic!("expected shed, got {other:?}"),
            }
        }
        assert_eq!(gate.check(RequestClass::Auth, 10), None);
        assert_eq!(gate.check(RequestClass::Mutate, 10), None);
        // Hard limit: only Hello survives.
        assert!(gate.check(RequestClass::Auth, 100).is_some());
        assert!(gate.check(RequestClass::Mutate, 100).is_some());
        assert_eq!(gate.check(RequestClass::Other, 100), None);
        assert_eq!(gate.shed_total(), 4);
        // The sheds are attributable by class.
        let snap = t.snapshot();
        assert_eq!(snap.counter_total("server.shed"), 4);
        match snap.find("server.shed", &[("backend", "test"), ("class", "auth")]) {
            Some(ropuf_telemetry::MetricValue::Counter(v)) => assert_eq!(*v, 1),
            other => panic!("expected auth shed counter, got {other:?}"),
        }
    }

    #[test]
    fn inflight_tally_pairs() {
        let t = telemetry();
        let gate = Admission::new(
            OverloadPolicy {
                brownout_pressure: 2,
                max_pressure: 3,
                retry_after_ms: 1,
            },
            &t,
        );
        gate.begin();
        gate.begin();
        assert_eq!(gate.inflight(), 2);
        assert!(gate.check_inflight(RequestClass::Scrape).is_some());
        assert_eq!(gate.check_inflight(RequestClass::Auth), None);
        gate.end();
        assert_eq!(gate.check_inflight(RequestClass::Scrape), None);
    }
}
