//! Thin OS-facing layer for the event-driven server.
//!
//! The workspace's zero-external-deps discipline applies here too: no
//! `libc`/`mio`/`tokio`. [`epoll`] declares the four `epoll` syscall
//! entry points itself (they live in the C library every Linux `std`
//! binary already links) and wraps them in a safe, minimal readiness
//! API; [`net`] does the same for `SO_REUSEPORT` listener binding and
//! vectored writes (`writev`). These are the **only** modules in the
//! workspace that contain `unsafe` code, and the unsafety is confined
//! to the FFI boundary: every pointer handed to the kernel is derived
//! from a live Rust allocation whose length is passed alongside it.

#[cfg(target_os = "linux")]
pub mod epoll;
#[cfg(target_os = "linux")]
pub mod net;
