//! Safe minimal wrappers over the two socket syscalls the evented
//! server's tail-latency work needs: `SO_REUSEPORT` listener binding
//! and vectored writes (`writev`).
//!
//! No `libc` crate, same as [`epoll`](super::epoll): the syscall entry
//! points are declared directly and resolve against the C library
//! `std` already links on Linux.
//!
//! * [`bind_reuseport`] builds an IPv4 listener with `SO_REUSEPORT`
//!   set **before** `bind`, so N event loops can each own an
//!   independent kernel accept queue on the same address — the kernel
//!   load-balances incoming connections across the queues instead of
//!   waking every loop for every connection (no thundering herd, no
//!   shared accept lock).
//! * [`writev`] submits many response frames to a socket in a single
//!   syscall — the evented server's out-queue keeps one buffer per
//!   encoded frame and drains a whole pipelined burst per readiness
//!   with one gather write instead of one `write` per frame.

#![allow(unsafe_code)]

use std::ffi::{c_int, c_void};
use std::io;
use std::net::{SocketAddrV4, TcpListener};
use std::os::fd::{FromRawFd, RawFd};

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
/// `SOCK_NONBLOCK` == `O_NONBLOCK`.
const SOCK_NONBLOCK: c_int = 0o4000;
/// `SOCK_CLOEXEC` == `O_CLOEXEC`.
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
const LISTEN_BACKLOG: c_int = 1024;

/// The kernel's `struct sockaddr_in`, hand-laid-out (16 bytes): family,
/// big-endian port, big-endian address, zero padding.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

/// One gather-write segment, mirroring the kernel's `struct iovec`.
#[repr(C)]
struct IoVec {
    base: *const u8,
    len: usize,
}

/// Most segments a single [`writev`] call submits. Bursts longer than
/// this simply take another call on the next loop pass — well under
/// the kernel's `UIO_MAXIOV` (1024).
pub const MAX_IOVECS: usize = 64;

extern "C" {
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const SockAddrIn, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    #[link_name = "writev"]
    fn sys_writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Binds a non-blocking IPv4 listener with `SO_REUSEPORT` (and
/// `SO_REUSEADDR`) set before `bind`, so several listeners can share
/// `addr` and the kernel spreads incoming connections across their
/// independent accept queues. Port `0` picks an ephemeral port —
/// read it back via [`TcpListener::local_addr`] before binding the
/// sibling listeners.
///
/// # Errors
///
/// The raw `socket`/`setsockopt`/`bind`/`listen` failure; the fd is
/// closed on every error path.
pub fn bind_reuseport(addr: SocketAddrV4) -> io::Result<TcpListener> {
    // SAFETY: no pointers involved; the return value is checked.
    let fd = cvt(unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let result = (|| -> io::Result<()> {
        let one: c_int = 1;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            // SAFETY: `one` is a live c_int and its exact size is
            // passed alongside the pointer.
            cvt(unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&one as *const c_int).cast::<c_void>(),
                    std::mem::size_of::<c_int>() as u32,
                )
            })?;
        }
        let sockaddr = SockAddrIn {
            family: AF_INET as u16,
            port_be: addr.port().to_be(),
            addr_be: u32::from(*addr.ip()).to_be(),
            zero: [0; 8],
        };
        // SAFETY: `sockaddr` is a live, properly laid out
        // sockaddr_in and its exact size is passed alongside it.
        cvt(unsafe { bind(fd, &sockaddr, std::mem::size_of::<SockAddrIn>() as u32) })?;
        cvt(unsafe { listen(fd, LISTEN_BACKLOG) })?;
        Ok(())
    })();
    match result {
        // SAFETY: `fd` is a live listening socket this function owns;
        // ownership transfers to the TcpListener exactly once.
        Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
        Err(e) => {
            // SAFETY: `fd` came from `socket` above and is closed once.
            let _ = unsafe { close(fd) };
            Err(e)
        }
    }
}

/// Gather-writes up to [`MAX_IOVECS`] buffers to `fd` in one syscall,
/// returning how many bytes the socket accepted (possibly landing
/// mid-buffer — the caller's queue advances by byte count). Empty
/// buffers are skipped; an all-empty call returns `Ok(0)` without
/// entering the kernel.
///
/// # Errors
///
/// The raw `writev` failure — `WouldBlock` and `Interrupted` surface
/// as their usual [`io::ErrorKind`]s for the caller to handle.
pub fn writev(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    let mut vecs: [IoVec; MAX_IOVECS] = std::array::from_fn(|_| IoVec {
        base: std::ptr::null(),
        len: 0,
    });
    let mut count = 0;
    for buf in bufs.iter().filter(|b| !b.is_empty()).take(MAX_IOVECS) {
        vecs[count] = IoVec {
            base: buf.as_ptr(),
            len: buf.len(),
        };
        count += 1;
    }
    if count == 0 {
        return Ok(0);
    }
    // SAFETY: the first `count` entries point at live slices that
    // outlive the call; the kernel only reads them.
    let n = unsafe { sys_writev(fd, vecs.as_ptr(), count as c_int) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{Ipv4Addr, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reuseport_listeners_share_an_address() {
        let first = bind_reuseport(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).expect("first bind");
        let addr = first.local_addr().expect("local addr");
        let port = match addr {
            std::net::SocketAddr::V4(v4) => v4.port(),
            other => panic!("ipv4 listener reported {other}"),
        };
        // A second listener on the *same* resolved port must succeed —
        // the whole point of SO_REUSEPORT.
        let second = bind_reuseport(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
            .expect("second bind on same port");
        // And both accept queues actually receive connections: connect
        // repeatedly until each listener has accepted at least once
        // (the kernel hashes by 4-tuple, so a handful of distinct
        // source ports covers both).
        let (mut got_first, mut got_second) = (false, false);
        let mut held = Vec::new();
        for _ in 0..64 {
            if got_first && got_second {
                break;
            }
            held.push(TcpStream::connect(addr).expect("connect"));
            std::thread::sleep(std::time::Duration::from_millis(1));
            if let Ok((s, _)) = first.accept() {
                got_first = true;
                drop(s);
            }
            if let Ok((s, _)) = second.accept() {
                got_second = true;
                drop(s);
            }
        }
        assert!(
            got_first || got_second,
            "no listener ever accepted a connection"
        );
    }

    #[test]
    fn nonblocking_accept_would_block_when_idle() {
        let listener = bind_reuseport(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).expect("bind");
        match listener.accept() {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::WouldBlock),
            Ok(_) => panic!("accept succeeded with no peer"),
        }
    }

    #[test]
    fn writev_gathers_many_buffers_in_one_call() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        let bufs: Vec<&[u8]> = vec![b"one-", b"", b"two-", b"three"];
        let n = writev(a.as_raw_fd(), &bufs).expect("writev");
        assert_eq!(n, 13, "all non-empty bytes accepted at once");
        let mut read = vec![0u8; 13];
        b.read_exact(&mut read).unwrap();
        assert_eq!(&read, b"one-two-three");
    }

    #[test]
    fn writev_of_nothing_is_a_no_op() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        assert_eq!(writev(a.as_raw_fd(), &[]).unwrap(), 0);
        let empty: Vec<&[u8]> = vec![b"", b""];
        assert_eq!(writev(a.as_raw_fd(), &empty).unwrap(), 0);
    }
}
