//! Safe minimal wrapper over the Linux `epoll` readiness API.
//!
//! No `libc` crate: the four syscall wrappers are declared directly —
//! they resolve against the C library `std` already links on Linux.
//! The surface is deliberately tiny: create an instance, register a
//! file descriptor with a `u64` token and an interest set, wait for
//! readiness events. Level-triggered only (the evented server drains
//! until `WouldBlock` anyway, and level-triggering cannot lose a
//! wakeup to a missed edge).

#![allow(unsafe_code)]

use std::ffi::c_int;
use std::io;
use std::os::fd::{AsRawFd, RawFd};

/// Readiness interest / event bits (subset of `EPOLL*`).
pub mod event {
    /// Readable (accept, read, or peer-closed-with-pending-data).
    pub const IN: u32 = 0x001;
    /// Writable.
    pub const OUT: u32 = 0x004;
    /// Error condition (always reported, no need to register).
    pub const ERR: u32 = 0x008;
    /// Hangup (always reported, no need to register).
    pub const HUP: u32 = 0x010;
    /// Peer shut down its write half.
    pub const RDHUP: u32 = 0x2000;
}

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
/// `EPOLL_CLOEXEC` == `O_CLOEXEC`.
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// One readiness notification: which events fired, and the `u64` token
/// the fd was registered under.
///
/// Mirrors the kernel's `struct epoll_event`; on x86 the kernel ABI
/// packs it, so field reads below copy the values out rather than
/// taking references.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Debug, Clone, Copy, Default)]
pub struct Event {
    events: u32,
    data: u64,
}

impl Event {
    /// The registered token.
    pub fn token(&self) -> u64 {
        self.data
    }

    /// `true` when the fd is readable (or in an error/hangup state,
    /// which a subsequent `read` reports precisely).
    pub fn readable(&self) -> bool {
        self.events & (event::IN | event::ERR | event::HUP | event::RDHUP) != 0
    }

    /// `true` when the fd is writable.
    pub fn writable(&self) -> bool {
        self.events & (event::OUT | event::ERR | event::HUP) != 0
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut Event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut Event, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance. Closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` failure.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = Event {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` is a live, properly sized epoll_event; the
        // kernel reads it (ADD/MOD) or ignores it (DEL).
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest bits and token.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn add(&self, fd: &impl AsRawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), interest, token)
    }

    /// Changes a registered fd's interest bits (token may change too).
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn modify(&self, fd: &impl AsRawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), interest, token)
    }

    /// Deregisters a fd. Harmless to call for a fd about to close
    /// (closing deregisters implicitly, but only once *all* duplicates
    /// are closed, so explicit removal is the robust path).
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever, `0` = poll) for
    /// readiness, filling `events` from the start; returns how many
    /// fired. `EINTR` is swallowed and reported as zero events.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0); // the kernel rejects maxevents == 0 anyway
        }
        let max = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
        // SAFETY: the pointer and `max` describe the same live,
        // non-empty slice; the kernel writes at most `max` events.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) };
        match cvt(n) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` came from epoll_create1 and is closed once.
        let _ = unsafe { close(self.fd) };
    }
}

impl AsRawFd for Epoll {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_roundtrip_over_a_socketpair() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(&b, event::IN, 42).unwrap();

        // Nothing readable yet: zero-timeout wait reports nothing.
        let mut events = [Event::default(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // One byte in: readable with the registered token.
        a.write_all(&[1]).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert!(events[0].readable());
        assert!(!events[0].writable());

        // Interest can be switched to writability.
        epoll.modify(&b, event::OUT, 43).unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 43);
        assert!(events[0].writable());

        // And deregistered.
        epoll.delete(&b).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn peer_close_reports_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(&b, event::IN | event::RDHUP, 7).unwrap();
        drop(a);
        let mut events = [Event::default(); 4];
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable(), "hangup must surface as readable");
    }
}
