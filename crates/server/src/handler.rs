//! Protocol semantics: `ropuf-wire/v1` requests against the
//! [`Verifier`].
//!
//! [`RequestHandler`] is the transport-independent core of the server:
//! the TCP worker pool and the in-process loopback transport both
//! funnel decoded [`Request`]s through the same `handle` call, so a
//! scenario exercised over loopback is bit-for-bit the scenario the
//! socket path serves.
//!
//! The one deliberate asymmetry: a **single** [`Request::Authenticate`]
//! for a quarantined device is answered with a typed wire error
//! ([`ErrorCode::DeviceFlagged`]) — the gateway refuses the traffic
//! outright — while [`Request::BatchAuthenticate`] reports
//! [`WireVerdict::Flagged`] inline per item, because a batch's other
//! verdicts must still come back positionally.

use std::sync::Arc;

use ropuf_constructions::DeviceResponse;
use ropuf_proto::{
    AuthItemRef, ErrorCode, Request, RequestRef, Response, WireAuthResponse, WireFlagReason,
    WireVerdict, PROTOCOL_VERSION,
};
use ropuf_verifier::{AuthQuery, AuthVerdict, BatchScratch, FlagReason, Verifier};

/// A server-side request processor: one decoded request in, one
/// response out. Must be shareable across serving threads.
pub trait RequestHandler: Send + Sync {
    /// Serves one owned request.
    fn handle(&self, request: Request) -> Response;

    /// Serves one borrowed request — the zero-copy path the TCP
    /// workers decode into. The default copies and delegates;
    /// production handlers override it to serve straight from the
    /// frame buffer.
    fn handle_ref(&self, request: RequestRef<'_>) -> Response {
        self.handle(request.into_owned())
    }

    /// Registry shard count behind this handler, or `0` when the
    /// handler has no sharded registry. The evented server uses this
    /// for the device-id → loop affinity accounting; the default opts
    /// out.
    fn shard_count(&self) -> usize {
        0
    }
}

/// Converts the verifier's flag reason to its wire representation.
pub fn wire_reason(reason: FlagReason) -> WireFlagReason {
    match reason {
        FlagReason::HelperMismatch => WireFlagReason::HelperMismatch,
        FlagReason::MalformedHelper => WireFlagReason::MalformedHelper,
        FlagReason::RateBudget => WireFlagReason::RateBudget,
        FlagReason::FailureStreak => WireFlagReason::FailureStreak,
    }
}

/// Converts a verifier verdict to its wire representation.
pub fn wire_verdict(verdict: AuthVerdict) -> WireVerdict {
    match verdict {
        AuthVerdict::Accept => WireVerdict::Accept,
        AuthVerdict::Reject => WireVerdict::Reject,
        AuthVerdict::Flagged(reason) => WireVerdict::Flagged(wire_reason(reason)),
    }
}

/// Translates one borrowed wire [`AuthItemRef`] into the verifier's
/// borrowed query shape — field moves only, no byte copies.
fn auth_query<'a>(item: &AuthItemRef<'a>) -> AuthQuery<'a> {
    AuthQuery {
        device_id: item.device_id,
        now: item.now,
        nonce: item.nonce,
        response: match item.response {
            WireAuthResponse::Failure => DeviceResponse::Failure,
            WireAuthResponse::Tag(tag) => DeviceResponse::Tag(tag),
        },
        presented_helper: item.presented_helper,
    }
}

/// The production handler: `ropuf-wire/v1` served by a shared
/// [`Verifier`].
#[derive(Debug, Clone)]
pub struct VerifierHandler {
    verifier: Arc<Verifier>,
    server_name: String,
}

impl VerifierHandler {
    /// Wraps a verifier. The same `Arc` may simultaneously serve
    /// in-process callers; all state lives behind the registry's
    /// per-shard locks.
    pub fn new(verifier: Arc<Verifier>) -> Self {
        Self {
            verifier,
            server_name: format!("ropuf-server/{}", env!("CARGO_PKG_VERSION")),
        }
    }

    /// The served verifier (inspection, snapshots, direct enrollment).
    pub fn verifier(&self) -> &Arc<Verifier> {
        &self.verifier
    }

    /// `true` once the durable store has latched its read-only degraded
    /// mode (a WAL append or fsync failed). In-memory registries are
    /// never degraded — there is no durability to lose.
    pub fn read_only(&self) -> bool {
        self.verifier
            .registry()
            .store()
            .is_some_and(|store| store.is_degraded())
    }
}

impl RequestHandler for VerifierHandler {
    fn handle(&self, request: Request) -> Response {
        self.handle_ref(request.as_ref())
    }

    /// The real implementation: everything the hot path touches
    /// (nonces, presented helpers) stays borrowed from the frame
    /// buffer; only enrollment — which must persist its bytes — copies.
    fn handle_ref(&self, request: RequestRef<'_>) -> Response {
        match request {
            RequestRef::Hello { protocol, client } => {
                if protocol != PROTOCOL_VERSION {
                    return Response::Error {
                        code: ErrorCode::UnsupportedProtocol,
                        detail: format!(
                            "client {client:?} speaks v{protocol}, server speaks v{PROTOCOL_VERSION}"
                        ),
                    };
                }
                Response::HelloOk {
                    protocol: PROTOCOL_VERSION,
                    server: self.server_name.clone(),
                }
            }
            RequestRef::Enroll {
                device_id,
                scheme_tag,
                helper,
                key_digest,
            } => {
                // Once the store latches degraded, mutations are refused
                // up front — auths keep serving from memory, but an
                // enrollment the WAL can't record must not be accepted.
                if self.read_only() {
                    return Response::Error {
                        code: ErrorCode::ReadOnly,
                        detail: "registry is read-only: write-ahead log failed".into(),
                    };
                }
                let record = ropuf_verifier::EnrollmentRecord {
                    scheme_tag,
                    helper: helper.to_vec(),
                    key_digest,
                };
                match self.verifier.registry().enroll(device_id, record) {
                    Ok(()) => Response::EnrollOk { device_id },
                    Err(e @ ropuf_verifier::RegistryError::Duplicate { .. }) => Response::Error {
                        code: ErrorCode::DuplicateDevice,
                        detail: e.to_string(),
                    },
                    // A write-ahead-log failure means the enrollment was
                    // NOT applied (no record, no state) and the store has
                    // just latched degraded; retrying elsewhere is safe.
                    Err(e @ ropuf_verifier::RegistryError::Storage(_)) => Response::Error {
                        code: ErrorCode::ReadOnly,
                        detail: e.to_string(),
                    },
                }
            }
            RequestRef::Authenticate(item) => {
                match self.verifier.authenticate_query(auth_query(&item)) {
                    AuthVerdict::Flagged(reason) => Response::Error {
                        code: ErrorCode::DeviceFlagged,
                        detail: format!("device quarantined: {}", reason.label()),
                    },
                    verdict => Response::Verdict(wire_verdict(verdict)),
                }
            }
            RequestRef::BatchAuthenticate { items } => {
                // Per-worker-thread scratch: the serving threads are a
                // fixed pool, so this amortizes the shard buckets and
                // the verdict vector across every batch a worker ever
                // serves instead of reallocating them per request.
                thread_local! {
                    static BATCH_SCRATCH: std::cell::RefCell<(BatchScratch, Vec<AuthVerdict>)> =
                        std::cell::RefCell::new((BatchScratch::new(), Vec::new()));
                }
                let queries: Vec<AuthQuery<'_>> = items.iter().map(auth_query).collect();
                BATCH_SCRATCH.with(|cell| {
                    let (scratch, verdicts) = &mut *cell.borrow_mut();
                    self.verifier
                        .authenticate_batch_with(&queries, scratch, verdicts);
                    Response::VerdictBatch(verdicts.iter().copied().map(wire_verdict).collect())
                })
            }
            RequestRef::QueryVerdict { device_id } => {
                if self.verifier.registry().record(device_id).is_none() {
                    return Response::Error {
                        code: ErrorCode::UnknownDevice,
                        detail: format!("device {device_id} is not enrolled"),
                    };
                }
                Response::FlagInfo {
                    flagged: self
                        .verifier
                        .flag_info(device_id)
                        .map(|(at, reason)| (at, wire_reason(reason))),
                }
            }
            RequestRef::Snapshot => Response::SnapshotText {
                json: self.verifier.registry().snapshot_json(),
            },
            RequestRef::SnapshotV2 => Response::SnapshotBin {
                bytes: self.verifier.snapshot_v2(),
            },
            // The handler answers with the verifier's metrics only; a
            // server backend in front of this handler intercepts the
            // request, merges its own `server.*` namespace into the
            // blob, and re-encodes. Over loopback there is no server
            // layer, so the verifier's view is the whole answer.
            RequestRef::MetricsSnapshot => Response::MetricsBin {
                bytes: self.verifier.telemetry_snapshot().encode(),
            },
            // Slow-request traces live in the serving backend, not the
            // verifier; standalone (loopback) the ring is empty.
            RequestRef::TraceDump => Response::TraceBin {
                bytes: ropuf_telemetry::TraceSnapshot::default().encode(),
            },
            // Same story for the time series: the sampler belongs to
            // the serving backend, so a loopback dump is empty.
            RequestRef::TimeSeriesDump => Response::TimeSeriesBin {
                bytes: ropuf_telemetry::TimeSeriesSnapshot::default().encode(),
            },
            // Topology discovery: the handler itself is single-context,
            // so it answers loop 0 of 1. The evented server intercepts
            // this request and substitutes the accepting loop's real
            // coordinates.
            RequestRef::LoopInfo => Response::LoopInfoOk {
                loop_id: 0,
                loops: 1,
            },
        }
    }

    fn shard_count(&self) -> usize {
        self.verifier.registry().shard_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
    use ropuf_constructions::Device;
    use ropuf_proto::AuthItem;
    use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};
    use ropuf_verifier::{auth_key, client_tag, DetectorConfig};

    fn provisioned(seed: u64) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
        Device::provision(
            array,
            Box::new(LisaScheme::new(LisaConfig::default())),
            seed,
        )
        .unwrap()
    }

    fn handler() -> VerifierHandler {
        VerifierHandler::new(Arc::new(Verifier::new(4, DetectorConfig::default())))
    }

    fn enroll(h: &VerifierHandler, device: &Device, id: u64) {
        let response = h.handle(Request::Enroll {
            device_id: id,
            scheme_tag: LISA_TAG,
            helper: device.helper().to_vec(),
            key_digest: auth_key(device.enrolled_key()),
        });
        assert_eq!(response, Response::EnrollOk { device_id: id });
    }

    fn genuine_item(device: &mut Device, id: u64, now: u64, nonce: &[u8]) -> AuthItem {
        let response =
            match ropuf_verifier::device_auth_response(device, nonce, Environment::nominal()) {
                DeviceResponse::Tag(tag) => WireAuthResponse::Tag(tag),
                DeviceResponse::Failure => WireAuthResponse::Failure,
            };
        AuthItem {
            device_id: id,
            now,
            nonce: nonce.to_vec(),
            response,
            presented_helper: Some(device.helper().to_vec()),
        }
    }

    #[test]
    fn hello_negotiates_version() {
        let h = handler();
        assert!(matches!(
            h.handle(Request::Hello {
                protocol: PROTOCOL_VERSION,
                client: "t".into()
            }),
            Response::HelloOk {
                protocol: PROTOCOL_VERSION,
                ..
            }
        ));
        assert!(matches!(
            h.handle(Request::Hello {
                protocol: 99,
                client: "t".into()
            }),
            Response::Error {
                code: ErrorCode::UnsupportedProtocol,
                ..
            }
        ));
    }

    #[test]
    fn enroll_authenticate_accepts_and_duplicates_error() {
        let h = handler();
        let mut device = provisioned(1);
        enroll(&h, &device, 7);
        assert!(matches!(
            h.handle(Request::Enroll {
                device_id: 7,
                scheme_tag: LISA_TAG,
                helper: vec![],
                key_digest: [0; 32],
            }),
            Response::Error {
                code: ErrorCode::DuplicateDevice,
                ..
            }
        ));
        let verdict = h.handle(Request::Authenticate(genuine_item(&mut device, 7, 0, b"n")));
        assert_eq!(verdict, Response::Verdict(WireVerdict::Accept));
    }

    #[test]
    fn unknown_device_authenticate_is_reject_not_unknown() {
        // Authentication must not reveal enrollment status.
        let h = handler();
        let item = AuthItem {
            device_id: 404,
            now: 0,
            nonce: b"n".to_vec(),
            response: WireAuthResponse::Failure,
            presented_helper: None,
        };
        assert_eq!(
            h.handle(Request::Authenticate(item)),
            Response::Verdict(WireVerdict::Reject)
        );
        assert!(matches!(
            h.handle(Request::QueryVerdict { device_id: 404 }),
            Response::Error {
                code: ErrorCode::UnknownDevice,
                ..
            }
        ));
    }

    #[test]
    fn flagged_device_is_rejected_at_the_wire() {
        let h = handler();
        let device = provisioned(2);
        enroll(&h, &device, 1);
        let mut manipulated = device.helper().to_vec();
        let last = manipulated.len() - 1;
        manipulated[last] ^= 1;
        let hostile = AuthItem {
            device_id: 1,
            now: 0,
            nonce: b"n".to_vec(),
            response: WireAuthResponse::Failure,
            presented_helper: Some(manipulated),
        };
        // First hostile query flags; the flag itself already comes back
        // as the typed wire error.
        let first = h.handle(Request::Authenticate(hostile.clone()));
        assert!(matches!(
            first,
            Response::Error {
                code: ErrorCode::DeviceFlagged,
                ..
            }
        ));
        // The latch holds for every later request, genuine or not.
        let later = h.handle(Request::Authenticate(AuthItem {
            presented_helper: Some(device.helper().to_vec()),
            ..hostile
        }));
        assert!(matches!(
            later,
            Response::Error {
                code: ErrorCode::DeviceFlagged,
                ..
            }
        ));
        // And the flag is inspectable.
        match h.handle(Request::QueryVerdict { device_id: 1 }) {
            Response::FlagInfo {
                flagged: Some((0, reason)),
            } => assert_eq!(reason, WireFlagReason::HelperMismatch),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_reports_flags_inline() {
        let h = handler();
        let mut device = provisioned(3);
        enroll(&h, &device, 0);
        let good = genuine_item(&mut device, 0, 0, b"x");
        let forged = AuthItem {
            device_id: 0,
            now: 1,
            nonce: b"y".to_vec(),
            response: WireAuthResponse::Tag([0xAB; 32]),
            presented_helper: Some(vec![0xEE; 5]), // malformed helper: flags
        };
        match h.handle(Request::BatchAuthenticate {
            items: vec![good, forged],
        }) {
            Response::VerdictBatch(verdicts) => {
                assert_eq!(verdicts[0], WireVerdict::Accept);
                assert_eq!(
                    verdicts[1],
                    WireVerdict::Flagged(WireFlagReason::MalformedHelper)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_served() {
        let h = handler();
        let device = provisioned(4);
        enroll(&h, &device, 9);
        match h.handle(Request::Snapshot) {
            Response::SnapshotText { json } => {
                assert!(json.contains("ropuf-verifier/v1"));
                assert!(json.contains("\"device_id\": 9"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v2_snapshot_is_served_and_loads() {
        let h = handler();
        let device = provisioned(6);
        enroll(&h, &device, 11);
        match h.handle(Request::SnapshotV2) {
            Response::SnapshotBin { bytes } => {
                let restored = Verifier::from_snapshot_v2(&bytes, DetectorConfig::default())
                    .expect("served v2 snapshot loads");
                assert!(restored.registry().record(11).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tag_verification_uses_stored_digest() {
        let h = handler();
        let device = provisioned(5);
        enroll(&h, &device, 2);
        let digest = auth_key(device.enrolled_key());
        let nonce = b"challenge".to_vec();
        let item = AuthItem {
            device_id: 2,
            now: 0,
            nonce: nonce.clone(),
            response: WireAuthResponse::Tag(client_tag(&digest, &nonce)),
            presented_helper: None,
        };
        assert_eq!(
            h.handle(Request::Authenticate(item)),
            Response::Verdict(WireVerdict::Accept)
        );
    }
}
