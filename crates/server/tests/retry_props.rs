//! Property tests for the resilient client's [`RetryPolicy`]: the
//! backoff schedule is capped, jittered within its bounds, a pure
//! function of `(seed, op, attempt)`, and the retry budget is a hard
//! ceiling on attempts.

use std::time::Duration;

use proptest::prelude::*;
use ropuf_server::{Deadlines, ResilientClient, RetryPolicy};

proptest! {
    /// Every delay is bounded by the cap and sits in the equal-jitter
    /// band `[nominal/2, nominal]` where `nominal = min(base · 2^n,
    /// cap)` — and the whole schedule replays from the seed.
    #[test]
    fn backoff_is_capped_jittered_and_deterministic(
        seed in any::<u64>(),
        base_us in 1u64..10_000,
        cap_us in 1u64..1_000_000,
        op in 0u64..1 << 48,
        attempt in 0u32..64,
    ) {
        let policy = RetryPolicy {
            budget: 4,
            base_delay: Duration::from_micros(base_us),
            max_delay: Duration::from_micros(cap_us),
            seed,
        };
        let delay = policy.delay(op, attempt);
        prop_assert!(delay <= policy.max_delay, "{delay:?} over cap");
        let nominal_ns = (base_us * 1_000)
            .saturating_mul(1u64 << attempt.min(32))
            .min(cap_us * 1_000);
        let nominal = Duration::from_nanos(nominal_ns);
        prop_assert!(
            delay >= nominal / 2,
            "{delay:?} below the equal-jitter floor of {nominal:?}"
        );
        // Pure function: the same draw twice, and from a rebuilt policy.
        prop_assert_eq!(delay, policy.delay(op, attempt));
        let rebuilt = RetryPolicy { ..policy };
        prop_assert_eq!(delay, rebuilt.delay(op, attempt));
    }

    /// Until the cap bites, each retry's jitter band doubles: the
    /// floor of attempt `n+1` is never below the floor of attempt `n`.
    #[test]
    fn backoff_floors_are_monotone_until_the_cap(
        seed in any::<u64>(),
        base_us in 1u64..1_000,
        attempt in 0u32..20,
    ) {
        let policy = RetryPolicy {
            budget: 4,
            base_delay: Duration::from_micros(base_us),
            max_delay: Duration::from_secs(3600),
            seed,
        };
        let nominal_ns = (base_us * 1_000)
            .saturating_mul(1u64 << attempt.min(32))
            .min(u64::try_from(policy.max_delay.as_nanos()).unwrap());
        let this_floor = Duration::from_nanos(nominal_ns) / 2;
        let next = policy.delay(7, attempt + 1);
        prop_assert!(
            next >= this_floor,
            "attempt {} delay {next:?} under attempt {attempt} floor {this_floor:?}",
            attempt + 1,
        );
    }

    /// The budget is a hard ceiling: against an address that refuses
    /// every dial, the client makes exactly `budget` retries — never
    /// more — and reports the exhaustion.
    #[test]
    fn budget_is_never_exceeded(budget in 0u32..4, seed in any::<u64>()) {
        let policy = RetryPolicy {
            budget,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(100),
            seed,
        };
        // Port 1 on loopback: nothing listens, every dial fails fast.
        let mut client =
            ResilientClient::new("127.0.0.1:1", policy, Deadlines::default()).unwrap();
        let err = client.hello("budget-prober").unwrap_err();
        prop_assert_eq!(client.retries_total(), u64::from(budget));
        prop_assert!(
            err.to_string().contains("retry budget"),
            "exhaustion must be reported, got: {}",
            err
        );
    }
}
