//! Chaos equivalence: a retrying client on a faulty network against a
//! server with a failing disk must converge to **bit-for-bit the same
//! answers** as a fault-free run.
//!
//! The reference `TrafficPlan` (8 devices, benign + real LISA attack
//! trajectories) is replayed four times — fault-free and under chaos,
//! on both the blocking worker-pool backend and the evented epoll
//! backend. The chaos runs inject, deterministically from seeds:
//!
//! * **client-side**: partial reads/writes (re-chunking every frame),
//!   injected delays, a connection reset pinned mid-request-write
//!   (the request never reaches the server; the retry re-delivers it
//!   exactly once), and a reset pinned on an *enroll response read*
//!   (the enroll **was** applied; the retry draws `DuplicateDevice`
//!   and the idempotency rule reports success);
//! * **server-side**: a WAL append fault pinned to the first *flag*
//!   append (best-effort logging — answers unchanged), which latches
//!   the registry read-only.
//!
//! Every authentication and flag-query response payload is collected
//! in order and compared byte-for-byte across all four runs. After the
//! chaos replay the read-only latch must be observable at the wire
//! (a fresh `Enroll` answers `ReadOnly`) and in the merged metrics
//! (`server.degraded_transitions`, `faults.injected{kind}`).

#![cfg(target_os = "linux")]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use ropuf_proto::{derive_seed, ErrorCode, FaultPlan, Request, RATE_ONE};
use ropuf_server::{
    Deadlines, EventedConfig, EventedServer, RequestHandler, ResilientClient, RetryPolicy, Role,
    TcpServer, TrafficPlan, TrafficSpec, VerifierHandler,
};
use ropuf_verifier::{DetectorConfig, StoreFaults, StoreOptions, Verifier};

use ropuf_constructions::pairing::lisa::LisaConfig;

fn spec() -> TrafficSpec {
    TrafficSpec {
        devices: 8,
        master_seed: 2024,
        rounds: 3,
        lisa: LisaConfig::default(),
        detector: DetectorConfig::default(),
    }
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        budget: 6,
        base_delay: std::time::Duration::from_micros(200),
        max_delay: std::time::Duration::from_millis(20),
        seed: 0xC4A05,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ropuf-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable, initially-empty verifier stack; `faults` arms the WAL
/// fault schedule for the chaos runs.
fn durable_handler(dir: &PathBuf, faults: Option<StoreFaults>) -> Arc<VerifierHandler> {
    let (verifier, report) = Verifier::open_durable_faulted(
        dir,
        4,
        DetectorConfig::default(),
        StoreOptions::default(),
        faults,
    )
    .expect("open durable store");
    assert_eq!(report.enrolls_applied, 0, "fresh directory");
    Arc::new(VerifierHandler::new(Arc::new(verifier)))
}

/// The WAL fault for chaos runs: the plan enrolls 8 devices over the
/// wire (appends 0..=7), so append 8 is the first best-effort *flag*
/// append — failing it latches read-only without changing any answer.
fn wal_fault(plan: &TrafficPlan) -> StoreFaults {
    StoreFaults::new().fail_append_at(plan.devices.len() as u64)
}

/// Per-device request list: the auth trajectory plus a final
/// `QueryVerdict` — the byte-compared equivalence surface.
fn device_requests(plan: &TrafficPlan) -> Vec<(u64, Vec<Request>)> {
    plan.devices
        .iter()
        .map(|device| {
            let mut requests: Vec<Request> = device
                .requests
                .iter()
                .cloned()
                .map(Request::Authenticate)
                .collect();
            requests.push(Request::QueryVerdict {
                device_id: device.device_id,
            });
            (device.device_id, requests)
        })
        .collect()
}

/// Replays the full plan through resilient clients: wire enrollment of
/// the whole fleet first (not byte-compared — the chaos run legally
/// answers one retried enroll with `DuplicateDevice`), then every auth
/// and flag query, collecting raw response payloads in order.
///
/// Under `chaos`, client connections draw deterministic fault plans:
/// heavy partial I/O and delays everywhere, a reset pinned on the
/// enroll client's first response *read* (idempotent-retry path), and
/// a reset pinned mid-*write* on two devices' auth connections
/// (at-most-once delivery path). Random resets are deliberately absent:
/// an unpinned reset could land on an auth response read, and replaying
/// an *applied* authentication is not idempotent — the detector would
/// see a duplicate attempt and answers could legally diverge.
fn replay_resilient(
    plan: &TrafficPlan,
    addr: SocketAddr,
    chaos: Option<u64>,
) -> (Vec<Vec<u8>>, u64, u64) {
    let mut responses = Vec::new();
    let (mut retries, mut reconnects) = (0u64, 0u64);

    // Phase 1: enroll the fleet over the wire, one client.
    let mut enroller =
        ResilientClient::new(addr, policy(), Deadlines::default()).expect("resolve addr");
    if let Some(master) = chaos {
        enroller = enroller.with_faults(Box::new(move |serial| {
            let plan = FaultPlan::new(derive_seed(master, serial))
                .with_partial_io(RATE_ONE / 3)
                .with_delays(RATE_ONE / 16, std::time::Duration::from_micros(20));
            if serial == 0 {
                // Kill the first enroll *response*: the server applied
                // the enroll; the retry must treat DuplicateDevice as
                // success.
                plan.with_read_reset_at(0)
            } else {
                plan
            }
        }));
    }
    for device in &plan.devices {
        let e = &device.enrollment;
        enroller
            .enroll(e.device_id, e.scheme_tag, e.helper.clone(), e.key_digest)
            .expect("every enroll eventually succeeds");
    }
    retries += enroller.retries_total();
    reconnects += enroller.reconnects();
    if chaos.is_some() {
        assert!(
            enroller.retries_total() > 0,
            "the pinned enroll-read reset must force at least one retry"
        );
    }
    drop(enroller);

    // Phase 2: auth + flag-query traffic, one client per device.
    for (index, (_, requests)) in device_requests(plan).iter().enumerate() {
        let mut client =
            ResilientClient::new(addr, policy(), Deadlines::default()).expect("resolve addr");
        if let Some(master) = chaos {
            client = client.with_faults(Box::new(move |serial| {
                let seed = derive_seed(master, 1 + (index as u64) * 1009 + serial);
                let plan = FaultPlan::new(seed)
                    .with_partial_io(RATE_ONE / 3)
                    .with_delays(RATE_ONE / 16, std::time::Duration::from_micros(20));
                // Two devices lose their first connection mid-write:
                // the in-flight request is torn before the server can
                // decode it, so the retry delivers it exactly once.
                if serial == 0 && (index == 0 || index == 3) {
                    plan.with_write_reset_at(2)
                } else {
                    plan
                }
            }));
        }
        for request in requests {
            let payload = client
                .exchange_raw(&request.encode())
                .expect("every exchange eventually succeeds");
            responses.push(payload);
        }
        retries += client.retries_total();
        reconnects += client.reconnects();
    }
    (responses, retries, reconnects)
}

/// One backend's full fault-free + chaos comparison, returning both
/// byte streams for the cross-backend assertions.
fn run_backend(plan: &TrafficPlan, evented: bool) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let tag = if evented { "evented" } else { "blocking" };

    // Fault-free reference.
    let clean_dir = scratch_dir(&format!("{tag}-clean"));
    let clean_handler = durable_handler(&clean_dir, None);
    let (clean, clean_addr_used) = serve(plan, clean_handler.clone(), evented, None);
    assert!(clean_addr_used, "reference replay served");
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Chaos run: client faults + pinned WAL flag-append fault.
    let chaos_dir = scratch_dir(&format!("{tag}-chaos"));
    let chaos_handler = durable_handler(&chaos_dir, Some(wal_fault(plan)));
    let (chaos, _) = serve(
        plan,
        chaos_handler.clone(),
        evented,
        Some(0xFA_57 + u64::from(evented)),
    );
    let _ = std::fs::remove_dir_all(&chaos_dir);

    assert_eq!(
        clean.len(),
        chaos.len(),
        "{tag}: both runs answer every auth + flag query"
    );
    assert_eq!(
        clean, chaos,
        "{tag}: chaos must not change a single served byte"
    );
    (clean, chaos)
}

/// Spawns the chosen backend, replays, asserts the chaos-only
/// postconditions (read-only latch at the wire and in the metrics),
/// and shuts down. Returns the response byte stream.
fn serve(
    plan: &TrafficPlan,
    handler: Arc<VerifierHandler>,
    evented: bool,
    chaos: Option<u64>,
) -> (Vec<Vec<u8>>, bool) {
    let dyn_handler: Arc<dyn RequestHandler> = handler.clone();
    let (addr, shutdown): (SocketAddr, Box<dyn FnOnce()>) = if evented {
        let server = EventedServer::spawn("127.0.0.1:0", dyn_handler, EventedConfig::default())
            .expect("bind evented");
        let addr = server.local_addr();
        (addr, Box::new(move || server.shutdown()))
    } else {
        let server = TcpServer::spawn("127.0.0.1:0", dyn_handler, 3).expect("bind blocking");
        let addr = server.local_addr();
        (addr, Box::new(move || server.shutdown()))
    };

    let (responses, retries, reconnects) = replay_resilient(plan, addr, chaos);

    if chaos.is_some() {
        assert!(retries > 0, "chaos run must have exercised retries");
        assert!(reconnects > 0, "chaos run must have re-dialed");
        assert!(
            handler.read_only(),
            "the pinned flag-append fault must latch the registry read-only"
        );

        // The latch is visible at the wire: a fresh enroll is refused
        // with ReadOnly (and retrying cannot help, so it surfaces
        // immediately through the resilient client).
        let mut probe =
            ResilientClient::new(addr, policy(), Deadlines::default()).expect("resolve addr");
        let err = probe
            .enroll(0xDEAD, 1, vec![0; 16], [0; 32])
            .expect_err("enroll on a read-only registry must fail");
        assert_eq!(
            err.error_code(),
            Some(ErrorCode::ReadOnly),
            "read-only must answer ReadOnly, got: {err}"
        );

        // And in the merged metrics scrape: exactly one degraded
        // transition, exactly one injected WAL-append fault.
        let snapshot = probe.metrics().expect("metrics scrape");
        assert_eq!(
            snapshot.counter_total("server.degraded_transitions"),
            1,
            "the latch is counted once"
        );
        assert_eq!(
            snapshot.counter_total("faults.injected"),
            1,
            "one injected store fault"
        );
        assert!(
            matches!(
                snapshot.find("faults.injected", &[("kind", "wal_append")]),
                Some(ropuf_telemetry::MetricValue::Counter(1))
            ),
            "the injected fault is the pinned WAL append"
        );
    } else {
        assert_eq!(retries, 0, "fault-free run must not retry");
        assert!(!handler.read_only(), "fault-free run must not latch");
    }

    shutdown();
    (responses, true)
}

#[test]
fn chaos_replay_is_bit_for_bit_identical_on_both_backends() {
    let plan = TrafficPlan::build(&spec());
    assert!(
        plan.attackers().count() >= 2,
        "chaos equivalence must cover attacked devices (their flag \
         transitions drive the faulted WAL append)"
    );

    let (blocking_clean, _) = run_backend(&plan, false);
    let (evented_clean, _) = run_backend(&plan, true);

    assert_eq!(
        blocking_clean, evented_clean,
        "blocking vs evented response bytes under identical traffic"
    );

    // The shared byte stream still carries the attack outcome.
    let mut cursor = 0;
    for device in &plan.devices {
        let span = &blocking_clean[cursor..cursor + device.requests.len() + 1];
        cursor += device.requests.len() + 1;
        let flagged = span[..span.len() - 1].iter().any(|payload| {
            matches!(
                ropuf_proto::Response::decode(payload),
                Ok(ropuf_proto::Response::Error {
                    code: ErrorCode::DeviceFlagged,
                    ..
                })
            )
        });
        match device.role {
            Role::LisaAttacker => assert!(flagged, "attacker {} never rejected", device.device_id),
            Role::Benign => assert!(!flagged, "benign {} rejected", device.device_id),
        }
    }
}
