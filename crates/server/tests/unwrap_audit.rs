//! Panic-site audit for the serving and storage I/O paths.
//!
//! A chaos-hardened server must never turn an I/O failure into a
//! panic: disk and socket errors are *expected inputs*. This gate
//! scans every non-test line of `crates/server/src` and
//! `crates/verifier/src/store` for `.unwrap()` / `.expect(` and
//! requires each hit to appear in the allowlist below. Every allowed
//! site is an invariant that cannot fail without a prior bug (lock
//! poisoning after a panic elsewhere, fixed-width slice conversions,
//! options checked on the line above) — **none** of them guards an
//! I/O result. Adding a new panic site means justifying it here, in
//! review, next to its peers.

use std::path::{Path, PathBuf};

/// Trimmed source lines allowed to contain `.unwrap()` / `.expect(`.
/// Keep sorted by file for reviewability.
const ALLOWED: &[&str] = &[
    // evented.rs: shutdown-waker registry; poisoning requires a prior
    // panic while holding the lock.
    r#".expect("waker list poisoned")"#,
    // evented.rs: the front was checked non-empty on the previous line.
    r#"let entry = self.pending_flush.pop_front().expect("front checked");"#,
    // resilient.rs: the connection was populated two lines above.
    r#"Ok(self.conn.as_mut().expect("just ensured"))"#,
    // tcp.rs: worker-queue and connection-list mutexes — poisoning
    // requires a prior panic.
    r#"let next = rx.lock().expect("worker queue poisoned").recv();"#,
    r#".expect("connection list poisoned")"#,
    // store/mod.rs: the segment mutex, same poisoning argument.
    r#"self.active.lock().expect("store lock poisoned").seq"#,
    r#"let mut active = self.active.lock().expect("store lock poisoned");"#,
    r#"let active = self.active.lock().expect("store lock poisoned");"#,
    // store/mod.rs: snapshot decode enforces strictly ascending ids.
    r#".expect("decoded snapshot ids are strictly ascending");"#,
    // store/snapshot.rs, store/wal.rs: fixed-width length conversions
    // over buffers whose sizes were validated by the caller.
    r#"out.put_u32(u32::try_from(shards).expect("shard count fits u32"));"#,
    r#"let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("len 4"));"#,
    r#"out.put_u32(u32::try_from(payload.len()).expect("payload fits u32"));"#,
    r#"let declared = u32::from_le_bytes(header[..4].try_into().expect("len 4")) as usize;"#,
    r#"let stored = u32::from_le_bytes(header[4..].try_into().expect("len 4"));"#,
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("source tree readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Non-test, non-comment lines of `path` containing a panic site.
fn panic_sites(path: &Path) -> Vec<(usize, String)> {
    let source = std::fs::read_to_string(path).expect("source readable");
    let mut sites = Vec::new();
    for (number, line) in source.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break; // test modules sit at the bottom of every file here
        }
        let trimmed = line.trim();
        if trimmed.starts_with("//") {
            continue; // doc examples may unwrap freely
        }
        if trimmed.contains(".unwrap()") || trimmed.contains(".expect(") {
            sites.push((number + 1, trimmed.to_string()));
        }
    }
    sites
}

#[test]
fn io_paths_have_no_unsanctioned_panic_sites() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let roots = [
        manifest.join("src"),
        manifest
            .parent()
            .expect("crates dir")
            .join("verifier")
            .join("src")
            .join("store"),
    ];

    let mut files = Vec::new();
    for root in &roots {
        assert!(root.is_dir(), "audit root moved: {}", root.display());
        rust_sources(root, &mut files);
    }
    assert!(files.len() >= 10, "audit must see the whole surface");

    let mut seen: Vec<&str> = Vec::new();
    let mut violations = Vec::new();
    for file in &files {
        for (line, site) in panic_sites(file) {
            match ALLOWED.iter().find(|a| **a == site) {
                Some(allowed) => seen.push(allowed),
                None => violations.push(format!("{}:{line}: {site}", file.display())),
            }
        }
    }
    assert!(
        violations.is_empty(),
        "unsanctioned .unwrap()/.expect() on an I/O path — handle the \
         error or justify the invariant in the audit allowlist:\n{}",
        violations.join("\n")
    );

    // The allowlist may not rot: every entry must still exist, so a
    // removed site cannot silently shelter a future panic elsewhere.
    let stale: Vec<&&str> = ALLOWED.iter().filter(|a| !seen.contains(*a)).collect();
    assert!(
        stale.is_empty(),
        "allowlist entries no longer present in the sources — remove \
         them:\n{stale:#?}"
    );
}
