//! End-to-end serving tests.
//!
//! 1. **Real sockets** — spawn the TCP server on an ephemeral
//!    localhost port, then enroll, authenticate, and flag an attacker
//!    entirely over the wire, from multiple concurrent client
//!    connections.
//! 2. **Deterministic loopback replay** — the same traffic plan built
//!    twice and replayed through two fresh loopback stacks must
//!    produce byte-identical response streams (requests already
//!    compare equal by construction).

use std::sync::Arc;

use ropuf_proto::{AuthItem, ErrorCode, Request, WireAuthResponse, WireFlagReason, WireVerdict};
use ropuf_server::{
    Client, LoopbackTransport, RequestHandler, TcpServer, TcpTransport, TrafficPlan, TrafficSpec,
    VerifierHandler,
};
use ropuf_verifier::{DetectorConfig, Verifier};

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::{Device, DeviceResponse};
use ropuf_sim::{ArrayDims, Environment, RoArrayBuilder};

fn provisioned(seed: u64) -> Device {
    let mut rng = StdRng::seed_from_u64(seed);
    let array = RoArrayBuilder::new(ArrayDims::new(16, 8)).build(&mut rng);
    Device::provision(
        array,
        Box::new(LisaScheme::new(LisaConfig::default())),
        seed,
    )
    .unwrap()
}

fn genuine_item(device: &mut Device, id: u64, now: u64, nonce: &[u8]) -> AuthItem {
    let response = match ropuf_verifier::device_auth_response(device, nonce, Environment::nominal())
    {
        DeviceResponse::Tag(tag) => WireAuthResponse::Tag(tag),
        DeviceResponse::Failure => WireAuthResponse::Failure,
    };
    AuthItem {
        device_id: id,
        now,
        nonce: nonce.to_vec(),
        response,
        presented_helper: Some(device.helper().to_vec()),
    }
}

#[test]
fn enroll_authenticate_and_flag_over_real_sockets() {
    let verifier = Arc::new(Verifier::new(4, DetectorConfig::default()));
    let handler = Arc::new(VerifierHandler::new(verifier));
    let server = TcpServer::spawn("127.0.0.1:0", handler, 2).expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut client = Client::new(TcpTransport::connect(addr).expect("connect"));
    assert!(client.hello("e2e").unwrap().starts_with("ropuf-server/"));

    // Enroll two devices over the wire.
    let mut genuine = provisioned(1);
    let attacker_device = provisioned(2);
    for (id, device) in [(10u64, &genuine), (11u64, &attacker_device)] {
        client
            .enroll(
                id,
                LISA_TAG,
                device.helper().to_vec(),
                ropuf_verifier::auth_key(device.enrolled_key()),
            )
            .unwrap();
    }
    // Duplicate enrollment is a typed wire error.
    let dup = client
        .enroll(10, LISA_TAG, vec![], [0; 32])
        .unwrap_err()
        .error_code();
    assert_eq!(dup, Some(ErrorCode::DuplicateDevice));

    // Genuine device authenticates, repeatedly, spaced in time.
    for round in 0..3u64 {
        let item = genuine_item(
            &mut genuine,
            10,
            round * 16,
            format!("n-{round}").as_bytes(),
        );
        assert_eq!(client.authenticate(item).unwrap(), WireVerdict::Accept);
    }

    // The attacker presents a manipulated helper blob: flagged at the
    // wire, and the latch holds from a *different* connection.
    let mut manipulated = attacker_device.helper().to_vec();
    let last = manipulated.len() - 1;
    manipulated[last] ^= 1;
    let hostile = AuthItem {
        device_id: 11,
        now: 0,
        nonce: b"atk".to_vec(),
        response: WireAuthResponse::Failure,
        presented_helper: Some(manipulated),
    };
    let err = client.authenticate(hostile).unwrap_err();
    assert_eq!(err.error_code(), Some(ErrorCode::DeviceFlagged));

    let mut second = Client::new(TcpTransport::connect(addr).expect("second connection"));
    second.hello("e2e-2").unwrap();
    let still_flagged = second
        .authenticate(AuthItem {
            device_id: 11,
            now: 100,
            nonce: b"later".to_vec(),
            response: WireAuthResponse::Failure,
            presented_helper: Some(attacker_device.helper().to_vec()),
        })
        .unwrap_err();
    assert_eq!(still_flagged.error_code(), Some(ErrorCode::DeviceFlagged));
    assert_eq!(
        second.query_verdict(11).unwrap().map(|(_, r)| r),
        Some(WireFlagReason::HelperMismatch)
    );
    assert_eq!(second.query_verdict(10).unwrap(), None, "genuine unflagged");

    // Snapshot travels the wire and names both devices.
    let snapshot = second.snapshot().unwrap();
    assert!(snapshot.contains("\"device_id\": 10"));
    assert!(snapshot.contains("\"device_id\": 11"));

    server.shutdown();
}

#[test]
fn concurrent_connections_share_one_registry() {
    let verifier = Arc::new(Verifier::new(8, DetectorConfig::default()));
    let handler = Arc::new(VerifierHandler::new(verifier));
    let server = TcpServer::spawn("127.0.0.1:0", handler, 4).expect("bind");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            scope.spawn(move || {
                let mut client = Client::new(TcpTransport::connect(addr).expect("connect"));
                client.hello(&format!("worker-{t}")).unwrap();
                for i in 0..20u64 {
                    let id = t * 100 + i;
                    client
                        .enroll(id, LISA_TAG, vec![LISA_TAG, 1], [t as u8; 32])
                        .unwrap();
                }
            });
        }
    });

    let mut client = Client::new(TcpTransport::connect(addr).expect("connect"));
    client.hello("checker").unwrap();
    let snapshot = client.snapshot().unwrap();
    let enrolled = snapshot.matches("\"device_id\"").count();
    assert_eq!(enrolled, 80, "all 4 connections' enrollments landed");
    server.shutdown();
}

#[test]
fn malformed_frames_get_a_typed_error_not_a_crash() {
    use std::io::{Read, Write};

    let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
    let handler = Arc::new(VerifierHandler::new(verifier));
    let server = TcpServer::spawn("127.0.0.1:0", handler, 1).expect("bind");
    let addr = server.local_addr();

    // Hand-rolled hostile frame: valid length prefix, garbage payload.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let payload = [0xEEu8, 1, 2, 3];
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&payload).unwrap();
    let mut answer = Vec::new();
    stream.read_to_end(&mut answer).unwrap();
    let response = ropuf_proto::FrameReader::new(&answer[..])
        .read_response()
        .unwrap()
        .expect("server answers before closing");
    assert!(matches!(
        response,
        ropuf_proto::Response::Error {
            code: ErrorCode::MalformedRequest,
            ..
        }
    ));

    // The server survived: a fresh, well-formed connection still works.
    let mut client = Client::new(TcpTransport::connect(addr).expect("reconnect"));
    assert!(client.hello("after-garbage").is_ok());
    server.shutdown();
}

#[test]
fn oversize_snapshot_is_a_typed_error_and_connection_survives() {
    let verifier = Arc::new(Verifier::new(2, DetectorConfig::default()));
    let handler = Arc::new(VerifierHandler::new(Arc::clone(&verifier)));
    let server = TcpServer::spawn("127.0.0.1:0", handler, 1).expect("bind");

    // Enroll enough jumbo helpers that the snapshot JSON (hex doubles
    // the helper bytes) exceeds the 4 MiB frame cap.
    for id in 0..40u64 {
        verifier
            .registry()
            .enroll(
                id,
                ropuf_verifier::EnrollmentRecord {
                    scheme_tag: LISA_TAG,
                    helper: vec![0xAB; 60 * 1024],
                    key_digest: [1; 32],
                },
            )
            .unwrap();
    }
    assert!(
        verifier.registry().snapshot_json().len() > ropuf_proto::MAX_FRAME as usize,
        "test precondition: snapshot must exceed the frame cap"
    );

    let mut client = Client::new(TcpTransport::connect(server.local_addr()).expect("connect"));
    client.hello("jumbo").unwrap();
    let err = client.snapshot().unwrap_err();
    assert_eq!(err.error_code(), Some(ErrorCode::ResponseTooLarge));
    // The connection is still frame-aligned and serviceable.
    assert_eq!(client.query_verdict(0).unwrap(), None);
    server.shutdown();
}

/// Replays a traffic plan through a fresh loopback stack, returning
/// the **encoded bytes** of every response in order.
fn loopback_replay(plan: &TrafficPlan, detector: DetectorConfig, shards: usize) -> Vec<Vec<u8>> {
    let verifier = Arc::new(Verifier::new(shards, detector));
    let results = verifier.enroll_batch(plan.enrollments());
    assert!(results.iter().all(Result::is_ok), "fresh ids enroll");
    let handler: Arc<dyn RequestHandler> = Arc::new(VerifierHandler::new(verifier));
    let mut transport = LoopbackTransport::new(handler);
    let mut responses = Vec::with_capacity(plan.total_requests());
    for device in &plan.devices {
        for item in &device.requests {
            let response = ropuf_server::Transport::roundtrip(
                &mut transport,
                &Request::Authenticate(item.clone()),
            )
            .expect("loopback cannot fail");
            responses.push(response.encode());
        }
    }
    responses
}

#[test]
fn loopback_replay_is_bit_for_bit_deterministic() {
    let spec = TrafficSpec {
        devices: 6,
        master_seed: 77,
        rounds: 3,
        lisa: LisaConfig::default(),
        detector: DetectorConfig::default(),
    };
    // Two independent builds of the same spec...
    let plan_a = TrafficPlan::build(&spec);
    let plan_b = TrafficPlan::build(&spec);
    assert_eq!(plan_a, plan_b, "traffic generation is deterministic");

    // ...replayed through two fresh serving stacks, byte-for-byte.
    let replay_a = loopback_replay(&plan_a, spec.detector, 4);
    let replay_b = loopback_replay(&plan_b, spec.detector, 4);
    assert_eq!(replay_a, replay_b, "wire responses are deterministic");

    // And the shard count is serving topology, not semantics.
    let replay_c = loopback_replay(&plan_a, spec.detector, 1);
    assert_eq!(replay_a, replay_c, "shard count cannot change verdicts");
}
