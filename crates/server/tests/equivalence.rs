//! Backend equivalence: the blocking worker-pool server, the evented
//! epoll server, and the in-process loopback transport must be
//! **bit-for-bit indistinguishable** at the wire.
//!
//! The existing `TrafficPlan` (benign rounds across three
//! constructions plus recorded real LISA attack trajectories) is
//! replayed through a fresh serving stack per backend; every encoded
//! response byte — including the `DeviceFlagged` wire errors the
//! attacked devices must draw — is collected in order and compared
//! across backends. A second pass replays the same traffic *pipelined*
//! (each device's whole request burst written before reading anything)
//! through the evented server and must still produce the identical
//! byte sequence: pipelining may change scheduling, never answers.

#![cfg(target_os = "linux")]

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ropuf_proto::{
    ErrorCode, FrameReader, FrameWriter, Request, RequestRef, Response, WireFlagReason,
};
use ropuf_server::{
    EventedConfig, EventedServer, LoopbackTransport, RequestHandler, Role, TcpServer, TrafficPlan,
    TrafficSpec, Transport, VerifierHandler,
};
use ropuf_verifier::{DetectorConfig, StoreOptions, Verifier};

use ropuf_constructions::pairing::lisa::LisaConfig;

fn spec() -> TrafficSpec {
    TrafficSpec {
        devices: 8,
        master_seed: 2024,
        rounds: 3,
        lisa: LisaConfig::default(),
        detector: DetectorConfig::default(),
    }
}

/// A fresh verifier stack with the plan's fleet enrolled.
fn enrolled_handler(plan: &TrafficPlan, shards: usize) -> Arc<dyn RequestHandler> {
    let verifier = Arc::new(Verifier::new(shards, DetectorConfig::default()));
    let results = verifier.enroll_batch(plan.enrollments());
    assert!(results.iter().all(Result::is_ok), "fresh ids enroll");
    Arc::new(VerifierHandler::new(verifier))
}

/// Per-device request list: the auth trajectory plus a final
/// `QueryVerdict`, so flag-state answers are part of the equivalence
/// surface too.
fn device_requests(plan: &TrafficPlan) -> Vec<(u64, Vec<Request>)> {
    plan.devices
        .iter()
        .map(|device| {
            let mut requests: Vec<Request> = device
                .requests
                .iter()
                .cloned()
                .map(Request::Authenticate)
                .collect();
            requests.push(Request::QueryVerdict {
                device_id: device.device_id,
            });
            (device.device_id, requests)
        })
        .collect()
}

/// Replays the plan over real sockets, one connection per device,
/// strictly request/response, returning every raw response payload in
/// order.
fn replay_sequential(plan: &TrafficPlan, addr: SocketAddr) -> Vec<Vec<u8>> {
    let mut responses = Vec::new();
    for (_, requests) in device_requests(plan) {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay"); // two small writes per frame
        let write_half = stream.try_clone().expect("clone");
        let mut writer = FrameWriter::new(write_half);
        let mut reader = FrameReader::new(stream);
        for request in &requests {
            writer.write_request(request).expect("send");
            let payload = reader
                .read_frame()
                .expect("read")
                .expect("server answers every request");
            responses.push(payload);
        }
    }
    responses
}

/// Replays the plan over real sockets with each device's whole request
/// burst pipelined before any response is read.
fn replay_pipelined(plan: &TrafficPlan, addr: SocketAddr) -> Vec<Vec<u8>> {
    let mut responses = Vec::new();
    for (_, requests) in device_requests(plan) {
        let mut burst = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut burst);
            for request in &requests {
                writer.write_request(request).expect("encode");
            }
        }
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.write_all(&burst).expect("send burst");
        let mut reader = FrameReader::new(stream);
        for _ in &requests {
            responses.push(
                reader
                    .read_frame()
                    .expect("read")
                    .expect("server answers every pipelined request"),
            );
        }
    }
    responses
}

/// Replays the plan through the loopback transport (full codec, no
/// sockets), re-encoding each decoded response — the codec is
/// canonical, so these bytes are directly comparable to socket bytes.
fn replay_loopback(plan: &TrafficPlan, handler: Arc<dyn RequestHandler>) -> Vec<Vec<u8>> {
    let mut transport = LoopbackTransport::new(handler);
    let mut responses = Vec::new();
    let mut scratch = Vec::new();
    for (_, requests) in device_requests(plan) {
        for request in &requests {
            RequestRef::encode_into(&request.as_ref(), &mut scratch);
            let response = transport
                .roundtrip_frame(&scratch)
                .expect("loopback cannot fail");
            responses.push(response.encode());
        }
    }
    responses
}

#[test]
fn all_backends_serve_bit_for_bit_identical_responses() {
    let plan = TrafficPlan::build(&spec());
    assert!(
        plan.attackers().count() >= 2,
        "equivalence must cover attacked devices"
    );

    let blocking_server =
        TcpServer::spawn("127.0.0.1:0", enrolled_handler(&plan, 4), 3).expect("bind blocking");
    let blocking = replay_sequential(&plan, blocking_server.local_addr());
    blocking_server.shutdown();

    let evented_server = EventedServer::spawn(
        "127.0.0.1:0",
        enrolled_handler(&plan, 4),
        EventedConfig::default(),
    )
    .expect("bind evented");
    let evented = replay_sequential(&plan, evented_server.local_addr());
    evented_server.shutdown();

    let loopback = replay_loopback(&plan, enrolled_handler(&plan, 4));

    assert_eq!(
        blocking.len(),
        plan.total_requests() + plan.devices.len(),
        "one answer per request plus one flag query per device"
    );
    assert_eq!(blocking, evented, "blocking vs evented response bytes");
    assert_eq!(blocking, loopback, "socket vs loopback response bytes");

    // The shared byte stream carries the attack outcome: every
    // attacked device drew a DeviceFlagged wire error, no benign
    // device did, and the final flag queries agree.
    let mut cursor = 0;
    for device in &plan.devices {
        let span = &blocking[cursor..cursor + device.requests.len() + 1];
        cursor += device.requests.len() + 1;
        let flagged = span[..span.len() - 1].iter().any(|payload| {
            matches!(
                Response::decode(payload),
                Ok(Response::Error {
                    code: ErrorCode::DeviceFlagged,
                    ..
                })
            )
        });
        let flag_info = match Response::decode(span.last().unwrap()) {
            Ok(Response::FlagInfo { flagged }) => flagged,
            other => panic!("final answer must be FlagInfo, got {other:?}"),
        };
        match device.role {
            Role::LisaAttacker => {
                assert!(
                    flagged,
                    "attacker {} never rejected at the wire",
                    device.device_id
                );
                assert!(
                    matches!(flag_info, Some((_, WireFlagReason::HelperMismatch))),
                    "attacker {} flag info: {flag_info:?}",
                    device.device_id
                );
            }
            Role::Benign => {
                assert!(!flagged, "benign {} rejected at the wire", device.device_id);
                assert_eq!(flag_info, None, "benign {} flagged", device.device_id);
            }
        }
    }
}

#[test]
fn pipelined_replay_is_byte_identical_to_sequential() {
    let plan = TrafficPlan::build(&spec());

    let sequential_server = EventedServer::spawn(
        "127.0.0.1:0",
        enrolled_handler(&plan, 4),
        EventedConfig::default(),
    )
    .expect("bind");
    let sequential = replay_sequential(&plan, sequential_server.local_addr());
    sequential_server.shutdown();

    let pipelined_server = EventedServer::spawn(
        "127.0.0.1:0",
        enrolled_handler(&plan, 4),
        EventedConfig::default(),
    )
    .expect("bind");
    let pipelined = replay_pipelined(&plan, pipelined_server.local_addr());
    pipelined_server.shutdown();

    assert_eq!(
        sequential, pipelined,
        "pipelining may change scheduling, never answers"
    );
}

/// Crash-recovery equivalence: a verifier recovered from its WAL after
/// a crash serves the same traffic **bit-for-bit identically** to one
/// that never crashed.
///
/// Phase 1 replays the full plan (latching every attacker's flag, all
/// WAL-logged) through a durable stack and an in-memory control,
/// asserting durable logging never changes an answer. The durable
/// stack then "crashes" (dropped without compaction or explicit sync)
/// and is recovered from disk. Recovery must restore every flag with
/// its exact `(at, reason)`, and a second full replay over the
/// recovered stack must match the never-crashed control byte for byte
/// — including the `DeviceFlagged` wire errors the quarantined
/// attackers now draw on every request.
#[test]
fn recovered_registry_replays_bit_for_bit_identically() {
    let plan = TrafficPlan::build(&spec());
    let dir = std::env::temp_dir().join(format!("ropuf-equiv-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Never-crashed control.
    let control = Arc::new(Verifier::new(4, DetectorConfig::default()));
    let results = control.enroll_batch(plan.enrollments());
    assert!(results.iter().all(Result::is_ok), "fresh ids enroll");

    // Durable stack: same fleet, every mutation write-ahead logged.
    let (durable, _) =
        Verifier::open_durable(&dir, 4, DetectorConfig::default(), StoreOptions::default())
            .expect("open durable store");
    let durable = Arc::new(durable);
    let results = durable.enroll_batch(plan.enrollments());
    assert!(results.iter().all(Result::is_ok), "fresh ids enroll");

    let control_phase1 = replay_loopback(&plan, Arc::new(VerifierHandler::new(control.clone())));
    let durable_phase1 = replay_loopback(&plan, Arc::new(VerifierHandler::new(durable.clone())));
    assert_eq!(
        control_phase1, durable_phase1,
        "durable logging must not change answers"
    );
    drop(durable); // crash: no compaction, no explicit sync — WAL only

    let (recovered, report) =
        Verifier::open_durable(&dir, 4, DetectorConfig::default(), StoreOptions::default())
            .expect("recovery");
    assert_eq!(report.enrolls_applied as usize, plan.devices.len());
    assert!(report.torn_tail.is_none(), "clean shutdown, clean log");
    assert_eq!(
        report.flags_applied,
        plan.attackers().count() as u64,
        "one flag transition per attacker was logged and replayed"
    );

    // Flag persistence across the crash, exact to (at, reason) — the
    // silent detector-state reset of the v1 snapshot path must not
    // exist on the durable path.
    for device in &plan.devices {
        assert_eq!(
            recovered.flag_info(device.device_id),
            control.flag_info(device.device_id),
            "flag of device {} diverged across recovery",
            device.device_id
        );
    }

    let recovered_phase2 =
        replay_loopback(&plan, Arc::new(VerifierHandler::new(Arc::new(recovered))));
    let control_phase2 = replay_loopback(&plan, Arc::new(VerifierHandler::new(control)));
    assert_eq!(
        recovered_phase2, control_phase2,
        "replay over the recovered registry diverged from never-crashed"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry must be free at the wire: a server tracing **every**
/// request (threshold zero, so the ring and every histogram take the
/// maximum instrumentation hit) with the time-series sampler cutting
/// points as fast as it can answers bit-for-bit identically to one
/// running the default config. Observability is a read-side overlay —
/// it may never perturb a served byte.
#[test]
fn full_tracing_does_not_change_the_byte_stream() {
    let plan = TrafficPlan::build(&spec());

    let default_server = EventedServer::spawn(
        "127.0.0.1:0",
        enrolled_handler(&plan, 4),
        EventedConfig::default(),
    )
    .expect("bind");
    let default_bytes = replay_sequential(&plan, default_server.local_addr());
    default_server.shutdown();

    let traced_server = EventedServer::spawn(
        "127.0.0.1:0",
        enrolled_handler(&plan, 4),
        EventedConfig {
            slow_trace_threshold: Duration::ZERO,
            trace_capacity: 16, // force wraparound under the full plan
            // The sampler snapshots the registry concurrently with
            // serving at the fastest interval it supports.
            sample_interval: Duration::from_millis(1),
            ..EventedConfig::default()
        },
    )
    .expect("bind");
    let traced_bytes = replay_sequential(&plan, traced_server.local_addr());
    // Every request was slower than the zero threshold, so the ring
    // really was exercised (wrapping well past its 16 slots). A record
    // is finalized when its response bytes drain to the socket, a
    // moment after the client reads them — hence the bounded wait.
    let expected = traced_bytes.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(5);
    while traced_server.telemetry().trace_snapshot().recorded < expected
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        traced_server.telemetry().trace_snapshot().recorded,
        expected,
        "threshold zero must trace every request"
    );
    // The concurrent sampler really did cut points while serving. (The
    // exact telescoping property is proven in `metrics_props`; here the
    // ring may have wrapped, so only the upper bound is asserted.)
    let probe = Instant::now();
    while traced_server.telemetry().timeseries_snapshot().sampled == 0
        && probe.elapsed() < Duration::from_secs(5)
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    let series = traced_server.telemetry().timeseries_snapshot();
    assert!(series.sampled > 0, "sampler never cut a point");
    assert!(
        series.points.iter().map(|p| p.requests).sum::<u64>() <= expected,
        "surviving series deltas cannot exceed the served-request total"
    );
    traced_server.shutdown();

    assert_eq!(
        default_bytes, traced_bytes,
        "tracing every request must not change a single served byte"
    );

    // The blocking backend under the same traffic also agrees (its
    // telemetry is always on — parity with the pre-telemetry suite).
    let blocking_server =
        TcpServer::spawn("127.0.0.1:0", enrolled_handler(&plan, 4), 3).expect("bind blocking");
    let blocking_bytes = replay_sequential(&plan, blocking_server.local_addr());
    assert_eq!(
        blocking_server.requests_served(),
        blocking_bytes.len() as u64,
        "blocking backend counts exactly one request per answer"
    );
    blocking_server.shutdown();
    assert_eq!(default_bytes, blocking_bytes, "blocking vs evented");
}

#[test]
fn shard_count_does_not_change_the_byte_stream() {
    let plan = TrafficPlan::build(&spec());
    let mut streams = Vec::new();
    for shards in [1, 4, 16] {
        let server = EventedServer::spawn(
            "127.0.0.1:0",
            enrolled_handler(&plan, shards),
            EventedConfig::default(),
        )
        .expect("bind");
        streams.push(replay_sequential(&plan, server.local_addr()));
        server.shutdown();
    }
    assert_eq!(streams[0], streams[1], "1 vs 4 shards");
    assert_eq!(streams[0], streams[2], "1 vs 16 shards");
}

/// Loop topology equivalence: however the evented server is sharded —
/// one loop or four, per-loop `SO_REUSEPORT` accept queues or one
/// shared listener — the served bytes are identical, sequential and
/// pipelined alike. Multi-loop is a scheduling optimization; it may
/// never leak into an answer.
#[test]
fn loop_topology_does_not_change_the_byte_stream() {
    let plan = TrafficPlan::build(&spec());
    let mut sequential_streams = Vec::new();
    let mut pipelined_streams = Vec::new();
    for loops in [1usize, 4] {
        for reuseport in [true, false] {
            let config = EventedConfig {
                loops,
                reuseport,
                ..EventedConfig::default()
            };
            // Fresh stack per replay: the plan's attack traffic latches
            // flags, so reusing a server would change later answers.
            let server = EventedServer::spawn("127.0.0.1:0", enrolled_handler(&plan, 4), config)
                .expect("bind");
            sequential_streams.push((
                (loops, reuseport),
                replay_sequential(&plan, server.local_addr()),
            ));
            server.shutdown();
            let server = EventedServer::spawn("127.0.0.1:0", enrolled_handler(&plan, 4), config)
                .expect("bind");
            pipelined_streams.push((
                (loops, reuseport),
                replay_pipelined(&plan, server.local_addr()),
            ));
            server.shutdown();
        }
    }
    let (baseline_key, baseline) = &sequential_streams[0];
    for (key, stream) in &sequential_streams[1..] {
        assert_eq!(
            baseline, stream,
            "sequential bytes diverged: {baseline_key:?} vs {key:?}"
        );
    }
    for (key, stream) in &pipelined_streams {
        assert_eq!(
            baseline, stream,
            "pipelined bytes diverged under topology {key:?}"
        );
    }
}
