//! Wire-torture suite: hostile and degenerate byte-stream behavior
//! against **both** server backends.
//!
//! Every scenario that is about protocol correctness (byte-at-a-time
//! delivery, mid-frame disconnects, oversized frames, pipelining) runs
//! against the blocking worker-pool server *and* the evented epoll
//! server through one parametrized harness — the two backends must be
//! indistinguishable at the wire. Scenarios about resource policy
//! (slow-loris eviction, idle eviction, backpressure, churn gauges)
//! target the evented server, which is the backend that defines those
//! policies.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ropuf_proto::{
    ErrorCode, FrameReader, FrameWriter, Request, Response, MAX_FRAME, PROTOCOL_VERSION,
};
use ropuf_server::{EventedConfig, EventedServer, RequestHandler, TcpServer, VerifierHandler};
use ropuf_verifier::{DetectorConfig, Verifier};

fn handler() -> Arc<dyn RequestHandler> {
    let verifier = Arc::new(Verifier::new(4, DetectorConfig::default()));
    Arc::new(VerifierHandler::new(verifier))
}

/// Runs `scenario` against a fresh instance of each backend — the
/// blocking pool, the single-loop evented server, and a four-loop
/// evented server with per-loop `SO_REUSEPORT` accept queues (the
/// tail-latency topology): hostile bytes must be handled identically
/// whichever loop the kernel hashes the connection onto.
fn for_each_backend(scenario: impl Fn(&str, SocketAddr)) {
    let blocking = TcpServer::spawn("127.0.0.1:0", handler(), 2).expect("bind blocking");
    scenario("blocking", blocking.local_addr());
    blocking.shutdown();

    let evented = EventedServer::spawn("127.0.0.1:0", handler(), EventedConfig::default())
        .expect("bind evented");
    scenario("evented", evented.local_addr());
    evented.shutdown();

    let multi_loop = EventedServer::spawn(
        "127.0.0.1:0",
        handler(),
        EventedConfig {
            loops: 4,
            reuseport: true,
            ..EventedConfig::default()
        },
    )
    .expect("bind multi-loop evented");
    scenario("evented-multiloop", multi_loop.local_addr());
    multi_loop.shutdown();
}

fn hello_frame() -> Vec<u8> {
    let mut wire = Vec::new();
    FrameWriter::new(&mut wire)
        .write_request(&Request::Hello {
            protocol: PROTOCOL_VERSION,
            client: "torture".into(),
        })
        .unwrap();
    wire
}

/// Reads one response off a raw stream, panicking on EOF.
fn read_response(stream: &mut TcpStream) -> Response {
    FrameReader::new(stream)
        .read_response()
        .expect("well-formed response")
        .expect("server must answer before closing")
}

/// Waits (bounded) until reading the stream reports EOF / reset,
/// i.e. the server closed the connection.
fn assert_closed_within(stream: &mut TcpStream, window: Duration) {
    stream
        .set_read_timeout(Some(window))
        .expect("set read timeout");
    let mut buf = [0u8; 64];
    let start = Instant::now();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // clean EOF: evicted
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return,
            Ok(_) => {} // stray bytes; keep reading
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("connection still open after {:?}", start.elapsed())
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
}

#[test]
fn byte_at_a_time_delivery_is_reassembled() {
    for_each_backend(|backend, addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        for byte in hello_frame() {
            stream.write_all(&[byte]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        match read_response(&mut stream) {
            Response::HelloOk { protocol, .. } => assert_eq!(protocol, PROTOCOL_VERSION),
            other => panic!("[{backend}] unexpected {other:?}"),
        }
    });
}

#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    for_each_backend(|backend, addr| {
        // A burst of peers that declare a frame and vanish mid-payload
        // (and one that vanishes mid-header).
        for i in 0..20 {
            let mut stream = TcpStream::connect(addr).unwrap();
            if i % 2 == 0 {
                stream.write_all(&100u32.to_le_bytes()).unwrap();
                stream.write_all(&[0xAA; 10]).unwrap();
            } else {
                stream.write_all(&[0x07, 0x00]).unwrap(); // half a header
            }
            drop(stream); // RST/EOF mid-frame
        }
        // The server survived and still serves well-formed traffic.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&hello_frame()).unwrap();
        assert!(
            matches!(read_response(&mut stream), Response::HelloOk { .. }),
            "[{backend}] server must keep serving after mid-frame disconnects"
        );
    });
}

#[test]
fn oversized_frame_is_rejected_with_a_typed_error() {
    for_each_backend(|backend, addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        match read_response(&mut stream) {
            Response::Error { code, .. } => assert_eq!(
                code,
                ErrorCode::MalformedRequest,
                "[{backend}] oversize must be typed"
            ),
            other => panic!("[{backend}] unexpected {other:?}"),
        }
        // And the connection is closed afterwards — the stream cannot
        // be re-synchronized once a forged length was declared.
        assert_closed_within(&mut stream, Duration::from_secs(2));
    });
}

#[test]
fn garbage_payload_is_rejected_with_a_typed_error() {
    for_each_backend(|backend, addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        let payload = [0x55u8, 1, 2, 3, 4];
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        match read_response(&mut stream) {
            Response::Error { code, .. } => assert_eq!(
                code,
                ErrorCode::MalformedRequest,
                "[{backend}] garbage must be typed"
            ),
            other => panic!("[{backend}] unexpected {other:?}"),
        }
        assert_closed_within(&mut stream, Duration::from_secs(2));
    });
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    for_each_backend(|backend, addr| {
        let count = 64u64;
        // Hello + a run of QueryVerdicts for distinct unknown ids, all
        // written in a single burst before reading anything back.
        let mut burst = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut burst);
            writer
                .write_request(&Request::Hello {
                    protocol: PROTOCOL_VERSION,
                    client: "pipeline".into(),
                })
                .unwrap();
            for id in 0..count {
                writer
                    .write_request(&Request::QueryVerdict {
                        device_id: 1000 + id,
                    })
                    .unwrap();
            }
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&burst).unwrap();

        let read_half = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(read_half);
        assert!(
            matches!(
                reader.read_response().unwrap(),
                Some(Response::HelloOk { .. })
            ),
            "[{backend}] first answer is the hello"
        );
        for id in 0..count {
            match reader.read_response().unwrap() {
                Some(Response::Error { code, detail }) => {
                    assert_eq!(code, ErrorCode::UnknownDevice);
                    assert!(
                        detail.contains(&(1000 + id).to_string()),
                        "[{backend}] answer out of order: wanted id {}, got {detail:?}",
                        1000 + id
                    );
                }
                other => panic!("[{backend}] unexpected {other:?}"),
            }
        }
    });
}

// ── Evented-only resource policies ──────────────────────────────────

fn spawn_evented(config: EventedConfig) -> EventedServer {
    EventedServer::spawn("127.0.0.1:0", handler(), config).expect("bind evented")
}

#[test]
fn slow_loris_partial_header_is_evicted() {
    let server = spawn_evented(EventedConfig {
        frame_timeout: Duration::from_millis(80),
        ..EventedConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Two bytes of a length prefix, then silence: a classic loris.
    stream.write_all(&[0x10, 0x00]).unwrap();
    assert_closed_within(&mut stream, Duration::from_secs(3));
    assert_eq!(server.evictions().1, 1, "counted as a slow-frame eviction");
    // A trickler is evicted too: one byte per 30 ms never finishes a
    // 16-byte frame inside an 80 ms window, even though each byte
    // individually looks like progress.
    let mut trickler = TcpStream::connect(server.local_addr()).unwrap();
    trickler.write_all(&16u32.to_le_bytes()).unwrap();
    let evicted_by = Instant::now() + Duration::from_secs(3);
    trickler
        .set_read_timeout(Some(Duration::from_millis(5)))
        .unwrap();
    let mut evicted = false;
    while Instant::now() < evicted_by {
        if trickler.write_all(&[0xAB]).is_err() {
            evicted = true; // EPIPE: server closed on us
            break;
        }
        let mut buf = [0u8; 8];
        match trickler.read(&mut buf) {
            Ok(0) => {
                evicted = true;
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                evicted = true;
                break;
            }
            _ => {}
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(evicted, "a mid-frame trickler must not hold a connection");
    server.shutdown();
}

#[test]
fn idle_connection_is_evicted() {
    let server = spawn_evented(EventedConfig {
        idle_timeout: Duration::from_millis(80),
        ..EventedConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A fully served request re-arms the idle timer…
    stream.write_all(&hello_frame()).unwrap();
    assert!(matches!(
        read_response(&mut stream),
        Response::HelloOk { .. }
    ));
    // …then silence gets the connection evicted.
    assert_closed_within(&mut stream, Duration::from_secs(3));
    assert!(server.evictions().0 >= 1, "counted as an idle eviction");
    server.shutdown();
}

#[test]
fn backpressure_pauses_reading_without_dropping_responses() {
    // Tiny high-water mark so a modest pipeline trips it.
    let server = spawn_evented(EventedConfig {
        max_write_buffer: 2 * 1024,
        ..EventedConfig::default()
    });
    let count = 400u64;
    let mut burst = Vec::new();
    {
        let mut writer = FrameWriter::new(&mut burst);
        for id in 0..count {
            writer
                .write_request(&Request::QueryVerdict { device_id: id })
                .unwrap();
        }
    }
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&burst).unwrap();
    // Let the server run into the high-water mark before we read a
    // single byte back.
    std::thread::sleep(Duration::from_millis(100));
    let read_half = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(read_half);
    for id in 0..count {
        match reader.read_response().unwrap() {
            Some(Response::Error { code, detail }) => {
                assert_eq!(code, ErrorCode::UnknownDevice);
                assert!(detail.contains(&id.to_string()), "in order: {detail:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(server.requests_served(), count);
    server.shutdown();
}

#[test]
fn connection_churn_returns_the_gauge_to_zero() {
    let server = spawn_evented(EventedConfig::default());
    let addr = server.local_addr();
    let churn = 150;
    for i in 0..churn {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&hello_frame()).unwrap();
        assert!(
            matches!(read_response(&mut stream), Response::HelloOk { .. }),
            "churned connection {i} must be served"
        );
    }
    assert_eq!(server.accepted_total(), churn);
    assert_eq!(server.requests_served(), churn);
    // Closes are observed on the server's next readiness pass.
    let deadline = Instant::now() + Duration::from_secs(3);
    while server.open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.open_connections(), 0, "all churned sockets reaped");
    server.shutdown();
}

#[test]
fn many_concurrent_connections_are_served() {
    // A held-open fan: every connection stays established while each
    // takes its turn exchanging requests — the shape the blocking
    // worker pool cannot serve beyond its thread count.
    let server = spawn_evented(EventedConfig::default());
    let addr = server.local_addr();
    let fan = 512;
    let mut streams: Vec<TcpStream> = (0..fan)
        .map(|_| TcpStream::connect(addr).expect("connect fan"))
        .collect();
    // All connections established simultaneously.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() < fan && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.open_connections(), fan, "all held open at once");
    for (i, stream) in streams.iter_mut().enumerate() {
        stream.write_all(&hello_frame()).unwrap();
        assert!(
            matches!(read_response(stream), Response::HelloOk { .. }),
            "held connection {i} must be served"
        );
    }
    assert_eq!(server.requests_served(), fan as u64);
    server.shutdown();
}

#[test]
fn held_fan_spreads_across_reuseport_loops() {
    // The same held-open fan against the multi-loop topology: the
    // kernel hashes the connections across per-loop accept queues,
    // every one is served, and the loops really did share the work —
    // with 256 distinct 4-tuples over 2 queues, a topology where one
    // loop accepted everything means reuseport binding is broken.
    let server = spawn_evented(EventedConfig {
        loops: 2,
        reuseport: true,
        ..EventedConfig::default()
    });
    let addr = server.local_addr();
    let fan = 256;
    let mut streams: Vec<TcpStream> = (0..fan)
        .map(|_| TcpStream::connect(addr).expect("connect fan"))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.open_connections() < fan && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.open_connections(), fan, "all held open at once");
    let mut seen_loops = std::collections::HashSet::new();
    for (i, stream) in streams.iter_mut().enumerate() {
        let mut writer = FrameWriter::new(stream.try_clone().unwrap());
        writer.write_request(&Request::LoopInfo).unwrap();
        match read_response(stream) {
            Response::LoopInfoOk { loop_id, loops } => {
                assert_eq!(loops, 2);
                assert!(loop_id < 2, "connection {i} reported loop {loop_id}");
                seen_loops.insert(loop_id);
            }
            other => panic!("connection {i}: unexpected {other:?}"),
        }
    }
    assert_eq!(
        seen_loops.len(),
        2,
        "kernel never spread 256 connections across 2 accept queues"
    );
    assert_eq!(server.requests_served(), fan as u64);
    server.shutdown();
}
