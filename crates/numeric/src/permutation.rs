//! Permutations of RO indices and their binary codings.
//!
//! The group-based RO PUF (paper Section V, Table I) turns the frequency
//! order of the ROs inside a group into bits in two ways:
//!
//! * **Compact coding** — the lexicographic rank of the order written in
//!   `⌈log₂(g!)⌉` bits (factorial number system / Lehmer code).
//! * **Kendall coding** — one bit per RO pair `(u, v)` with `u < v`
//!   (lexicographic pair order), set to 1 iff `v` precedes `u` in the order.
//!   Adjacent-swap errors flip exactly one Kendall bit, which is why the
//!   paper prefers it in front of the ECC.
//!
//! Both codings are implemented here together with rank/unrank utilities and
//! the Kendall tau distance.

use std::fmt;

/// A permutation of `0..n`, stored in one-line notation: `perm[k]` is the
/// element at position `k`.
///
/// For RO groups the convention throughout the workspace is *descending
/// frequency order*: `perm[0]` is the (local index of the) fastest RO.
///
/// # Examples
///
/// ```
/// use ropuf_numeric::Permutation;
///
/// let p = Permutation::sorting_desc(&[3.0, 9.0, 5.0]);
/// // 9.0 (index 1) is fastest, then 5.0 (index 2), then 3.0 (index 0)
/// assert_eq!(p.as_slice(), &[1, 2, 0]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    perm: Vec<usize>,
}

/// Error returned by [`Permutation::from_slice`] for non-permutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPermutationError;

impl fmt::Display for InvalidPermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice is not a permutation of 0..n")
    }
}

impl std::error::Error for InvalidPermutationError {}

impl Permutation {
    /// The identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            perm: (0..n).collect(),
        }
    }

    /// Validates and wraps a one-line-notation slice.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPermutationError`] when the slice is not a
    /// permutation of `0..len`.
    pub fn from_slice(perm: &[usize]) -> Result<Self, InvalidPermutationError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &v in perm {
            if v >= n || seen[v] {
                return Err(InvalidPermutationError);
            }
            seen[v] = true;
        }
        Ok(Self {
            perm: perm.to_vec(),
        })
    }

    /// The permutation that sorts `values` into **descending** order:
    /// element `k` of the result is the index of the `k`-th largest value.
    /// Ties are broken by index (stable), mirroring a comparator that
    /// returns an arbitrary-but-fixed bit for Δf = 0.
    pub fn sorting_desc(values: &[f64]) -> Self {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| {
            values[b]
                .partial_cmp(&values[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Self { perm: idx }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// One-line notation view.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Position of element `e` in the order.
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.len()`.
    pub fn position_of(&self, e: usize) -> usize {
        assert!(e < self.perm.len(), "element out of range");
        self.perm
            .iter()
            .position(|&v| v == e)
            .expect("valid permutation")
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0; self.perm.len()];
        for (pos, &e) in self.perm.iter().enumerate() {
            inv[e] = pos;
        }
        Permutation { perm: inv }
    }

    /// Lexicographic rank of this permutation among all `n!` permutations
    /// (the paper's *compact coding*, Table I column 2).
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (rank would overflow `u64`).
    pub fn lehmer_rank(&self) -> u64 {
        let n = self.perm.len();
        assert!(n <= 20, "rank overflows u64 beyond 20 elements");
        let mut rank: u64 = 0;
        for i in 0..n {
            let smaller_after = self.perm[i + 1..]
                .iter()
                .filter(|&&v| v < self.perm[i])
                .count() as u64;
            rank += smaller_after * factorial(n - 1 - i);
        }
        rank
    }

    /// Reconstructs the permutation of size `n` with the given lexicographic
    /// rank (inverse of [`Self::lehmer_rank`]).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n!` or `n > 20`.
    pub fn from_lehmer_rank(rank: u64, n: usize) -> Self {
        assert!(n <= 20, "rank overflows u64 beyond 20 elements");
        assert!(rank < factorial(n), "rank out of range");
        let mut avail: Vec<usize> = (0..n).collect();
        let mut rank = rank;
        let mut perm = Vec::with_capacity(n);
        for i in 0..n {
            let f = factorial(n - 1 - i);
            let idx = (rank / f) as usize;
            rank %= f;
            perm.push(avail.remove(idx));
        }
        Self { perm }
    }

    /// Kendall coding: one bit per pair `(u, v)`, `u < v`, in lexicographic
    /// pair order `(0,1), (0,2), …, (n-2,n-1)`; bit = 1 iff `v` precedes `u`
    /// (i.e. the pair is *inverted* relative to the identity).
    ///
    /// This matches the paper's Table I exactly with A=0, B=1, C=2, D=3.
    pub fn kendall_bits(&self) -> Vec<bool> {
        let n = self.perm.len();
        let inv = self.inverse();
        let mut bits = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n {
            for v in u + 1..n {
                bits.push(inv.perm[v] < inv.perm[u]);
            }
        }
        bits
    }

    /// Reconstructs a permutation from Kendall bits by counting, for every
    /// element, how many pairwise comparisons it wins, then sorting by win
    /// count.
    ///
    /// Returns `Some` iff the bit pattern is **consistent** (transitive),
    /// i.e. the win counts are exactly `{n-1, n-2, …, 0}` and the resulting
    /// order reproduces the input bits. For inconsistent patterns (possible
    /// after uncorrected errors) `None` is returned; callers can fall back
    /// to [`Self::nearest_from_kendall_bits`].
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a triangular number `n(n-1)/2`.
    pub fn from_kendall_bits(bits: &[bool]) -> Option<Self> {
        let n = order_from_pair_count(bits.len());
        let mut wins = vec![0usize; n];
        let mut k = 0;
        for u in 0..n {
            for v in u + 1..n {
                if bits[k] {
                    wins[v] += 1; // v precedes u: v wins the comparison
                } else {
                    wins[u] += 1;
                }
                k += 1;
            }
        }
        // A total order gives distinct win counts n-1 … 0.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
        for (pos, &e) in idx.iter().enumerate() {
            if wins[e] != n - 1 - pos {
                return None;
            }
        }
        let p = Permutation { perm: idx };
        if p.kendall_bits() == bits {
            Some(p)
        } else {
            None
        }
    }

    /// Best-effort decode of possibly inconsistent Kendall bits: sorts by
    /// win count with index tie-break. For consistent inputs this equals
    /// [`Self::from_kendall_bits`]; for inconsistent inputs it returns a
    /// nearby total order (a Borda-count approximation of the Kemeny
    /// optimum).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a triangular number.
    pub fn nearest_from_kendall_bits(bits: &[bool]) -> Self {
        let n = order_from_pair_count(bits.len());
        let mut wins = vec![0usize; n];
        let mut k = 0;
        for u in 0..n {
            for v in u + 1..n {
                if bits[k] {
                    wins[v] += 1;
                } else {
                    wins[u] += 1;
                }
                k += 1;
            }
        }
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
        Permutation { perm: idx }
    }

    /// Kendall tau distance (number of discordant pairs) to another
    /// permutation of the same size.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn kendall_distance(&self, other: &Permutation) -> usize {
        assert_eq!(self.len(), other.len(), "size mismatch");
        self.kendall_bits()
            .iter()
            .zip(other.kendall_bits())
            .filter(|&(a, b)| *a != b)
            .count()
    }

    /// Applies the permutation to a slice: element at position `k` of the
    /// output is `values[self.as_slice()[k]]`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn apply<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "size mismatch");
        self.perm.iter().map(|&i| values[i].clone()).collect()
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.perm)
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Letter form for small permutations (A=0…), as in the paper's
        // Table I; falls back to numbers beyond 26 elements.
        if self.perm.len() <= 26 {
            for &e in &self.perm {
                write!(f, "{}", (b'A' + e as u8) as char)?;
            }
            Ok(())
        } else {
            write!(f, "{:?}", self.perm)
        }
    }
}

/// `n!` as `u64`.
///
/// # Panics
///
/// Panics if `n > 20`.
pub fn factorial(n: usize) -> u64 {
    assert!(n <= 20, "factorial overflows u64 beyond 20");
    (1..=n as u64).product()
}

/// Number of bits of the compact coding of a `g`-element group:
/// `⌈log₂(g!)⌉`.
pub fn compact_code_bits(g: usize) -> usize {
    if g < 2 {
        return 0;
    }
    let f = factorial(g);
    64 - (f - 1).leading_zeros() as usize
}

/// Number of Kendall bits of a `g`-element group: `g(g-1)/2`.
pub fn kendall_code_bits(g: usize) -> usize {
    g * (g.saturating_sub(1)) / 2
}

fn order_from_pair_count(pairs: usize) -> usize {
    // Solve n(n-1)/2 = pairs.
    let n = (0.5 + (0.25 + 2.0 * pairs as f64).sqrt()).round() as usize;
    assert_eq!(
        n * n.saturating_sub(1) / 2,
        pairs,
        "bit count {pairs} is not triangular"
    );
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_rank_zero() {
        let p = Permutation::identity(5);
        assert_eq!(p.lehmer_rank(), 0);
        assert!(p.kendall_bits().iter().all(|&b| !b));
    }

    #[test]
    fn sorting_desc_basic() {
        let p = Permutation::sorting_desc(&[1.0, 5.0, 3.0, 4.0]);
        assert_eq!(p.as_slice(), &[1, 3, 2, 0]);
    }

    #[test]
    fn sorting_desc_ties_stable() {
        let p = Permutation::sorting_desc(&[2.0, 2.0, 1.0]);
        assert_eq!(p.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn rank_unrank_roundtrip_exhaustive_n4() {
        for r in 0..24 {
            let p = Permutation::from_lehmer_rank(r, 4);
            assert_eq!(p.lehmer_rank(), r);
        }
    }

    #[test]
    fn lex_rank_order_matches_lex_order() {
        // Rank 0 is identity (ABCD), rank 23 is reversed (DCBA).
        assert_eq!(Permutation::from_lehmer_rank(0, 4).to_string(), "ABCD");
        assert_eq!(Permutation::from_lehmer_rank(23, 4).to_string(), "DCBA");
        assert_eq!(Permutation::from_lehmer_rank(1, 4).to_string(), "ABDC");
    }

    #[test]
    fn table1_spot_checks() {
        // From the paper's Table I: CABD → compact 01100 (=12), Kendall 010100.
        let cabd = Permutation::from_slice(&[2, 0, 1, 3]).unwrap();
        assert_eq!(cabd.to_string(), "CABD");
        assert_eq!(cabd.lehmer_rank(), 12);
        let bits: String = cabd
            .kendall_bits()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        assert_eq!(bits, "010100");

        // ADBC → compact 00100 (=4), Kendall 000011.
        let adbc = Permutation::from_slice(&[0, 3, 1, 2]).unwrap();
        assert_eq!(adbc.lehmer_rank(), 4);
        let bits: String = adbc
            .kendall_bits()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        assert_eq!(bits, "000011");

        // DCBA → compact 10111 (=23), Kendall 111111.
        let dcba = Permutation::from_slice(&[3, 2, 1, 0]).unwrap();
        assert_eq!(dcba.lehmer_rank(), 23);
        assert!(dcba.kendall_bits().iter().all(|&b| b));
    }

    #[test]
    fn kendall_roundtrip_exhaustive_n4() {
        for r in 0..24 {
            let p = Permutation::from_lehmer_rank(r, 4);
            let bits = p.kendall_bits();
            assert_eq!(Permutation::from_kendall_bits(&bits), Some(p));
        }
    }

    #[test]
    fn kendall_inconsistent_detected() {
        // 3 elements, bits for pairs (0,1),(0,2),(1,2):
        // 1,0,1 means 1<0... wait: bit=1 ⇒ second precedes first.
        // (0,1)=1 ⇒ 1 before 0; (0,2)=0 ⇒ 0 before 2; (1,2)=1 ⇒ 2 before 1.
        // Cycle: 1 < 0 < 2 < 1 — inconsistent.
        assert_eq!(Permutation::from_kendall_bits(&[true, false, true]), None);
        // Nearest decode still yields a valid permutation.
        let near = Permutation::nearest_from_kendall_bits(&[true, false, true]);
        assert_eq!(near.len(), 3);
    }

    #[test]
    fn kendall_distance_counts_discordant_pairs() {
        let a = Permutation::identity(4);
        let b = Permutation::from_slice(&[1, 0, 2, 3]).unwrap();
        assert_eq!(a.kendall_distance(&b), 1);
        let c = Permutation::from_slice(&[3, 2, 1, 0]).unwrap();
        assert_eq!(a.kendall_distance(&c), 6);
    }

    #[test]
    fn adjacent_swap_flips_one_kendall_bit() {
        // Paper: "errors mostly occur in form of a flip, e.g. BACD to BCAD";
        // such adjacent transpositions change exactly one Kendall bit.
        let bacd = Permutation::from_slice(&[1, 0, 2, 3]).unwrap();
        let bcad = Permutation::from_slice(&[1, 2, 0, 3]).unwrap();
        assert_eq!(bacd.kendall_distance(&bcad), 1);
    }

    #[test]
    fn inverse_and_position() {
        let p = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for e in 0..4 {
            assert_eq!(p.position_of(e), inv.as_slice()[e]);
        }
    }

    #[test]
    fn apply_permutes_values() {
        let p = Permutation::from_slice(&[2, 0, 1]).unwrap();
        assert_eq!(p.apply(&["a", "b", "c"]), vec!["c", "a", "b"]);
    }

    #[test]
    fn code_lengths() {
        assert_eq!(compact_code_bits(4), 5); // ⌈log2 24⌉
        assert_eq!(kendall_code_bits(4), 6);
        assert_eq!(compact_code_bits(2), 1);
        assert_eq!(kendall_code_bits(2), 1);
        assert_eq!(compact_code_bits(1), 0);
        assert_eq!(kendall_code_bits(1), 0);
        assert_eq!(compact_code_bits(8), 16); // ⌈log2 40320⌉ = 16
    }

    #[test]
    fn from_slice_rejects_non_permutations() {
        assert!(Permutation::from_slice(&[0, 0, 1]).is_err());
        assert!(Permutation::from_slice(&[0, 3]).is_err());
        assert!(Permutation::from_slice(&[1, 2, 0]).is_ok());
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000);
    }
}
