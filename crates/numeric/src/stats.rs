//! Statistics used by the simulator and the attack framework.
//!
//! The paper's attack model (Section VI, Fig. 5) distinguishes helper-data
//! hypotheses by comparing **key-regeneration failure rates**; the number of
//! bit errors at the ECC input is modelled with a (roughly) binomial PDF.
//! This module provides:
//!
//! * descriptive statistics ([`mean`], [`variance`], [`std_dev`]),
//! * the binomial distribution ([`binomial_pmf`], [`binomial_cdf`],
//!   [`binomial_tail`]),
//! * empirical histograms ([`Histogram`]),
//! * Wilson score confidence intervals for proportions
//!   ([`wilson_interval`]), and
//! * a two-proportion z-test ([`two_proportion_z`]) used to decide between
//!   hypotheses H0 and H1.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Natural log of `n!` via `ln Γ(n+1)` (Stirling series for large `n`,
/// exact accumulation below 20).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 20 {
        let mut acc = 0.0;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        return acc;
    }
    // Stirling's series with three correction terms.
    let x = n as f64 + 1.0;
    let inv = 1.0 / x;
    (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + inv / 12.0
        - inv.powi(3) / 360.0
        + inv.powi(5) / 1260.0
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k must not exceed n");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial PMF `P[X = k]` for `X ~ Bin(n, p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `k > n`.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(k <= n, "k must not exceed n");
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Binomial CDF `P[X ≤ k]`.
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, i, p))
        .sum::<f64>()
        .min(1.0)
}

/// Binomial upper tail `P[X > k]` — the probability that more than `k`
/// errors occur, i.e. the key-regeneration **failure probability** of a
/// `t = k` error-correcting block under i.i.d. bit errors.
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    (1.0 - binomial_cdf(n, k, p)).max(0.0)
}

/// An integer-valued empirical histogram (e.g. of error counts at the ECC
/// input, as in the paper's Fig. 5).
///
/// # Examples
///
/// ```
/// use ropuf_numeric::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 2, 3] {
///     h.record(v);
/// }
/// assert_eq!(h.count(2), 2);
/// assert!((h.pdf(2) - 0.5).abs() < 1e-12);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical probability of `value`.
    pub fn pdf(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Empirical probability of observing a value **strictly greater** than
    /// `threshold` — the failure rate of a `t = threshold` ECC.
    pub fn tail_beyond(&self, threshold: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(v, _)| v > threshold)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / self.total as f64
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Empirical mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let s: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        s / self.total as f64
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

/// Wilson score interval for a binomial proportion at the given z value
/// (`z = 1.96` for 95%). Returns `(low, high)`.
///
/// The Wilson interval behaves sanely even for 0 or `n` successes, which
/// matters because nominal failure rates in well-parameterized PUF key
/// generators are near zero.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Two-proportion pooled z-statistic for H0: p₁ = p₂.
///
/// Positive values indicate `successes1/trials1 > successes2/trials2`.
/// Returns `0.0` when either trial count is zero or the pooled proportion is
/// degenerate (0 or 1), in which case the samples carry no evidence of a
/// difference.
pub fn two_proportion_z(successes1: u64, trials1: u64, successes2: u64, trials2: u64) -> f64 {
    if trials1 == 0 || trials2 == 0 {
        return 0.0;
    }
    let (n1, n2) = (trials1 as f64, trials2 as f64);
    let (p1, p2) = (successes1 as f64 / n1, successes2 as f64 / n2);
    let pooled = (successes1 + successes2) as f64 / (n1 + n2);
    let var = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
    if var <= 0.0 {
        return 0.0;
    }
    (p1 - p2) / var.sqrt()
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |err| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(x))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn ln_factorial_exact_small() {
        assert!((ln_factorial(0)).abs() < 1e-12);
        assert!((ln_factorial(1)).abs() < 1e-12);
        assert!((ln_factorial(5) - (120f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_stirling_accurate() {
        // 25! = 1.551121004333098e25
        let exact = 25f64.ln() + ln_factorial(24);
        assert!((ln_factorial(25) - exact).abs() < 1e-9);
        let ln20 = ln_factorial(20);
        let direct: f64 = (2..=20u64).map(|k| (k as f64).ln()).sum();
        assert!((ln20 - direct).abs() < 1e-9, "{ln20} vs {direct}");
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 30;
        let p = 0.13;
        let s: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((s - 1.0).abs() < 1e-10, "sum {s}");
    }

    #[test]
    fn binomial_pmf_known_values() {
        // Bin(4, 0.5): P[X=2] = 6/16
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
        assert!((binomial_pmf(10, 0, 0.1) - 0.9f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn binomial_degenerate_p() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
    }

    #[test]
    fn binomial_tail_is_failure_probability() {
        // With t = n no failure is possible (up to rounding).
        assert!(binomial_tail(8, 8, 0.3) < 1e-12);
        // P[X > 0] = 1 - (1-p)^n
        let p = 0.2;
        let expect = 1.0 - 0.8f64.powi(6);
        assert!((binomial_tail(6, 0, p) - expect).abs() < 1e-12);
    }

    #[test]
    fn tail_monotone_in_error_rate() {
        let a = binomial_tail(63, 5, 0.05);
        let b = binomial_tail(63, 5, 0.10);
        assert!(b > a);
    }

    #[test]
    fn histogram_tail_matches_manual() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 5, 5, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h.max_value(), Some(9));
        assert!((h.tail_beyond(2) - 0.5).abs() < 1e-12);
        assert!((h.tail_beyond(5) - 0.125).abs() < 1e-12);
        assert!((h.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_iter_skips_zero() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(7);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(3, 2), (7, 1)]);
    }

    #[test]
    fn wilson_contains_true_proportion() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        // Zero successes still yields a sane (0, small) interval.
        let (lo0, hi0) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.1);
    }

    #[test]
    fn z_test_detects_difference() {
        let z = two_proportion_z(80, 100, 20, 100);
        assert!(z > 5.0, "z = {z}");
        let z_eq = two_proportion_z(50, 100, 50, 100);
        assert!(z_eq.abs() < 1e-12);
    }

    #[test]
    fn z_test_degenerate_safe() {
        assert_eq!(two_proportion_z(0, 0, 1, 2), 0.0);
        assert_eq!(two_proportion_z(0, 10, 0, 10), 0.0);
        assert_eq!(two_proportion_z(10, 10, 10, 10), 0.0);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
