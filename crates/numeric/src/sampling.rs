//! Random sampling helpers.
//!
//! The offline crate set does not include `rand_distr`, so the Gaussian
//! sampler needed by the RO variability and noise models is implemented here
//! with the Box–Muller transform.

use rand::Rng;

/// A normal distribution `N(mean, std_dev²)` sampled via Box–Muller.
///
/// # Examples
///
/// ```
/// use ropuf_numeric::sampling::Normal;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let n = Normal::new(10.0, 2.0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be finite and non-negative"
        );
        Self { mean, std_dev }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// SplitMix64 finalizer: a full-avalanche, bijective 64-bit mix.
///
/// The workspace's shared deterministic-derivation primitive: campaign
/// fleets derive decorrelated per-device seed streams with it, and the
/// verifier registry uses it to spread sequential device ids uniformly
/// across shards.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fisher–Yates shuffle of a slice (uniform over permutations).
pub fn shuffle<T, R: Rng + ?Sized>(rng: &mut R, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, std_dev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_converge() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = Normal::new(5.0, 3.0);
        let xs = n.sample_n(&mut rng, 50_000);
        assert!((mean(&xs) - 5.0).abs() < 0.1, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 3.0).abs() < 0.1, "std {}", std_dev(&xs));
    }

    #[test]
    fn zero_std_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = Normal::new(-2.5, 0.0);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), -2.5);
        }
    }

    #[test]
    fn standard_normal_tail_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let beyond_2: usize = (0..20_000)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count();
        // P[|Z| > 2] ≈ 4.55%; allow generous slack.
        let frac = beyond_2 as f64 / 20_000.0;
        assert!((0.03..0.07).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<usize> = (0..50).collect();
        shuffle(&mut rng, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let s = sample_indices(&mut rng, 30, 10);
            assert_eq!(s.len(), 10);
            let mut t = s.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 10, "indices must be distinct");
            assert!(s.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First output of the reference SplitMix64 stream seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_overflow_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_indices(&mut rng, 3, 4);
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn negative_std_rejected() {
        Normal::new(0.0, -1.0);
    }
}
