//! Two-dimensional polynomial least-squares regression.
//!
//! This is the mathematical core of the paper's *entropy distiller*
//! (Section V-A): systematic manufacturing variation of an RO array is
//! modelled as a low-degree polynomial surface
//!
//! ```text
//! f(x, y) = Σ_{i=0}^{p} Σ_{j=0}^{i} β_{i,j} · x^(i-j) · y^j
//! ```
//!
//! fitted in the least-mean-squares sense; the residuals are the desired
//! random variation. The coefficient ordering used everywhere in this
//! workspace is exactly the double sum above: `(i, j)` with `i` the total
//! degree, ascending, and `j` ascending within each `i`. Degree `p` yields
//! `(p+1)(p+2)/2` coefficients.

use crate::linalg::{Matrix, SingularMatrixError};
use std::fmt;

/// A bivariate polynomial of bounded total degree, stored as a dense
/// coefficient vector in the paper's `β_{i,j}` ordering.
///
/// # Examples
///
/// ```
/// use ropuf_numeric::Poly2d;
///
/// // f(x, y) = 1 + 2x + 3y
/// let p = Poly2d::from_coefficients(1, vec![1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(p.eval(2.0, 0.5), 1.0 + 4.0 + 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Poly2d {
    degree: usize,
    /// Coefficients β_{i,j}, ordered by total degree `i` then `j`.
    coefficients: Vec<f64>,
}

/// Error produced when constructing or fitting a [`Poly2d`].
#[derive(Debug, Clone, PartialEq)]
pub enum PolyFitError {
    /// The coefficient vector length does not match `(p+1)(p+2)/2`.
    CoefficientCount {
        /// Requested degree.
        degree: usize,
        /// Expected number of coefficients for that degree.
        expected: usize,
        /// Number actually provided.
        got: usize,
    },
    /// Fewer sample points than coefficients, or a rank-deficient design
    /// matrix (e.g. all samples on one line).
    Underdetermined,
}

impl fmt::Display for PolyFitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyFitError::CoefficientCount {
                degree,
                expected,
                got,
            } => write!(
                f,
                "degree {degree} polynomial needs {expected} coefficients, got {got}"
            ),
            PolyFitError::Underdetermined => {
                write!(f, "sample set is underdetermined or rank-deficient")
            }
        }
    }
}

impl std::error::Error for PolyFitError {}

impl From<SingularMatrixError> for PolyFitError {
    fn from(_: SingularMatrixError) -> Self {
        PolyFitError::Underdetermined
    }
}

/// Number of coefficients of a total-degree-`p` bivariate polynomial.
pub fn coefficient_count(degree: usize) -> usize {
    (degree + 1) * (degree + 2) / 2
}

/// Enumerates the exponent pairs `(i - j, j)` of the monomials
/// `x^(i-j) y^j` in the canonical coefficient order.
pub fn monomial_exponents(degree: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(coefficient_count(degree));
    for i in 0..=degree {
        for j in 0..=i {
            out.push((i - j, j));
        }
    }
    out
}

impl Poly2d {
    /// Creates the zero polynomial of the given total degree.
    pub fn zero(degree: usize) -> Self {
        Self {
            degree,
            coefficients: vec![0.0; coefficient_count(degree)],
        }
    }

    /// Creates a polynomial from explicit coefficients in `β_{i,j}` order.
    ///
    /// # Errors
    ///
    /// Returns [`PolyFitError::CoefficientCount`] when the vector length is
    /// not `(degree+1)(degree+2)/2`.
    pub fn from_coefficients(degree: usize, coefficients: Vec<f64>) -> Result<Self, PolyFitError> {
        let expected = coefficient_count(degree);
        if coefficients.len() != expected {
            return Err(PolyFitError::CoefficientCount {
                degree,
                expected,
                got: coefficients.len(),
            });
        }
        Ok(Self {
            degree,
            coefficients,
        })
    }

    /// Fits a degree-`degree` polynomial to samples `(x, y, value)` in the
    /// least-squares sense.
    ///
    /// # Errors
    ///
    /// Returns [`PolyFitError::Underdetermined`] when there are fewer samples
    /// than coefficients or the design matrix is rank-deficient.
    pub fn fit(degree: usize, samples: &[(f64, f64, f64)]) -> Result<Self, PolyFitError> {
        let ncoef = coefficient_count(degree);
        if samples.len() < ncoef {
            return Err(PolyFitError::Underdetermined);
        }
        let exps = monomial_exponents(degree);
        let mut design = Matrix::zeros(samples.len(), ncoef);
        let mut rhs = Vec::with_capacity(samples.len());
        for (r, &(x, y, v)) in samples.iter().enumerate() {
            for (c, &(ex, ey)) in exps.iter().enumerate() {
                design[(r, c)] = x.powi(ex as i32) * y.powi(ey as i32);
            }
            rhs.push(v);
        }
        let coefficients = design.least_squares(&rhs)?;
        Ok(Self {
            degree,
            coefficients,
        })
    }

    /// Total degree `p`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Coefficients in canonical `β_{i,j}` order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Evaluates the polynomial at `(x, y)`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let mut acc = 0.0;
        let mut c = 0;
        for i in 0..=self.degree {
            for j in 0..=i {
                acc += self.coefficients[c] * x.powi((i - j) as i32) * y.powi(j as i32);
                c += 1;
            }
        }
        acc
    }

    /// Residuals `value - poly(x, y)` of a sample set.
    pub fn residuals(&self, samples: &[(f64, f64, f64)]) -> Vec<f64> {
        samples
            .iter()
            .map(|&(x, y, v)| v - self.eval(x, y))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficient_counts() {
        assert_eq!(coefficient_count(0), 1);
        assert_eq!(coefficient_count(1), 3);
        assert_eq!(coefficient_count(2), 6);
        assert_eq!(coefficient_count(3), 10);
    }

    #[test]
    fn exponent_order_matches_paper() {
        // Degree 2: (i,j) = (0,0),(1,0),(1,1),(2,0),(2,1),(2,2)
        // monomials: 1, x, y, x², xy, y²
        assert_eq!(
            monomial_exponents(2),
            vec![(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)]
        );
    }

    #[test]
    fn eval_quadratic() {
        // f = 1 + 2x + 3y + 4x² + 5xy + 6y²
        let p = Poly2d::from_coefficients(2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let (x, y) = (2.0, -1.0);
        let expect = 1.0 + 4.0 - 3.0 + 16.0 - 10.0 + 6.0;
        assert!((p.eval(x, y) - expect).abs() < 1e-12);
    }

    fn grid_samples(f: impl Fn(f64, f64) -> f64) -> Vec<(f64, f64, f64)> {
        let mut s = Vec::new();
        for xi in 0..8 {
            for yi in 0..8 {
                let (x, y) = (xi as f64, yi as f64);
                s.push((x, y, f(x, y)));
            }
        }
        s
    }

    #[test]
    fn fit_recovers_exact_polynomial() {
        let truth = [0.5, -1.0, 2.0, 0.25, -0.5, 1.5];
        let p0 = Poly2d::from_coefficients(2, truth.to_vec()).unwrap();
        let samples = grid_samples(|x, y| p0.eval(x, y));
        let fitted = Poly2d::fit(2, &samples).unwrap();
        for (a, b) in fitted.coefficients().iter().zip(&truth) {
            assert!((a - b).abs() < 1e-8, "coef {a} vs {b}");
        }
    }

    #[test]
    fn fit_higher_degree_nests_lower() {
        // Fitting a plane with a degree-2 model must zero the quadratic terms.
        let samples = grid_samples(|x, y| 3.0 + 0.5 * x - 0.25 * y);
        let fitted = Poly2d::fit(2, &samples).unwrap();
        let c = fitted.coefficients();
        assert!((c[0] - 3.0).abs() < 1e-8);
        assert!((c[1] - 0.5).abs() < 1e-8);
        assert!((c[2] + 0.25).abs() < 1e-8);
        for &q in &c[3..] {
            assert!(q.abs() < 1e-8, "quadratic term {q}");
        }
    }

    #[test]
    fn residuals_of_exact_fit_vanish() {
        let samples = grid_samples(|x, y| 1.0 + x * y);
        let fitted = Poly2d::fit(2, &samples).unwrap();
        for r in fitted.residuals(&samples) {
            assert!(r.abs() < 1e-8);
        }
    }

    #[test]
    fn residuals_sum_to_zero_for_ls_fit() {
        // Least squares with an intercept ⇒ residuals sum to ~0.
        let samples = grid_samples(|x, y| (x * 1.3 + y * 0.7).sin());
        let fitted = Poly2d::fit(3, &samples).unwrap();
        let sum: f64 = fitted.residuals(&samples).iter().sum();
        assert!(sum.abs() < 1e-6, "residual sum {sum}");
    }

    #[test]
    fn underdetermined_rejected() {
        let samples = vec![(0.0, 0.0, 1.0), (1.0, 0.0, 2.0)];
        assert_eq!(Poly2d::fit(2, &samples), Err(PolyFitError::Underdetermined));
    }

    #[test]
    fn rank_deficient_rejected() {
        // All points on the line y = x: x and y columns are linearly
        // dependent with the cross terms.
        let samples: Vec<_> = (0..20).map(|i| (i as f64, i as f64, i as f64)).collect();
        assert_eq!(Poly2d::fit(2, &samples), Err(PolyFitError::Underdetermined));
    }

    #[test]
    fn coefficient_count_mismatch_rejected() {
        let e = Poly2d::from_coefficients(2, vec![0.0; 5]).unwrap_err();
        assert!(matches!(
            e,
            PolyFitError::CoefficientCount {
                expected: 6,
                got: 5,
                ..
            }
        ));
    }
}
