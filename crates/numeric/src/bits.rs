//! A compact, word-backed bit vector.
//!
//! [`BitVec`] is used throughout the workspace for PUF response vectors,
//! ECC codewords, helper-data offsets and derived keys. It stores bits in
//! little-endian order inside `u64` words (bit `i` lives in word `i / 64`,
//! position `i % 64`).

use std::fmt;

/// A growable vector of bits backed by `u64` words.
///
/// # Examples
///
/// ```
/// use ropuf_numeric::BitVec;
///
/// let mut v = BitVec::new();
/// v.push(true);
/// v.push(false);
/// v.push(true);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(format!("{}", v), "101");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = Self::new();
        for b in iter {
            v.push(b);
        }
        v
    }

    /// Creates a bit vector from a byte slice, least-significant bit of
    /// `bytes[0]` first, taking exactly `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > bytes.len() * 8`.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(len <= bytes.len() * 8, "len exceeds available bits");
        Self::from_bools((0..len).map(|i| (bytes[i / 8] >> (i % 8)) & 1 == 1))
    }

    /// Serializes to bytes, least-significant bit first; the final partial
    /// byte (if any) is zero-padded.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Appends a bit.
    pub fn push(&mut self, value: bool) {
        if self.len % 64 == 0 {
            self.words.push(0);
        }
        self.len += 1;
        let i = self.len - 1;
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Appends all bits of `other`.
    pub fn extend_bits(&mut self, other: &BitVec) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "BitVec length mismatch in xor");
        let mut out = self.clone();
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        out
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch in xor");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Hamming distance to another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "BitVec length mismatch in hamming");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Returns the sub-vector `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector.
    pub fn slice(&self, start: usize, len: usize) -> BitVec {
        assert!(start + len <= self.len, "slice out of range");
        Self::from_bools((start..start + len).map(|i| self.get(i)))
    }

    /// Iterates over the bits.
    pub fn iter(&self) -> Iter<'_> {
        Iter { v: self, i: 0 }
    }

    /// Interprets the first `min(len, 64)` bits as a little-endian integer.
    pub fn as_u64(&self) -> u64 {
        if self.len == 0 {
            0
        } else if self.len >= 64 {
            self.words[0]
        } else {
            self.words[0] & ((1u64 << self.len) - 1)
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Borrowing iterator over the bits of a [`BitVec`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    v: &'a BitVec,
    i: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.i < self.v.len {
            let b = self.v.get(self.i);
            self.i += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bools(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}]<{}>", self.len, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let v = BitVec::from_bools(pattern.iter().copied());
        assert_eq!(v.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.len(), 130);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert_eq!(z.hamming(&o), 130);
    }

    #[test]
    fn xor_and_hamming_agree() {
        let a = BitVec::from_bools((0..100).map(|i| i % 2 == 0));
        let b = BitVec::from_bools((0..100).map(|i| i % 4 == 0));
        let x = a.xor(&b);
        assert_eq!(x.count_ones(), a.hamming(&b));
    }

    #[test]
    fn xor_assign_matches_xor() {
        let a = BitVec::from_bools((0..77).map(|i| i % 5 == 1));
        let b = BitVec::from_bools((0..77).map(|i| i % 7 == 2));
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c, a.xor(&b));
    }

    #[test]
    fn byte_roundtrip() {
        let v = BitVec::from_bools((0..19).map(|i| i % 2 == 1));
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 3);
        let w = BitVec::from_bytes(&bytes, 19);
        assert_eq!(v, w);
    }

    #[test]
    fn flip_changes_one_bit() {
        let mut v = BitVec::zeros(70);
        assert!(v.flip(65));
        assert_eq!(v.count_ones(), 1);
        assert!(v.get(65));
        assert!(!v.flip(65));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn slice_extracts_range() {
        let v = BitVec::from_bools((0..40).map(|i| i >= 20));
        let s = v.slice(18, 4);
        assert_eq!(format!("{s}"), "0011");
    }

    #[test]
    fn as_u64_little_endian() {
        let mut v = BitVec::zeros(10);
        v.set(0, true);
        v.set(3, true);
        assert_eq!(v.as_u64(), 0b1001);
    }

    #[test]
    fn display_matches_bits() {
        let v = BitVec::from_bools([true, false, true, true]);
        assert_eq!(v.to_string(), "1011");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(5).get(5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        BitVec::zeros(5).xor(&BitVec::zeros(6));
    }

    #[test]
    fn extend_bits_concatenates() {
        let mut a = BitVec::from_bools([true, false]);
        let b = BitVec::from_bools([false, true, true]);
        a.extend_bits(&b);
        assert_eq!(a.to_string(), "10011");
    }
}
