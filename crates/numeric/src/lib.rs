//! Numeric substrate for the `ropuf` workspace.
//!
//! This crate collects the mathematical building blocks that the rest of the
//! reproduction of *"Key-recovery Attacks on Various RO PUF Constructions via
//! Helper Data Manipulation"* (Delvaux & Verbauwhede, DATE 2014) relies on:
//!
//! * [`bits`] — a compact word-backed bit vector used for PUF responses,
//!   codewords and keys.
//! * [`linalg`] — small dense matrices and a Gaussian-elimination solver,
//!   enough for least-squares normal equations.
//! * [`polyfit`] — two-dimensional polynomial least-squares regression, the
//!   mathematical core of the paper's *entropy distiller* (Section V-A).
//! * [`stats`] — descriptive statistics, the binomial distribution used in
//!   the paper's failure model (Fig. 5), Wilson confidence intervals and a
//!   two-proportion z-test used by the attack framework.
//! * [`permutation`] — permutations of RO indices, Lehmer (factorial number
//!   system) ranking for the paper's *compact coding* and inversion tables
//!   for *Kendall coding* (Table I).
//! * [`sampling`] — Gaussian sampling via Box–Muller (the offline crate set
//!   has no `rand_distr`).
//! * [`histogram`] — a mergeable log-bucketed latency histogram
//!   (p50/p90/p99/p999) for the serving-layer harnesses.
//!
//! # Examples
//!
//! ```
//! use ropuf_numeric::permutation::Permutation;
//!
//! let p = Permutation::from_slice(&[2, 0, 1]).unwrap();
//! assert_eq!(p.lehmer_rank(), 4); // CAB is the 5th of 6 orders
//! assert_eq!(Permutation::from_lehmer_rank(4, 3), p);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod histogram;
pub mod linalg;
pub mod permutation;
pub mod polyfit;
pub mod sampling;
pub mod stats;

pub use bits::BitVec;
pub use histogram::{bucket_floor, Histogram, HistogramSummary, SparseHistogramError};
pub use linalg::Matrix;
pub use permutation::Permutation;
pub use polyfit::{Poly2d, PolyFitError};
pub use sampling::splitmix64;
