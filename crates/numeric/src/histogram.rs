//! Log-bucketed latency histogram.
//!
//! The serving layer (`ropuf_server`, the `loadgen`/`perf_verifier`
//! harnesses) needs tail percentiles — p99/p999 — over millions of
//! latency samples without keeping them all. [`Histogram`] is an
//! HDR-style fixed-layout histogram: values are binned into
//! power-of-two major buckets split into `2^SUB_BITS` linear
//! sub-buckets, which bounds the relative quantization error at
//! `2^-SUB_BITS` (≈3% here) across the whole `u64` range while the
//! memory footprint stays a few KiB, constant.
//!
//! Two properties matter for the multi-threaded harnesses:
//!
//! * **Mergeable** — every recording thread keeps its own histogram
//!   (no shared-state contention on the hot path) and the results are
//!   [`Histogram::merge`]d afterwards; merging is exact, equivalent to
//!   having recorded everything into one histogram.
//! * **Deterministic layout** — the bucket layout is a pure function of
//!   the value, so merged summaries don't depend on recording order.

use std::fmt;

/// Linear sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal slices, bounding relative error at `2^-SUB_BITS`.
const SUB_BITS: u32 = 5;
/// Sub-buckets per major (power-of-two) bucket.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count: values below `SUB_COUNT` are exact, plus one
/// sub-bucketed band per remaining bit of `u64` range. Public so codecs
/// that carry histograms on the wire (`ropuf-metrics/v1`) can cap a
/// declared bucket index before allocating.
pub const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Index of the bucket `value` falls into.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        // Small values are recorded exactly.
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BITS here
    let band = (msb - SUB_BITS + 1) as usize;
    let offset = ((value >> (msb - SUB_BITS)) as usize) & (SUB_COUNT - 1);
    band * SUB_COUNT + offset
}

/// Smallest value mapping to bucket `index` (a conservative lower
/// bound of every sample in the bucket). Public so consumers of
/// [`Histogram::sparse_counts`] — the `ropuf-timeseries/v1` band
/// collapser, the ops dashboard — can label bucket indices with
/// representative values; indices at or beyond [`BUCKETS`] clamp to the
/// last bucket.
pub fn bucket_floor(index: usize) -> u64 {
    bucket_low(index.min(BUCKETS - 1))
}

/// Internal unclamped form of [`bucket_floor`].
fn bucket_low(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let band = (index / SUB_COUNT) as u32;
    let offset = (index % SUB_COUNT) as u64;
    let msb = band + SUB_BITS - 1;
    (1u64 << msb) + (offset << (msb - SUB_BITS))
}

/// A mergeable log-bucketed histogram of `u64` samples (typically
/// latencies in nanoseconds), with ≈3% worst-case relative
/// quantization error and O(1) memory.
///
/// # Example
///
/// ```
/// use ropuf_numeric::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(0.50);
/// assert!((470..=530).contains(&p50), "p50 ~ 500, got {p50}");
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Exact: the result is identical to
    /// having recorded both sample streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact, tracked outside
    /// the buckets; 0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`): a lower bound of the
    /// smallest recorded value `v` such that at least `q * count`
    /// samples are `<= v`, clamped into `[min, max]`. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact sum of the recorded samples (tracked outside the buckets).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The non-empty buckets as `(index, count)` pairs, indices strictly
    /// ascending — the compact form a snapshot codec serializes. Most
    /// latency distributions occupy a few dozen of the [`BUCKETS`]
    /// slots, so the sparse form is far smaller than the dense array.
    pub fn sparse_counts(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a histogram from the parts [`Histogram::sparse_counts`]
    /// and the scalar accessors export, validating every invariant so a
    /// decoded wire snapshot can never construct a histogram whose
    /// percentile math goes wrong: bucket indices must be strictly
    /// ascending and in range, the bucket counts must sum to `count`
    /// without overflow, and the `[min, max]` envelope must be
    /// consistent with the occupied buckets.
    pub fn from_sparse(
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
        buckets: &[(u32, u64)],
    ) -> Result<Self, SparseHistogramError> {
        if count == 0 {
            if sum != 0 || min != 0 || max != 0 || !buckets.is_empty() {
                return Err(SparseHistogramError::EmptyButPopulated);
            }
            return Ok(Self::new());
        }
        if min > max {
            return Err(SparseHistogramError::MinAboveMax { min, max });
        }
        let mut h = Self {
            counts: vec![0; BUCKETS],
            count,
            sum,
            min,
            max,
        };
        let mut total = 0u64;
        let mut prev: Option<u32> = None;
        for &(index, c) in buckets {
            if index as usize >= BUCKETS {
                return Err(SparseHistogramError::IndexOutOfRange(index));
            }
            if prev.is_some_and(|p| index <= p) {
                return Err(SparseHistogramError::IndexNotAscending(index));
            }
            if c == 0 {
                return Err(SparseHistogramError::ZeroBucket(index));
            }
            prev = Some(index);
            total = total
                .checked_add(c)
                .ok_or(SparseHistogramError::CountOverflow)?;
            h.counts[index as usize] = c;
        }
        if total != count {
            return Err(SparseHistogramError::CountMismatch {
                declared: count,
                summed: total,
            });
        }
        // The declared sum must be achievable by samples lying inside
        // the occupied buckets (`count <= u64::MAX` keeps both bounds
        // inside u128, no overflow possible).
        let (mut lo, mut hi) = (0u128, 0u128);
        for &(index, c) in buckets {
            let low = bucket_low(index as usize);
            let high = if (index as usize) + 1 < BUCKETS {
                bucket_low(index as usize + 1) - 1
            } else {
                u64::MAX
            };
            lo += low as u128 * c as u128;
            hi += high as u128 * c as u128;
        }
        if sum < lo || sum > hi {
            return Err(SparseHistogramError::SumOutOfRange { declared: sum });
        }
        // The envelope must agree with the occupied buckets: min lives
        // in the first occupied bucket, max in the last.
        let first = buckets.first().expect("count > 0 implies buckets").0 as usize;
        let last = prev.expect("count > 0 implies buckets") as usize;
        if bucket_index(min) != first || bucket_index(max) != last {
            return Err(SparseHistogramError::EnvelopeMismatch { min, max });
        }
        Ok(h)
    }

    /// The standard serving-latency summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
        }
    }
}

/// Why [`Histogram::from_sparse`] rejected a set of exported parts.
/// Every inconsistency a hostile or corrupted snapshot could carry maps
/// to one of these — reconstruction never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseHistogramError {
    /// `count == 0` but a sum, envelope, or bucket list was supplied.
    EmptyButPopulated,
    /// `min > max` with samples present.
    MinAboveMax {
        /// Declared minimum.
        min: u64,
        /// Declared maximum.
        max: u64,
    },
    /// A bucket index at or beyond [`BUCKETS`].
    IndexOutOfRange(u32),
    /// Bucket indices not strictly ascending.
    IndexNotAscending(u32),
    /// An explicit zero-count bucket (canonical sparse form omits them).
    ZeroBucket(u32),
    /// Bucket counts overflow `u64` when summed.
    CountOverflow,
    /// Bucket counts don't sum to the declared total.
    CountMismatch {
        /// The declared total sample count.
        declared: u64,
        /// What the buckets actually sum to.
        summed: u64,
    },
    /// The declared sum can't be produced by samples in the occupied
    /// buckets.
    SumOutOfRange {
        /// The declared sample sum.
        declared: u128,
    },
    /// `min`/`max` don't fall into the first/last occupied bucket.
    EnvelopeMismatch {
        /// Declared minimum.
        min: u64,
        /// Declared maximum.
        max: u64,
    },
}

impl fmt::Display for SparseHistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseHistogramError::EmptyButPopulated => {
                write!(f, "count is 0 but sum/min/max/buckets are populated")
            }
            SparseHistogramError::MinAboveMax { min, max } => {
                write!(f, "min {min} exceeds max {max}")
            }
            SparseHistogramError::IndexOutOfRange(i) => {
                write!(f, "bucket index {i} out of range (max {})", BUCKETS - 1)
            }
            SparseHistogramError::IndexNotAscending(i) => {
                write!(f, "bucket index {i} not strictly ascending")
            }
            SparseHistogramError::ZeroBucket(i) => {
                write!(f, "bucket {i} declared with zero count")
            }
            SparseHistogramError::CountOverflow => write!(f, "bucket counts overflow u64"),
            SparseHistogramError::CountMismatch { declared, summed } => {
                write!(f, "declared count {declared} but buckets sum to {summed}")
            }
            SparseHistogramError::SumOutOfRange { declared } => {
                write!(
                    f,
                    "declared sum {declared} impossible for the occupied buckets"
                )
            }
            SparseHistogramError::EnvelopeMismatch { min, max } => {
                write!(
                    f,
                    "[{min}, {max}] envelope disagrees with the occupied buckets"
                )
            }
        }
    }
}

impl std::error::Error for SparseHistogramError {}

/// Snapshot of the percentiles a serving report prints; produced by
/// [`Histogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total recorded samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl fmt::Display for HistogramSummary {
    /// Renders the summary as nanosecond latencies scaled to µs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = |v: u64| v as f64 / 1e3;
        write!(
            f,
            "n={} min={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us p999={:.1}us max={:.1}us",
            self.count,
            us(self.min),
            us(self.p50),
            us(self.p90),
            us(self.p99),
            us(self.p999),
            us(self.max)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_COUNT as u64 {
            h.record(v);
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUB_COUNT as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_COUNT as u64 - 1);
    }

    #[test]
    fn bucket_low_is_a_lower_bound_with_bounded_relative_error() {
        // Probe values across the full u64 range, including bucket
        // boundaries and their neighbors.
        let mut probes: Vec<u64> = vec![0, 1, 2, 31, 32, 33, 1000, 123_456_789];
        for shift in 5..63 {
            let v = 1u64 << shift;
            probes.extend_from_slice(&[v - 1, v, v + 1, v + (v >> 1)]);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let low = bucket_low(bucket_index(v));
            assert!(low <= v, "bucket_low({v}) = {low} must not exceed v");
            // Relative quantization error bounded by 2^-SUB_BITS.
            let err = (v - low) as f64;
            assert!(
                err <= v as f64 / SUB_COUNT as f64 + 1.0,
                "value {v}: error {err} too large"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            assert!(i >= prev, "index must not decrease at {v}");
            prev = i;
            v = v * 3 / 2 + 1;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
        for (q, expected) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = h.percentile(q) as f64;
            let tolerance = expected / SUB_COUNT as f64 + 1.0;
            assert!(
                (got - expected).abs() <= tolerance,
                "q={q}: got {got}, want ~{expected}"
            );
        }
        assert!((s.mean - 5_000.5).abs() < 1e-6, "mean is exact");
    }

    #[test]
    fn merge_equals_single_recording() {
        let mut all = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let mut x = 7u64;
        for i in 0..3_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = x >> (x % 50);
            all.record(v);
            parts[(i % 3) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
        assert_eq!(merged.summary(), all.summary());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..5 {
            a.record(777);
        }
        b.record_n(777, 5);
        b.record_n(123, 0); // no-op
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_roundtrip_is_exact() {
        let mut h = Histogram::new();
        let mut x = 3u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> (x % 48));
        }
        let rebuilt =
            Histogram::from_sparse(h.count(), h.sum(), h.min(), h.max(), &h.sparse_counts())
                .expect("genuine parts reconstruct");
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.summary(), h.summary());
    }

    #[test]
    fn sparse_roundtrip_empty() {
        let h = Histogram::new();
        let rebuilt =
            Histogram::from_sparse(h.count(), h.sum(), h.min(), h.max(), &h.sparse_counts())
                .unwrap();
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn from_sparse_rejects_forged_parts() {
        let mut h = Histogram::new();
        h.record_n(1_000, 10);
        h.record(50);
        let parts = h.sparse_counts();
        let (count, sum, min, max) = (h.count(), h.sum(), h.min(), h.max());
        // Each corruption draws its own typed error.
        assert!(matches!(
            Histogram::from_sparse(count + 1, sum, min, max, &parts),
            Err(SparseHistogramError::CountMismatch { .. })
        ));
        assert!(matches!(
            Histogram::from_sparse(count, sum, max, max, &parts),
            Err(SparseHistogramError::EnvelopeMismatch { .. })
        ));
        assert!(matches!(
            Histogram::from_sparse(count, sum, max, min, &parts),
            Err(SparseHistogramError::MinAboveMax { .. })
        ));
        assert!(matches!(
            Histogram::from_sparse(count, u128::MAX, min, max, &parts),
            Err(SparseHistogramError::SumOutOfRange { .. })
        ));
        let mut bad_index = parts.clone();
        bad_index[0].0 = BUCKETS as u32;
        assert!(matches!(
            Histogram::from_sparse(count, sum, min, max, &bad_index),
            Err(SparseHistogramError::IndexOutOfRange(_))
        ));
        let mut unsorted = parts.clone();
        unsorted.swap(0, 1);
        assert!(matches!(
            Histogram::from_sparse(count, sum, min, max, &unsorted),
            Err(SparseHistogramError::IndexNotAscending(_))
        ));
        assert!(matches!(
            Histogram::from_sparse(0, 0, 0, 0, &parts),
            Err(SparseHistogramError::EmptyButPopulated)
        ));
    }

    #[test]
    fn summary_display_mentions_percentiles() {
        let mut h = Histogram::new();
        h.record_n(1_000, 100);
        let text = h.summary().to_string();
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("n=100"), "{text}");
    }
}
