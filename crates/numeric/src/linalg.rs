//! Small dense matrices over `f64` and a pivoting Gaussian-elimination
//! solver.
//!
//! This is intentionally minimal: the only consumer with non-trivial demands
//! is the least-squares fit behind the paper's entropy distiller, which
//! solves normal equations of dimension equal to the number of polynomial
//! coefficients (≤ 21 for degree 5), so a dense O(n³) solver is plenty.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use ropuf_numeric::Matrix;
///
/// let m = Matrix::identity(3);
/// assert_eq!(m[(1, 1)], 1.0);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error returned by [`Matrix::solve`] when the system is singular (or
/// numerically too close to singular to solve reliably).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular or ill-conditioned")
    }
}

impl std::error::Error for SingularMatrixError {}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != v.len()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-12` times
    /// the largest row magnitude is encountered.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot: largest |a[r][col]| for r >= col.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(SingularMatrixError);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for c in col + 1..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut v = x[col];
            for c in col + 1..n {
                v -= a[col * n + c] * x[c];
            }
            x[col] = v / a[col * n + col];
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ||A x - b||²` via the normal
    /// equations `AᵀA x = Aᵀb`, where `A = self`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] when `AᵀA` is singular, i.e. the
    /// design matrix is rank-deficient.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn least_squares(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let at = self.transpose();
        let ata = at.mul(self);
        let atb = at.mul_vec(b);
        ata.solve(&atb)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let m = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let m = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let m = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = m.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(SingularMatrixError));
    }

    #[test]
    fn transpose_mul() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let p = a.mul(&at); // 2x2
        assert_eq!(p[(0, 0)], 14.0);
        assert_eq!(p[(0, 1)], 32.0);
        assert_eq!(p[(1, 1)], 77.0);
    }

    #[test]
    fn least_squares_exact_line() {
        // Fit y = 2x + 1 through exact points.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut a = Matrix::zeros(4, 2);
        let mut b = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = x;
            b.push(2.0 * x + 1.0);
        }
        let c = a.least_squares(&b).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-10);
        assert!((c[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_noise() {
        // y = 3x - 2 with symmetric residuals: LS must reproduce the line.
        let pts = [(0.0, -2.5), (0.0, -1.5), (2.0, 3.5), (2.0, 4.5)];
        let mut a = Matrix::zeros(4, 2);
        let mut b = Vec::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = x;
            b.push(y);
        }
        let c = a.least_squares(&b).unwrap();
        assert!((c[0] + 2.0).abs() < 1e-10, "intercept {}", c[0]);
        assert!((c[1] - 3.0).abs() < 1e-10, "slope {}", c[1]);
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::from_rows(2, 2, vec![1.0, -1.0, 0.5, 2.0]);
        let v = [3.0, 4.0];
        let got = a.mul_vec(&v);
        assert_eq!(got, vec![-1.0, 9.5]);
    }
}
