//! Property test: helper-data wire formats round-trip byte-for-byte,
//! and survive fleet re-provisioning — re-manufacturing the same device
//! id of the same fleet reproduces the identical helper blob, while the
//! parse → serialize cycle is lossless on every fleet member.

use proptest::prelude::*;
use ropuf_campaign::FleetSpec;
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedHelper, GroupBasedScheme};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaHelper, LisaScheme};
use ropuf_constructions::SanityPolicy;
use ropuf_sim::ArrayDims;

proptest! {
    #[test]
    fn lisa_wire_roundtrip_survives_reprovisioning(master_seed in any::<u64>(),
                                                   devices in 1usize..5) {
        let spec = FleetSpec { dims: ArrayDims::new(16, 8), devices, master_seed };
        let scheme = LisaScheme::new(LisaConfig::default());
        for id in 0..devices {
            let device = match spec.provision_device(id, &scheme) {
                Ok(d) => d,
                // A degenerate array can legitimately fail enrollment;
                // the property applies to enrollable devices.
                Err(_) => continue,
            };
            let wire = device.helper().to_vec();

            // Parse → serialize is byte-lossless under both policies.
            let lenient = LisaHelper::from_bytes(&wire, SanityPolicy::Lenient).unwrap();
            prop_assert_eq!(lenient.to_bytes(), wire.clone());
            let strict = LisaHelper::from_bytes(&wire, SanityPolicy::Strict).unwrap();
            prop_assert_eq!(strict.to_bytes(), wire.clone());

            // Re-provisioning the same fleet slot reproduces the same
            // helper blob and the same enrolled key.
            let again = spec.provision_device(id, &scheme).unwrap();
            prop_assert_eq!(again.helper(), &wire[..]);
            prop_assert_eq!(again.enrolled_key(), device.enrolled_key());
        }
    }

    #[test]
    fn group_wire_roundtrip_survives_reprovisioning(master_seed in any::<u64>(),
                                                    devices in 1usize..4) {
        let spec = FleetSpec { dims: ArrayDims::new(10, 4), devices, master_seed };
        let scheme = GroupBasedScheme::new(GroupBasedConfig::default());
        for id in 0..devices {
            let device = match spec.provision_device(id, &scheme) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let wire = device.helper().to_vec();
            let parsed = GroupBasedHelper::from_bytes(&wire).unwrap();
            prop_assert_eq!(parsed.to_bytes(), wire.clone());

            let again = spec.provision_device(id, &scheme).unwrap();
            prop_assert_eq!(again.helper(), &wire[..]);
        }
    }
}
