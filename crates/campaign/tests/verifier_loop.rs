//! The closed loop's contracts: detector-monitored campaigns replay
//! bit-for-bit from the master seed (the monitor adds no entropy and
//! never perturbs the attack), and the defender's detection metrics
//! survive serialization.

use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_sim::ArrayDims;
use ropuf_verifier::DetectorConfig;

fn monitored_campaign(master_seed: u64, threads: usize, devices: usize) -> Campaign {
    Campaign {
        attack: AttackKind::Lisa(LisaConfig::default()),
        fleet: FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices,
            master_seed,
        },
        threads,
        early_exit: false,
        detector: Some(DetectorConfig::default()),
    }
}

#[test]
fn verifier_campaign_replays_bit_for_bit() {
    let a = monitored_campaign(13, 1, 6).run().to_json(false);
    let b = monitored_campaign(13, 4, 6).run().to_json(false);
    assert_eq!(
        a, b,
        "detector-monitored reports must be identical across runs and thread counts"
    );
    assert!(a.contains("\"detector\": {\"integrity_check\": true"));
    assert!(a.contains("\"flagged_at_query\": "));

    let c = monitored_campaign(13, 2, 6).run().to_csv(false);
    let d = monitored_campaign(13, 3, 6).run().to_csv(false);
    assert_eq!(c, d, "CSV replay must match too");
}

#[test]
fn every_lisa_attacked_device_is_flagged_before_key_recovery() {
    let report = monitored_campaign(21, 2, 8).run();
    assert_eq!(report.succeeded(), 8, "attack itself is unaffected");
    assert_eq!(
        report.flagged_before_completion(),
        8,
        "defender catches every device mid-attack"
    );
    for run in &report.runs {
        let flagged_at = run.flagged_at_query.expect("flagged");
        assert!(flagged_at < run.queries);
        assert!(run.flag_reason.is_some());
    }
    let mean_flag = report.mean_queries_to_flag().expect("flags exist");
    assert!(
        mean_flag * 10.0 < report.mean_queries(),
        "detection happens an order of magnitude before recovery: {mean_flag} vs {}",
        report.mean_queries()
    );
}

#[test]
fn detectorless_campaign_reports_no_flags() {
    let mut plain = monitored_campaign(13, 2, 4);
    plain.detector = None;
    let report = plain.run();
    assert_eq!(report.flagged(), 0);
    assert!(report.to_json(false).contains("\"detector\": null"));
    for run in &report.runs {
        assert_eq!(run.flagged_at_query, None);
        assert_eq!(run.flag_reason, None);
    }
}
