//! The campaign engine's determinism contract: the same master seed
//! yields a byte-identical (timing-stripped) report, regardless of
//! thread count, and different seeds yield different fleets.

use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
use ropuf_constructions::group::GroupBasedConfig;
use ropuf_constructions::pairing::lisa::LisaConfig;
use ropuf_sim::ArrayDims;

fn lisa_campaign(master_seed: u64, threads: usize, devices: usize) -> Campaign {
    Campaign {
        attack: AttackKind::Lisa(LisaConfig::default()),
        fleet: FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices,
            master_seed,
        },
        threads,
        early_exit: false,
        detector: None,
    }
}

#[test]
fn same_seed_same_json_bit_for_bit() {
    let a = lisa_campaign(42, 1, 8).run().to_json(false);
    let b = lisa_campaign(42, 4, 8).run().to_json(false);
    assert_eq!(a, b, "JSON must be identical across runs and thread counts");

    let c = lisa_campaign(42, 3, 8).run().to_csv(false);
    let d = lisa_campaign(42, 2, 8).run().to_csv(false);
    assert_eq!(c, d, "CSV must be identical across runs and thread counts");
}

#[test]
fn different_seed_different_fleet() {
    let a = lisa_campaign(1, 2, 4).run();
    let b = lisa_campaign(2, 2, 4).run();
    let seeds_a: Vec<u64> = a.runs.iter().map(|r| r.attack_seed).collect();
    let seeds_b: Vec<u64> = b.runs.iter().map(|r| r.attack_seed).collect();
    assert_ne!(
        seeds_a, seeds_b,
        "master seed must decorrelate attack seeds"
    );

    // The manufactured hardware itself must differ: same fleet slot,
    // different master seed, different helper blob.
    let scheme = ropuf_constructions::pairing::lisa::LisaScheme::new(LisaConfig::default());
    let d1 = FleetSpec {
        dims: ArrayDims::new(16, 8),
        devices: 1,
        master_seed: 1,
    }
    .provision_device(0, &scheme)
    .unwrap();
    let d2 = FleetSpec {
        dims: ArrayDims::new(16, 8),
        devices: 1,
        master_seed: 2,
    }
    .provision_device(0, &scheme)
    .unwrap();
    assert_ne!(d1.helper(), d2.helper());
    assert_ne!(d1.enrolled_key(), d2.enrolled_key());
}

#[test]
fn early_exit_preserves_success_and_saves_queries() {
    let exhaustive = lisa_campaign(7, 2, 6).run();
    let mut early = lisa_campaign(7, 2, 6);
    early.early_exit = true;
    let early = early.run();
    assert_eq!(exhaustive.succeeded(), 6);
    assert_eq!(early.succeeded(), 6, "early exit must not cost correctness");
    assert!(
        early.total_queries() < exhaustive.total_queries(),
        "early exit must reduce query volume: {} vs {}",
        early.total_queries(),
        exhaustive.total_queries()
    );
}

#[test]
fn group_based_campaign_is_deterministic_too() {
    let mk = |threads| Campaign {
        attack: AttackKind::GroupBased(GroupBasedConfig::default()),
        fleet: FleetSpec {
            dims: ArrayDims::new(10, 4),
            devices: 3,
            master_seed: 9,
        },
        threads,
        early_exit: false,
        detector: None,
    };
    let a = mk(1).run().to_json(false);
    let b = mk(3).run().to_json(false);
    assert_eq!(a, b);
}
