//! A uniform handle over the paper's four attacks.
//!
//! Each attack targets one construction; [`AttackKind`] bundles the
//! attack's configuration with the scheme it applies to, so a campaign
//! needs only the kind to provision matching devices *and* attack them.

use rand::RngCore;
use ropuf_attacks::cooperative::CooperativeAttack;
use ropuf_attacks::distiller_pairing::DistillerPairingAttack;
use ropuf_attacks::group_based::GroupBasedAttack;
use ropuf_attacks::lisa::{AttackError, LisaAttack};
use ropuf_attacks::Oracle;
use ropuf_constructions::cooperative::{CooperativeConfig, CooperativeScheme, COOP_TAG};
use ropuf_constructions::group::{GroupBasedConfig, GroupBasedScheme, GROUP_TAG};
use ropuf_constructions::pairing::distilled::{
    DistilledConfig, DistilledPairingScheme, DISTILLED_TAG,
};
use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme, LISA_TAG};
use ropuf_constructions::HelperDataScheme;
use ropuf_numeric::BitVec;

/// One of the paper's attacks, with its (public) scheme configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// §VI-A: full key recovery on the sequential pairing algorithm.
    Lisa(LisaConfig),
    /// §VI-B: relation recovery on the cooperative construction.
    Cooperative(CooperativeConfig),
    /// §VI-C: key recovery on group-based RO PUFs (Fig. 6a).
    GroupBased(GroupBasedConfig),
    /// §VI-D: key recovery on distiller + pairing variants (Fig. 6b/c).
    DistillerPairing(DistilledConfig),
}

/// What an attack produced, normalized across the four kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// The recovered key, for key-recovery attacks (`None` for the
    /// cooperative attack, which learns bit *relations*).
    pub recovered_key: Option<BitVec>,
    /// `(resolved, total)` cooperating-pair relations, for the
    /// cooperative attack.
    pub relations: Option<(usize, usize)>,
    /// Largest simultaneous hypothesis set the attack had to test
    /// (distiller-pairing attack only — its multi-bit hypotheses are the
    /// paper's Fig. 6c complexity driver).
    pub max_hypotheses: Option<usize>,
    /// Oracle queries spent.
    pub queries: u64,
}

impl AttackKind {
    /// Short name used in reports ("lisa", "cooperative", …).
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Lisa(_) => "lisa",
            AttackKind::Cooperative(_) => "cooperative",
            AttackKind::GroupBased(_) => "group-based",
            AttackKind::DistillerPairing(_) => "distiller-pairing",
        }
    }

    /// Wire tag of the helper-data format the targeted scheme emits
    /// (what a verifier-side detector reparses presented blobs as).
    pub fn wire_tag(&self) -> u8 {
        match self {
            AttackKind::Lisa(_) => LISA_TAG,
            AttackKind::Cooperative(_) => COOP_TAG,
            AttackKind::GroupBased(_) => GROUP_TAG,
            AttackKind::DistillerPairing(_) => DISTILLED_TAG,
        }
    }

    /// A fresh instance of the scheme this attack targets, ready for
    /// device provisioning.
    pub fn scheme(&self) -> Box<dyn HelperDataScheme> {
        match self {
            AttackKind::Lisa(c) => Box::new(LisaScheme::new(*c)),
            AttackKind::Cooperative(c) => Box::new(CooperativeScheme::new(*c)),
            AttackKind::GroupBased(c) => Box::new(GroupBasedScheme::new(*c)),
            AttackKind::DistillerPairing(c) => Box::new(DistilledPairingScheme::new(*c)),
        }
    }

    /// Runs the attack against one captured device.
    ///
    /// `early_exit` enables decided-vote short-circuiting where the
    /// attack supports it (currently LISA; the flag is ignored
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Propagates the attack's own [`AttackError`] (wrong scheme,
    /// unstable reference, ambiguous resolution, …).
    pub fn execute(
        &self,
        oracle: &mut Oracle<'_>,
        rng: &mut dyn RngCore,
        early_exit: bool,
    ) -> Result<AttackOutcome, AttackError> {
        match self {
            AttackKind::Lisa(c) => {
                let report = LisaAttack::new(*c)
                    .with_early_exit(early_exit)
                    .run(oracle, rng)?;
                Ok(AttackOutcome {
                    recovered_key: Some(report.recovered_key),
                    relations: None,
                    max_hypotheses: None,
                    queries: report.queries,
                })
            }
            AttackKind::Cooperative(c) => {
                let report = CooperativeAttack::new(*c).run(oracle, rng)?;
                let total = report.coop_pairs.len();
                let resolved = report.relative_bits.iter().filter(|b| b.is_some()).count();
                Ok(AttackOutcome {
                    recovered_key: None,
                    relations: Some((resolved, total)),
                    max_hypotheses: None,
                    queries: report.queries,
                })
            }
            AttackKind::GroupBased(c) => {
                let report = GroupBasedAttack::new(*c).run(oracle, rng)?;
                Ok(AttackOutcome {
                    recovered_key: Some(report.recovered_key),
                    relations: None,
                    max_hypotheses: None,
                    queries: report.queries,
                })
            }
            AttackKind::DistillerPairing(c) => {
                let report = DistillerPairingAttack::new(*c).run(oracle, rng)?;
                Ok(AttackOutcome {
                    recovered_key: Some(report.recovered_key),
                    relations: None,
                    max_hypotheses: Some(report.max_hypotheses),
                    queries: report.queries,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let kinds = [
            AttackKind::Lisa(LisaConfig::default()),
            AttackKind::Cooperative(CooperativeConfig::default()),
            AttackKind::GroupBased(GroupBasedConfig::default()),
            AttackKind::DistillerPairing(DistilledConfig::default()),
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn scheme_matches_attack_target() {
        assert_eq!(
            AttackKind::Lisa(LisaConfig::default()).scheme().name(),
            "lisa"
        );
        assert_eq!(
            AttackKind::GroupBased(GroupBasedConfig::default())
                .scheme()
                .name(),
            "group-based"
        );
    }
}
