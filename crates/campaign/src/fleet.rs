//! Deterministic fleet construction.
//!
//! A campaign is reproducible because every random choice a device ever
//! makes is rooted in its [`DeviceSeeds`], which are a pure function of
//! `(master_seed, device_id)`. Thread scheduling can reorder *when*
//! devices run, never *what* they compute.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_constructions::{Device, EnrollError, HelperDataScheme};
use ropuf_numeric::splitmix64 as mix;
use ropuf_sim::{ArrayDims, RoArrayBuilder};

/// The three independent seed streams a device consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSeeds {
    /// Seeds the Monte-Carlo sampling of the device's RO array
    /// (process variation — "manufacturing").
    pub array: u64,
    /// Seeds enrollment-time randomness inside the scheme (assist
    /// selection, pair ordering, …) and the device's lifetime noise RNG.
    pub provision: u64,
    /// Seeds the attacker-side RNG handed to the attack.
    pub attack: u64,
}

/// Derives the per-device seed bundle for `device_id` under
/// `master_seed`. Distinct ids (and distinct master seeds) yield
/// decorrelated streams.
pub fn device_seeds(master_seed: u64, device_id: u64) -> DeviceSeeds {
    let base = mix(master_seed ^ mix(device_id));
    DeviceSeeds {
        array: mix(base ^ 0xA11A_A11A_A11A_A11A),
        provision: mix(base ^ 0xB22B_B22B_B22B_B22B),
        attack: mix(base ^ 0xC33C_C33C_C33C_C33C),
    }
}

/// Shape of a device fleet: how many devices, their array geometry, and
/// the master seed all per-device randomness derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// RO array geometry of every device in the fleet.
    pub dims: ArrayDims,
    /// Number of independently manufactured devices.
    pub devices: usize,
    /// Root of all per-device seed derivation.
    pub master_seed: u64,
}

impl FleetSpec {
    /// Seed bundle for one device of this fleet.
    pub fn seeds(&self, device_id: usize) -> DeviceSeeds {
        device_seeds(self.master_seed, device_id as u64)
    }

    /// Manufactures and enrolls device `device_id`: samples a fresh RO
    /// array from the device's own RNG and provisions it with a clone of
    /// `scheme` (schemes are stateless configuration, so
    /// [`HelperDataScheme::clone_box`] is cheap).
    ///
    /// # Errors
    ///
    /// Propagates [`EnrollError`] when the sampled array cannot support
    /// the scheme's parameters.
    pub fn provision_device(
        &self,
        device_id: usize,
        scheme: &dyn HelperDataScheme,
    ) -> Result<Device, EnrollError> {
        let seeds = self.seeds(device_id);
        let mut array_rng = StdRng::seed_from_u64(seeds.array);
        let array = RoArrayBuilder::new(self.dims).build(&mut array_rng);
        Device::provision(array, scheme.clone_box(), seeds.provision)
    }

    /// Provisions the whole fleet serially (diagnostics and tests; the
    /// campaign engine provisions lazily inside its workers instead).
    pub fn provision_all(&self, scheme: &dyn HelperDataScheme) -> Vec<Result<Device, EnrollError>> {
        (0..self.devices)
            .map(|id| self.provision_device(id, scheme))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::{LisaConfig, LisaScheme};

    #[test]
    fn seed_derivation_is_stable_and_distinct() {
        let a = device_seeds(1, 0);
        let b = device_seeds(1, 0);
        assert_eq!(a, b);
        let c = device_seeds(1, 1);
        assert_ne!(a.array, c.array);
        assert_ne!(a.provision, c.provision);
        assert_ne!(a.attack, c.attack);
        // The three streams of one device differ from each other too.
        assert_ne!(a.array, a.provision);
        assert_ne!(a.provision, a.attack);
    }

    #[test]
    fn same_device_id_reproduces_identical_device() {
        let spec = FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices: 2,
            master_seed: 9,
        };
        let scheme = LisaScheme::new(LisaConfig::default());
        let d1 = spec.provision_device(0, &scheme).unwrap();
        let d2 = spec.provision_device(0, &scheme).unwrap();
        assert_eq!(d1.enrolled_key(), d2.enrolled_key());
        assert_eq!(d1.helper(), d2.helper());
    }

    #[test]
    fn different_devices_differ() {
        let spec = FleetSpec {
            dims: ArrayDims::new(16, 8),
            devices: 2,
            master_seed: 9,
        };
        let scheme = LisaScheme::new(LisaConfig::default());
        let d0 = spec.provision_device(0, &scheme).unwrap();
        let d1 = spec.provision_device(1, &scheme).unwrap();
        assert_ne!(d0.helper(), d1.helper());
    }
}
