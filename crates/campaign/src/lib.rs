//! Parallel attack-campaign engine.
//!
//! The paper's headline results (Section VI, Figs. 5–6) are
//! *statistical*: every attack decides hypotheses by estimating
//! key-regeneration failure rates over many oracle queries, and a single
//! device tells you little about an attack's success *rate*. This crate
//! sweeps any attack from `ropuf_attacks` across a **fleet** of
//! independently sampled devices, in parallel, with per-device seeded
//! RNGs so a campaign is reproducible bit-for-bit from one master seed.
//!
//! # Pieces
//!
//! * [`fleet`] — deterministic fleet construction: master seed →
//!   per-device `(array, provision, attack)` seed bundle → provisioned
//!   [`Device`](ropuf_constructions::Device)s.
//! * [`attack`] — [`AttackKind`]: a uniform handle over the paper's four
//!   attacks, pairing each with the scheme it targets.
//! * [`engine`] — [`Campaign`]: the work-stealing thread pool that runs
//!   one attack per device and collects structured [`DeviceRun`]s.
//! * [`monitor`] — [`DetectorMonitor`]: the closed-loop hook that shows
//!   every oracle query to a defender-side `ropuf_verifier` detector,
//!   so runs report *queries-before-flag* next to attack success.
//! * [`report`] — [`CampaignReport`]: aggregate statistics plus JSON and
//!   CSV emission (schema documented in `ARCHITECTURE.md`).
//!
//! # Determinism contract
//!
//! Everything observable in a report except wall-clock timing is a pure
//! function of `(attack kind + config, fleet spec, early_exit)`. Worker
//! threads only race for *which* device to run next; each device's
//! entire trajectory (array sampling, enrollment, attack decisions) is
//! driven by RNGs seeded from its own id. Serialize with
//! `include_timing = false` to get byte-identical artifacts across runs
//! and thread counts.
//!
//! # Example
//!
//! ```
//! use ropuf_campaign::{AttackKind, Campaign, FleetSpec};
//! use ropuf_constructions::pairing::lisa::LisaConfig;
//! use ropuf_sim::ArrayDims;
//!
//! let campaign = Campaign {
//!     attack: AttackKind::Lisa(LisaConfig::default()),
//!     fleet: FleetSpec {
//!         dims: ArrayDims::new(16, 8),
//!         devices: 4,
//!         master_seed: 7,
//!     },
//!     threads: 0, // all available cores
//!     early_exit: false,
//!     detector: None, // Some(DetectorConfig) attaches the defender loop
//! };
//! let report = campaign.run();
//! assert_eq!(report.runs.len(), 4);
//! println!("{}", report.to_json(false));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod engine;
pub mod fleet;
pub mod monitor;
pub mod report;

pub use attack::{AttackKind, AttackOutcome};
pub use engine::{Campaign, DeviceRun};
pub use fleet::{device_seeds, DeviceSeeds, FleetSpec};
pub use monitor::DetectorMonitor;
pub use report::CampaignReport;
