//! Campaign result aggregation and JSON / CSV emission.
//!
//! The serializers are hand-rolled (the offline crate set has no
//! `serde`) and emit keys in a fixed order, so a report serialized with
//! `include_timing = false` is **byte-identical** across runs, thread
//! counts and machines for the same campaign parameters. The schema is
//! documented in `ARCHITECTURE.md` ("Campaign result schema").

use ropuf_sim::ArrayDims;
use ropuf_verifier::DetectorConfig;

use crate::engine::DeviceRun;

/// Version tag embedded in every JSON report.
pub const SCHEMA: &str = "ropuf-campaign/v1";

/// Aggregated outcome of a [`Campaign`](crate::Campaign) run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Attack name (`AttackKind::name`).
    pub attack: String,
    /// Array geometry of the fleet.
    pub dims: ArrayDims,
    /// Fleet size.
    pub devices: usize,
    /// Master seed the fleet derived from.
    pub master_seed: u64,
    /// Whether decided-vote early exit was on.
    pub early_exit: bool,
    /// Defender-side detector thresholds, when the campaign ran the
    /// closed loop (`None`: plain attacker-only campaign).
    pub detector: Option<DetectorConfig>,
    /// Worker threads actually used (timing context, not part of the
    /// deterministic payload).
    pub threads: usize,
    /// End-to-end campaign wall time in milliseconds.
    pub total_wall_ms: f64,
    /// Per-device results, ordered by device id.
    pub runs: Vec<DeviceRun>,
}

impl CampaignReport {
    /// Devices whose run met the attack's success criterion.
    pub fn succeeded(&self) -> usize {
        self.runs.iter().filter(|r| r.success).count()
    }

    /// Fraction of successful runs (0 for an empty fleet).
    pub fn success_rate(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.succeeded() as f64 / self.runs.len() as f64
        }
    }

    /// Total oracle queries across the fleet.
    pub fn total_queries(&self) -> u64 {
        self.runs.iter().map(|r| r.queries).sum()
    }

    /// Mean queries per device (0 for an empty fleet).
    pub fn mean_queries(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.total_queries() as f64 / self.runs.len() as f64
        }
    }

    /// Sum of per-device wall times — the work a serial executor would
    /// have done. `total_wall_ms` divides into this for the realized
    /// parallel speedup.
    pub fn serial_wall_ms(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_ms).sum()
    }

    /// Devices the defender-side detector flagged (0 without a
    /// detector).
    pub fn flagged(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.flagged_at_query.is_some())
            .count()
    }

    /// Devices flagged strictly before their attack run completed —
    /// the closed-loop "caught before key recovery" count.
    pub fn flagged_before_completion(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.flagged_at_query.is_some_and(|q| q < r.queries))
            .count()
    }

    /// Mean queries-before-flag over the flagged runs (`None` when no
    /// run was flagged).
    pub fn mean_queries_to_flag(&self) -> Option<f64> {
        let flagged: Vec<u64> = self
            .runs
            .iter()
            .filter_map(|r| r.flagged_at_query)
            .collect();
        if flagged.is_empty() {
            None
        } else {
            Some(flagged.iter().sum::<u64>() as f64 / flagged.len() as f64)
        }
    }

    /// JSON emission. With `include_timing = false` the output is a pure
    /// function of the campaign parameters (byte-identical across runs
    /// and thread counts); with `true`, `wall_ms` / `threads` /
    /// `total_wall_ms` fields are added.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut out = String::with_capacity(256 + 160 * self.runs.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA)));
        out.push_str(&format!("  \"attack\": {},\n", json_str(&self.attack)));
        out.push_str(&format!(
            "  \"dims\": {{\"cols\": {}, \"rows\": {}}},\n",
            self.dims.cols(),
            self.dims.rows()
        ));
        out.push_str(&format!("  \"devices\": {},\n", self.devices));
        out.push_str(&format!("  \"master_seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"early_exit\": {},\n", self.early_exit));
        match &self.detector {
            Some(d) => out.push_str(&format!(
                "  \"detector\": {{\"integrity_check\": {}, \"rate_window\": {}, \"rate_budget\": {}, \"failure_streak\": {}}},\n",
                d.integrity_check, d.rate_window, d.rate_budget, d.failure_streak,
            )),
            None => out.push_str("  \"detector\": null,\n"),
        }
        out.push_str(&format!(
            "  \"summary\": {{\"succeeded\": {}, \"success_rate\": {}, \"total_queries\": {}, \"mean_queries\": {}, \"flagged\": {}}},\n",
            self.succeeded(),
            json_f64(self.success_rate()),
            self.total_queries(),
            json_f64(self.mean_queries()),
            self.flagged(),
        ));
        if include_timing {
            out.push_str(&format!(
                "  \"timing\": {{\"threads\": {}, \"total_wall_ms\": {}, \"serial_wall_ms\": {}}},\n",
                self.threads,
                json_f64(self.total_wall_ms),
                json_f64(self.serial_wall_ms()),
            ));
        }
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"device_id\": {}", run.device_id));
            out.push_str(&format!(", \"attack_seed\": {}", run.attack_seed));
            out.push_str(&format!(", \"success\": {}", run.success));
            out.push_str(&format!(", \"queries\": {}", run.queries));
            out.push_str(&format!(", \"key_bits\": {}", run.key_bits));
            out.push_str(&format!(
                ", \"hamming_distance\": {}",
                opt_num(run.hamming_distance)
            ));
            match run.relations {
                Some((resolved, total)) => out.push_str(&format!(
                    ", \"relations\": {{\"resolved\": {resolved}, \"total\": {total}}}"
                )),
                None => out.push_str(", \"relations\": null"),
            }
            out.push_str(&format!(
                ", \"max_hypotheses\": {}",
                opt_num(run.max_hypotheses)
            ));
            out.push_str(&format!(
                ", \"flagged_at_query\": {}",
                run.flagged_at_query
                    .map_or("null".to_string(), |q| q.to_string())
            ));
            match &run.flag_reason {
                Some(r) => out.push_str(&format!(", \"flag_reason\": {}", json_str(r))),
                None => out.push_str(", \"flag_reason\": null"),
            }
            match &run.error {
                Some(e) => out.push_str(&format!(", \"error\": {}", json_str(e))),
                None => out.push_str(", \"error\": null"),
            }
            if include_timing {
                out.push_str(&format!(", \"wall_ms\": {}", json_f64(run.wall_ms)));
            }
            out.push('}');
            if i + 1 < self.runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV emission: one row per device, header included. The same
    /// timing rule as [`CampaignReport::to_json`] applies.
    pub fn to_csv(&self, include_timing: bool) -> String {
        let mut out = String::with_capacity(64 + 64 * self.runs.len());
        out.push_str("device_id,attack_seed,success,queries,key_bits,hamming_distance,relations_resolved,relations_total,max_hypotheses,flagged_at_query,flag_reason,error");
        if include_timing {
            out.push_str(",wall_ms");
        }
        out.push('\n');
        for run in &self.runs {
            let (resolved, total) = match run.relations {
                Some((r, t)) => (r.to_string(), t.to_string()),
                None => (String::new(), String::new()),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                run.device_id,
                run.attack_seed,
                run.success,
                run.queries,
                run.key_bits,
                run.hamming_distance
                    .map_or(String::new(), |d| d.to_string()),
                resolved,
                total,
                run.max_hypotheses.map_or(String::new(), |h| h.to_string()),
                run.flagged_at_query
                    .map_or(String::new(), |q| q.to_string()),
                csv_str(run.flag_reason.as_deref().unwrap_or("")),
                csv_str(run.error.as_deref().unwrap_or("")),
            ));
            if include_timing {
                out.push_str(&format!(",{}", json_f64(run.wall_ms)));
            }
            out.push('\n');
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic float formatting: shortest round-trip form, with a
/// trailing `.0` guaranteed so the value parses as a JSON number with a
/// stable shape.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn opt_num(x: Option<usize>) -> String {
    x.map_or("null".to_string(), |v| v.to_string())
}

/// CSV field quoting per RFC 4180 (quote when the field contains a
/// comma, quote or newline).
fn csv_str(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        CampaignReport {
            attack: "lisa".to_string(),
            dims: ArrayDims::new(16, 8),
            devices: 2,
            master_seed: 5,
            early_exit: false,
            detector: Some(DetectorConfig::default()),
            threads: 3,
            total_wall_ms: 12.5,
            runs: vec![
                DeviceRun {
                    device_id: 0,
                    attack_seed: 99,
                    success: true,
                    queries: 40,
                    key_bits: 64,
                    hamming_distance: Some(0),
                    relations: None,
                    max_hypotheses: None,
                    flagged_at_query: Some(2),
                    flag_reason: Some("helper-mismatch".to_string()),
                    error: None,
                    wall_ms: 7.0,
                },
                DeviceRun {
                    device_id: 1,
                    attack_seed: 100,
                    success: false,
                    queries: 0,
                    key_bits: 0,
                    hamming_distance: None,
                    relations: None,
                    max_hypotheses: Some(4),
                    flagged_at_query: None,
                    flag_reason: None,
                    error: Some("enroll: \"quoted\"".to_string()),
                    wall_ms: 5.5,
                },
            ],
        }
    }

    #[test]
    fn summary_statistics() {
        let r = sample_report();
        assert_eq!(r.succeeded(), 1);
        assert_eq!(r.success_rate(), 0.5);
        assert_eq!(r.total_queries(), 40);
        assert_eq!(r.mean_queries(), 20.0);
        assert_eq!(r.serial_wall_ms(), 12.5);
        assert_eq!(r.flagged(), 1);
        assert_eq!(r.flagged_before_completion(), 1);
        assert_eq!(r.mean_queries_to_flag(), Some(2.0));
    }

    #[test]
    fn json_without_timing_has_no_wall_fields() {
        let j = sample_report().to_json(false);
        assert!(!j.contains("wall_ms"), "{j}");
        assert!(!j.contains("timing"), "{j}");
        assert!(j.contains("\"schema\": \"ropuf-campaign/v1\""));
        assert!(j.contains("\"success_rate\": 0.5"));
        assert!(j.contains("\"flagged\": 1"), "{j}");
        assert!(
            j.contains("\"detector\": {\"integrity_check\": true"),
            "{j}"
        );
        assert!(j.contains("\"flagged_at_query\": 2"), "{j}");
        assert!(j.contains("\"flag_reason\": \"helper-mismatch\""), "{j}");
        assert!(j.contains("\\\"quoted\\\""), "escaped error: {j}");

        let mut plain = sample_report();
        plain.detector = None;
        assert!(plain.to_json(false).contains("\"detector\": null"));
    }

    #[test]
    fn json_with_timing_has_wall_fields() {
        let j = sample_report().to_json(true);
        assert!(j.contains("\"timing\""));
        assert!(j.contains("\"wall_ms\": 7.0"));
    }

    #[test]
    fn csv_shape() {
        let c = sample_report().to_csv(false);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("device_id,"));
        assert!(lines[0].contains("flagged_at_query,flag_reason"));
        assert!(lines[1].starts_with("0,99,true,40,64,0,,,,2,helper-mismatch,"));
        assert!(lines[2].contains("\"enroll: \"\"quoted\"\"\""));
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(20.0), "20.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
