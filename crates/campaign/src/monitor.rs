//! The defender-side hook of the closed loop: adapts a
//! [`DeviceDetector`] to the oracle's [`TrafficMonitor`] interface.
//!
//! When a campaign runs with [`Campaign::detector`](crate::Campaign)
//! set, every oracle query an attack issues is also shown to a
//! per-device detector, exactly as a verifier gateway would see it: the
//! helper bytes presented for the query, and whether the response
//! verified against the device's enrolled behavior. The attack is
//! unaffected (monitoring is passive), but the resulting
//! [`DeviceRun`](crate::DeviceRun) additionally reports *when* the
//! defender would have caught it — the paper's §VII "query monitoring"
//! countermeasure made measurable.

use ropuf_attacks::TrafficMonitor;
use ropuf_constructions::DeviceResponse;
use ropuf_telemetry::TimerHistogram;
use ropuf_verifier::{DetectorConfig, DeviceDetector};

/// Per-device detector adapter driving its own logical clock: attack
/// queries arrive back-to-back, so each observed query advances time by
/// one tick — the adversarial extreme of the rate-budget model.
#[derive(Debug)]
pub struct DetectorMonitor {
    detector: DeviceDetector,
    expected: DeviceResponse,
    now: u64,
    /// Fleet-level flag-latency histogram (queries-before-flag): fed
    /// once, at the moment the detector first flags, so a campaign's
    /// telemetry registry accumulates the distribution across every
    /// monitored device.
    flag_latency: Option<TimerHistogram>,
}

impl DetectorMonitor {
    /// Builds the monitor a campaign attaches before an attack runs:
    /// `enrolled_helper` is the integrity reference, `expected` the
    /// response of a healthy authentication (the device's behavior
    /// under its enrolled key).
    pub fn new(
        config: DetectorConfig,
        scheme_tag: u8,
        enrolled_helper: &[u8],
        expected: DeviceResponse,
    ) -> Self {
        Self {
            detector: DeviceDetector::new(config, scheme_tag, enrolled_helper),
            expected,
            now: 0,
            flag_latency: None,
        }
    }

    /// Attaches a fleet-level flag-latency histogram: the query index
    /// at which this device's detector first flags is recorded into it
    /// (a [`TimerHistogram`] handle shares its stripes across clones,
    /// so every device of a campaign feeds one distribution).
    #[must_use]
    pub fn with_flag_latency(mut self, histogram: TimerHistogram) -> Self {
        self.flag_latency = Some(histogram);
        self
    }

    /// The wrapped detector (flag inspection).
    pub fn detector(&self) -> &DeviceDetector {
        &self.detector
    }
}

impl TrafficMonitor for DetectorMonitor {
    fn observe(&mut self, helper: &[u8], response: &DeviceResponse) -> bool {
        let already_flagged = self.detector.flagged().is_some();
        self.now += 1;
        let auth_ok = response == &self.expected;
        let flagged = self
            .detector
            .observe(self.now, Some(helper), auth_ok)
            .is_flagged();
        if flagged && !already_flagged {
            if let Some(hist) = &self.flag_latency {
                hist.record(self.now);
            }
        }
        flagged
    }

    fn flag_reason(&self) -> Option<String> {
        self.detector
            .flagged()
            .map(|(_, reason)| reason.label().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LISA_TAG;

    #[test]
    fn flags_on_first_manipulated_helper_and_reports_reason() {
        let enrolled = vec![LISA_TAG, 1, 9, 9];
        let expected = DeviceResponse::Tag([5; 32]);
        let mut m = DetectorMonitor::new(DetectorConfig::default(), LISA_TAG, &enrolled, expected);
        assert!(!m.observe(&enrolled, &expected));
        assert_eq!(m.flag_reason(), None);
        let manipulated = vec![LISA_TAG, 1, 9, 8];
        assert!(m.observe(&manipulated, &expected));
        assert!(m.flag_reason().is_some());
        assert_eq!(m.detector().flagged().map(|(t, _)| t), Some(2));
    }

    #[test]
    fn wrong_responses_alone_eventually_flag() {
        let enrolled = vec![LISA_TAG, 1];
        let expected = DeviceResponse::Tag([5; 32]);
        let config = DetectorConfig {
            integrity_check: false,
            rate_window: 2,
            rate_budget: 1_000,
            failure_streak: 3,
        };
        let mut m = DetectorMonitor::new(config, LISA_TAG, &enrolled, expected);
        let wrong = DeviceResponse::Failure;
        assert!(!m.observe(&enrolled, &wrong));
        assert!(!m.observe(&enrolled, &wrong));
        assert!(m.observe(&enrolled, &wrong), "third consecutive failure");
        assert_eq!(m.flag_reason().as_deref(), Some("failure-streak"));
    }
}
