//! The parallel campaign executor.
//!
//! A [`Campaign`] runs one attack against every device of a fleet on a
//! small work-stealing pool of `std::thread` workers: a shared atomic
//! cursor hands out device ids, each worker provisions "its" device from
//! the device's own seeds, captures it behind an
//! [`Oracle`] and runs the attack, so the only
//! nondeterminism (scheduling) cannot leak into results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_attacks::Oracle;
use ropuf_telemetry::{Registry as TelemetryRegistry, TimerHistogram};
use ropuf_verifier::DetectorConfig;

use crate::attack::AttackKind;
use crate::fleet::FleetSpec;
use crate::monitor::DetectorMonitor;
use crate::report::CampaignReport;

/// Structured result of one device's attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRun {
    /// Index of the device within the fleet.
    pub device_id: usize,
    /// The attacker-side RNG seed used (derived, recorded for replay).
    pub attack_seed: u64,
    /// Whether the attack met its success criterion: exact key recovery
    /// for key-recovery attacks, all relations resolved for the
    /// cooperative attack.
    pub success: bool,
    /// Oracle queries the attack spent on this device.
    pub queries: u64,
    /// Length of the device's enrolled key in bits (0 when enrollment
    /// itself failed).
    pub key_bits: usize,
    /// Hamming distance between recovered and enrolled key
    /// (key-recovery attacks only).
    pub hamming_distance: Option<usize>,
    /// `(resolved, total)` relations (cooperative attack only).
    pub relations: Option<(usize, usize)>,
    /// Largest simultaneous hypothesis set tested (distiller-pairing
    /// attack only).
    pub max_hypotheses: Option<usize>,
    /// 1-based oracle query index at which the defender-side detector
    /// first flagged this device (`None`: never flagged, or the
    /// campaign ran without a detector). *Queries-before-flag* /
    /// *time-to-detection* in the closed-loop scenarios.
    pub flagged_at_query: Option<u64>,
    /// Which detector signal fired first (`FlagReason::label` string).
    pub flag_reason: Option<String>,
    /// Enrollment or attack error, if the run never produced an outcome.
    pub error: Option<String>,
    /// Wall-clock time of this device's provision + attack, in
    /// milliseconds. Excluded from deterministic serialization.
    pub wall_ms: f64,
}

/// A full campaign: attack × fleet × execution policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Campaign {
    /// Which attack to run (and so which scheme devices carry).
    pub attack: AttackKind,
    /// The device fleet to sweep over.
    pub fleet: FleetSpec,
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Enable decided-vote early exit where the attack supports it.
    pub early_exit: bool,
    /// Attach a defender-side detector to every device's oracle
    /// ([`DetectorMonitor`]), so runs report queries-before-flag.
    /// Monitoring is passive: attack trajectories and the determinism
    /// contract are unchanged.
    pub detector: Option<DetectorConfig>,
}

impl Campaign {
    /// Number of worker threads `run` will actually use.
    pub fn effective_threads(&self) -> usize {
        let hw = thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.max(1).min(self.fleet.devices.max(1))
    }

    /// Runs the campaign to completion and aggregates a report.
    ///
    /// Results are ordered by device id and — apart from the wall-clock
    /// fields — independent of the thread count (see the crate-level
    /// determinism contract).
    pub fn run(&self) -> CampaignReport {
        self.run_inner(None)
    }

    /// [`Campaign::run`], additionally feeding fleet-level telemetry
    /// into `telemetry`: a `campaign.flag_latency_queries{attack=…}`
    /// histogram holding the queries-before-flag distribution across
    /// every monitored device (empty when [`Campaign::detector`] is
    /// `None` or nothing flags). Telemetry is passive — the report is
    /// identical to [`Campaign::run`]'s.
    pub fn run_with_telemetry(&self, telemetry: &TelemetryRegistry) -> CampaignReport {
        let flag_latency = telemetry.histogram(
            "campaign.flag_latency_queries",
            &[("attack", self.attack.name())],
        );
        self.run_inner(Some(&flag_latency))
    }

    fn run_inner(&self, flag_latency: Option<&TimerHistogram>) -> CampaignReport {
        let started = Instant::now();
        let n = self.fleet.devices;
        let workers = self.effective_threads();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<DeviceRun>();

        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let id = cursor.fetch_add(1, Ordering::Relaxed);
                    if id >= n {
                        break;
                    }
                    if tx.send(self.run_device_inner(id, flag_latency)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
        });

        let mut runs: Vec<DeviceRun> = rx.into_iter().collect();
        runs.sort_by_key(|r| r.device_id);

        CampaignReport {
            attack: self.attack.name().to_string(),
            dims: self.fleet.dims,
            devices: n,
            master_seed: self.fleet.master_seed,
            early_exit: self.early_exit,
            detector: self.detector,
            threads: workers,
            total_wall_ms: started.elapsed().as_secs_f64() * 1e3,
            runs,
        }
    }

    /// Provision-and-attack for a single device (what each worker runs).
    pub fn run_device(&self, device_id: usize) -> DeviceRun {
        self.run_device_inner(device_id, None)
    }

    fn run_device_inner(
        &self,
        device_id: usize,
        flag_latency: Option<&TimerHistogram>,
    ) -> DeviceRun {
        let t0 = Instant::now();
        let seeds = self.fleet.seeds(device_id);
        let scheme = self.attack.scheme();

        let mut run = DeviceRun {
            device_id,
            attack_seed: seeds.attack,
            success: false,
            queries: 0,
            key_bits: 0,
            hamming_distance: None,
            relations: None,
            max_hypotheses: None,
            flagged_at_query: None,
            flag_reason: None,
            error: None,
            wall_ms: 0.0,
        };

        match self.fleet.provision_device(device_id, scheme.as_ref()) {
            Err(e) => run.error = Some(format!("enroll: {e}")),
            Ok(mut device) => {
                let truth = device.enrolled_key().clone();
                run.key_bits = truth.len();
                let mut rng = StdRng::seed_from_u64(seeds.attack);
                let mut oracle = Oracle::new(&mut device);
                if let Some(config) = self.detector {
                    let expected = oracle.expected_response(&truth);
                    let mut monitor = DetectorMonitor::new(
                        config,
                        self.attack.wire_tag(),
                        oracle.original_helper(),
                        expected,
                    );
                    if let Some(hist) = flag_latency {
                        monitor = monitor.with_flag_latency(hist.clone());
                    }
                    oracle.attach_monitor(Box::new(monitor));
                }
                match self.attack.execute(&mut oracle, &mut rng, self.early_exit) {
                    Err(e) => run.error = Some(format!("attack: {e}")),
                    Ok(outcome) => {
                        run.queries = outcome.queries;
                        run.relations = outcome.relations;
                        run.max_hypotheses = outcome.max_hypotheses;
                        if let Some(key) = &outcome.recovered_key {
                            let distance = if key.len() == truth.len() {
                                key.xor(&truth).count_ones()
                            } else {
                                truth.len()
                            };
                            run.hamming_distance = Some(distance);
                            run.success = distance == 0;
                        } else if let Some((resolved, total)) = outcome.relations {
                            run.success = resolved == total && total > 0;
                        }
                    }
                }
                run.flagged_at_query = oracle.first_flagged();
                run.flag_reason = oracle.monitor().and_then(|m| m.flag_reason());
            }
        }
        run.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_constructions::pairing::lisa::LisaConfig;
    use ropuf_sim::ArrayDims;

    fn small_campaign(threads: usize) -> Campaign {
        Campaign {
            attack: AttackKind::Lisa(LisaConfig::default()),
            fleet: FleetSpec {
                dims: ArrayDims::new(16, 8),
                devices: 6,
                master_seed: 11,
            },
            threads,
            early_exit: false,
            detector: None,
        }
    }

    #[test]
    fn lisa_campaign_succeeds_on_small_fleet() {
        let report = small_campaign(2).run();
        assert_eq!(report.runs.len(), 6);
        for run in &report.runs {
            assert!(
                run.error.is_none(),
                "device {}: {:?}",
                run.device_id,
                run.error
            );
            assert!(run.success, "device {} failed", run.device_id);
            assert_eq!(run.hamming_distance, Some(0));
            assert!(run.queries > 0);
        }
        assert_eq!(report.succeeded(), 6);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let serial = small_campaign(1).run();
        let parallel = small_campaign(4).run();
        for (a, b) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(a.device_id, b.device_id);
            assert_eq!(a.success, b.success);
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.hamming_distance, b.hamming_distance);
            assert_eq!(a.attack_seed, b.attack_seed);
        }
    }

    #[test]
    fn detector_reports_flags_without_perturbing_the_attack() {
        let plain = small_campaign(2).run();
        let mut monitored = small_campaign(2);
        monitored.detector = Some(ropuf_verifier::DetectorConfig::default());
        let monitored = monitored.run();

        for (a, b) in plain.runs.iter().zip(&monitored.runs) {
            // Passive monitoring: identical attack trajectory...
            assert_eq!(a.success, b.success);
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.hamming_distance, b.hamming_distance);
            assert_eq!(a.flagged_at_query, None, "no detector, no flags");
            // ...but the monitored run knows when the defender caught it,
            // long before the attack finished.
            let flagged_at = b.flagged_at_query.expect("attack must be flagged");
            assert!(
                flagged_at < b.queries,
                "device {}: flagged at {} of {} queries",
                b.device_id,
                flagged_at,
                b.queries
            );
            assert!(b.flag_reason.is_some());
        }
    }

    #[test]
    fn telemetry_collects_flag_latency_without_changing_the_report() {
        let mut monitored = small_campaign(2);
        monitored.detector = Some(ropuf_verifier::DetectorConfig::default());
        let registry = ropuf_telemetry::Registry::new();
        let with = monitored.run_with_telemetry(&registry);
        let without = monitored.run();
        for (a, b) in with.runs.iter().zip(&without.runs) {
            // Telemetry is passive: same trajectory, same flags.
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.flagged_at_query, b.flagged_at_query);
        }
        // One flag-latency sample per flagged device, and the recorded
        // values are the per-device queries-before-flag indices.
        let snapshot = registry.snapshot();
        let flagged = with
            .runs
            .iter()
            .filter(|r| r.flagged_at_query.is_some())
            .count() as u64;
        assert!(flagged > 0, "default LISA campaign must flag");
        assert_eq!(
            snapshot.histogram_samples("campaign.flag_latency_queries"),
            flagged
        );
    }

    #[test]
    fn effective_threads_is_bounded_by_fleet() {
        let mut c = small_campaign(64);
        assert!(c.effective_threads() <= 6);
        c.threads = 1;
        assert_eq!(c.effective_threads(), 1);
    }
}
