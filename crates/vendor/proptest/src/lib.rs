//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, implementing the subset this workspace uses:
//! the [`proptest!`] macro with plain-identifier argument patterns,
//! `any::<T>()`, ranges as strategies, [`collection::vec`] /
//! [`collection::btree_set`], and the `prop_assert*` macros.
//!
//! Differences from the real crate (see `crates/vendor/README.md`):
//! no shrinking — a failing case reports its case index and the
//! deterministic per-test seed — and each property runs a fixed 64
//! cases drawn from a seed derived from the test's name, so failures
//! are reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A failed property-test assertion (carried as an `Err` so the macro
/// can attach case context before panicking).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving case generation (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a), so each property gets a
    /// stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(if h == 0 { 0x9E37_79B9 } else { h })
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`" — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over all values of `T` (`bool`, unsigned ints).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Size bounds for collection strategies.
pub trait SizeRange {
    /// Inclusive `(min, max)` element counts.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vector of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + (rng.next_u64() as usize) % (self.max - self.min + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Set of distinct `element` values with a cardinality in `size`
    /// (best-effort: a small element domain may cap the reachable size).
    pub fn btree_set<S>(element: S, size: impl SizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.min + (rng.next_u64() as usize) % (self.max - self.min + 1);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

/// Property-failure assertion: records the failure instead of panicking
/// so the harness can attach case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declares property tests. Each test body runs 64 deterministic cases;
/// argument patterns must be plain identifiers (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..64u32 {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn vec_len_in_bounds(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10, "len {}", v.len());
        }

        #[test]
        fn btree_set_size_capped(s in crate::collection::btree_set(0usize..15, 0..=2)) {
            prop_assert!(s.len() <= 2);
            for &x in &s {
                prop_assert!(x < 15);
            }
        }

        #[test]
        fn f64_range_respected(x in -2.0..3.0f64) {
            prop_assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
