//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing the 0.9-style API subset this workspace uses.
//!
//! See `crates/vendor/README.md` for scope and caveats. The headline
//! difference from the real crate: [`rngs::StdRng`] is a xoshiro256++
//! generator (SplitMix64-seeded), not ChaCha12, so output streams are
//! reproducible within this workspace but not bit-identical to builds
//! linked against real `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level random number generator: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the
/// stand-in for the real crate's `StandardUniform` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, bound)` by rejection sampling on the
/// top of the 64-bit stream (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone: multiples of `bound` fitting in u64.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return <$t as StandardSample>::sample(rng);
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`] (the user-facing
/// trait of the real crate).
pub trait Rng: RngCore {
    /// Draws a value uniformly via [`StandardSample`] (`bool` is a fair
    /// coin, floats are uniform in `[0, 1)`, integers use all bits).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanded with SplitMix64 exactly
    /// like the real crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++
    /// (Blackman & Vigna, 2019). **Not** the ChaCha12 generator of the
    /// real crate — see `crates/vendor/README.md`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let ones = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _: bool = dyn_rng.random();
        let _ = dyn_rng.random_range(0usize..10);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
