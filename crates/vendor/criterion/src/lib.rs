//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. Implements the API subset the workspace's benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`].
//!
//! Each benchmark is warmed up once, then timed for `sample_size`
//! samples of adaptively chosen iteration counts; the mean, minimum and
//! maximum per-iteration wall time are printed. No statistical analysis
//! or HTML reports — see `crates/vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up pass; also calibrates the per-sample iteration count so
        // one sample costs ~10 ms (bounded to keep total runtime sane).
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "bench {name:<48} mean {:>12} min {:>12} max {:>12} ({} samples x {} iters)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many iterations as the harness
    /// requested for this sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions (both classic and
/// `name`/`config`/`targets` forms of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        trivial(&mut c);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
