//! Incremental (non-blocking) frame decoding: regression tests for the
//! `FrameAccum`/`poll_frame` machinery plus the chunking-invariance
//! property the evented server's per-connection state machines rely
//! on — however a byte stream is sliced by the transport, the decoded
//! request sequence is identical.

use std::io::{self, Read, Write};

use proptest::prelude::*;
use ropuf_proto::{
    AuthItem, FaultPlan, FaultyStream, FrameAccum, FrameError, FramePoll, FrameReader, FrameWriter,
    Request, RequestRef, WireAuthResponse, MAX_FRAME, RATE_ONE, SCRATCH_RETAIN,
};

/// A `Read` source that delivers its data in caller-chosen chunk
/// sizes, returning `WouldBlock` between chunks — the byte-stream
/// shape a non-blocking socket presents to an epoll loop.
struct ChunkedSource {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next_chunk: usize,
    /// Alternates so every chunk is followed by one `WouldBlock`.
    block_next: bool,
    reads: usize,
}

impl ChunkedSource {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> Self {
        Self {
            data,
            pos: 0,
            chunks,
            next_chunk: 0,
            block_next: false,
            reads: 0,
        }
    }
}

impl Read for ChunkedSource {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        if self.pos == self.data.len() {
            return Ok(0); // clean EOF
        }
        if self.block_next {
            self.block_next = false;
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "no bytes yet"));
        }
        let chunk = self
            .chunks
            .get(self.next_chunk)
            .copied()
            .unwrap_or(1)
            .max(1);
        self.next_chunk = (self.next_chunk + 1) % self.chunks.len().max(1);
        let n = chunk.min(self.data.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.block_next = true;
        Ok(n)
    }
}

/// A source that never has bytes: every read is `WouldBlock`.
struct NeverReady {
    reads: usize,
}

impl Read for NeverReady {
    fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        Err(io::Error::new(io::ErrorKind::WouldBlock, "never"))
    }
}

/// Builds a deterministic request sequence from raw nonce material.
fn requests_from(nonces: &[Vec<u8>]) -> Vec<Request> {
    nonces
        .iter()
        .enumerate()
        .map(|(i, nonce)| match i % 3 {
            0 => Request::Authenticate(AuthItem {
                device_id: i as u64,
                now: (i as u64) * 3,
                nonce: nonce.clone(),
                response: if nonce.len() % 2 == 0 {
                    WireAuthResponse::Failure
                } else {
                    WireAuthResponse::Tag([nonce.first().copied().unwrap_or(7); 32])
                },
                presented_helper: if nonce.is_empty() {
                    None
                } else {
                    Some(nonce.clone())
                },
            }),
            1 => Request::QueryVerdict {
                device_id: nonce.len() as u64,
            },
            _ => Request::Hello {
                protocol: 1,
                client: format!("chunked-{i}"),
            },
        })
        .collect()
}

/// Encodes `requests` as one contiguous framed byte stream.
fn framed_stream(requests: &[Request]) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut writer = FrameWriter::new(&mut wire);
    for request in requests {
        writer.write_request(request).unwrap();
    }
    wire
}

/// Drives a `FrameAccum` over a chunked source to completion, decoding
/// every frame as a request (the evented server's read loop, minus the
/// handler).
fn decode_all_chunked(source: &mut ChunkedSource) -> Vec<Request> {
    let mut accum = FrameAccum::new();
    let mut decoded = Vec::new();
    loop {
        match accum.poll(source).expect("well-formed stream") {
            FramePoll::Frame => {
                decoded.push(RequestRef::decode(accum.payload()).unwrap().into_owned());
                accum.finish_frame();
            }
            FramePoll::Pending => continue, // next readiness notification
            FramePoll::Eof => return decoded,
        }
    }
}

proptest! {
    #[test]
    fn chunking_invariance(
        nonces in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            1..7,
        ),
        chunks in proptest::collection::vec(1usize..64, 1..24),
    ) {
        let requests = requests_from(&nonces);
        let wire = framed_stream(&requests);

        // Reference decode: the blocking reader over the whole buffer.
        let mut reference = Vec::new();
        let mut reader = FrameReader::new(&wire[..]);
        while let Some(request) = reader.read_request().unwrap() {
            reference.push(request);
        }
        prop_assert_eq!(&reference, &requests);

        // Incremental decode under this chunking must match exactly.
        let mut source = ChunkedSource::new(wire.clone(), chunks);
        let chunked = decode_all_chunked(&mut source);
        prop_assert_eq!(&chunked, &requests);

        // And byte-at-a-time, the adversarial extreme.
        let mut trickle = ChunkedSource::new(wire, vec![1]);
        let trickled = decode_all_chunked(&mut trickle);
        prop_assert_eq!(&trickled, &requests);
    }
}

proptest! {
    /// Chunking invariance extends through the fault layer: however a
    /// seeded [`FaultPlan`] re-chunks the byte stream — short reads
    /// and short writes at any rate, stacked on top of an adversarial
    /// transport chunking — the decoded request sequence is identical.
    /// (This is the property that lets the chaos equivalence suite
    /// inject partial I/O everywhere while still demanding bit-for-bit
    /// identical answers.)
    #[test]
    fn faulty_stream_partial_io_is_chunking_invariant(
        nonces in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            1..7,
        ),
        chunks in proptest::collection::vec(1usize..64, 1..24),
        seed in any::<u64>(),
        rate in 0u32..=RATE_ONE,
    ) {
        let requests = requests_from(&nonces);
        let wire = framed_stream(&requests);

        // Write side: a frame stream written through partial-writing
        // faults arrives byte-identical.
        let mut sink = Vec::new();
        let mut faulty = FaultyStream::new(
            &mut sink,
            FaultPlan::new(seed).with_partial_io(rate),
        );
        faulty.write_all(&wire).unwrap();
        drop(faulty);
        prop_assert_eq!(&sink, &wire); // short writes may reorder nothing

        // Read side: faults stacked on transport chunking decode to
        // the same request sequence.
        let source = ChunkedSource::new(wire, chunks);
        let mut faulty = FaultyStream::new(
            source,
            FaultPlan::new(seed.wrapping_add(1)).with_partial_io(rate),
        );
        let mut accum = FrameAccum::new();
        let mut decoded = Vec::new();
        loop {
            match accum.poll(&mut faulty).expect("well-formed stream") {
                FramePoll::Frame => {
                    decoded.push(RequestRef::decode(accum.payload()).unwrap().into_owned());
                    accum.finish_frame();
                }
                FramePoll::Pending => continue,
                FramePoll::Eof => break,
            }
        }
        prop_assert_eq!(&decoded, &requests);
    }
}

#[test]
fn poll_does_not_busy_spin_on_an_empty_source() {
    let mut source = NeverReady { reads: 0 };
    let mut accum = FrameAccum::new();
    for polls in 1..=16 {
        assert_eq!(accum.poll(&mut source).unwrap(), FramePoll::Pending);
        assert_eq!(
            source.reads, polls,
            "each poll must issue exactly one read when the source is dry"
        );
    }
}

#[test]
fn poll_read_calls_are_linear_in_delivered_chunks() {
    let requests = requests_from(&[vec![1; 40], vec![2; 17]]);
    let wire = framed_stream(&requests);
    let total = wire.len();
    let mut source = ChunkedSource::new(wire, vec![3]);
    let decoded = decode_all_chunked(&mut source);
    assert_eq!(decoded, requests);
    // Every read yields 3 bytes then one WouldBlock, plus the final
    // clean-EOF read: reads are linear in the stream length, with no
    // retry storm hidden inside poll.
    let chunks = total.div_ceil(3);
    assert!(
        source.reads <= 2 * chunks + 2,
        "{} reads for {chunks} chunks — poll is re-reading without new data",
        source.reads
    );
}

/// A drained piece of a socket's byte stream: reports `WouldBlock`
/// when empty (the socket is still open, just idle), unlike a plain
/// slice whose exhaustion reads as EOF.
struct Piece<'a>(&'a [u8]);

impl Read for Piece<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.0.is_empty() {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
        }
        let n = self.0.len().min(buf.len());
        buf[..n].copy_from_slice(&self.0[..n]);
        self.0 = &self.0[n..];
        Ok(n)
    }
}

#[test]
fn pending_keeps_partial_header_and_payload_state() {
    // 2 header bytes, stall, 2 more, stall, then the payload.
    let request = Request::Snapshot;
    let wire = framed_stream(&[request.clone()]);
    let mut accum = FrameAccum::new();
    let mut fed = 0;
    for step in [2usize, 2, wire.len()] {
        let mut piece = Piece(&wire[fed..(fed + step).min(wire.len())]);
        fed = (fed + step).min(wire.len());
        let poll = accum.poll(&mut piece).unwrap();
        if fed < wire.len() {
            assert_eq!(poll, FramePoll::Pending, "frame cannot complete early");
            assert!(accum.mid_frame(), "partial state must persist");
        } else {
            assert_eq!(poll, FramePoll::Frame, "all bytes delivered");
        }
    }
    let decoded = RequestRef::decode(accum.payload()).unwrap().into_owned();
    assert_eq!(decoded, request);
}

#[test]
fn scratch_is_bounded_after_a_large_frame_completes() {
    let big = vec![0xAB; 1024 * 1024];
    let mut wire = Vec::new();
    ropuf_proto::append_frame(&mut wire, &big).unwrap();
    let mut accum = FrameAccum::new();
    let mut src = &wire[..];
    assert_eq!(accum.poll(&mut src).unwrap(), FramePoll::Frame);
    assert_eq!(accum.payload(), &big[..]);
    assert!(accum.scratch_capacity() >= big.len(), "grew for the frame");
    accum.finish_frame();
    assert!(
        accum.scratch_capacity() <= SCRATCH_RETAIN,
        "capacity {} must be released after the frame",
        accum.scratch_capacity()
    );
}

#[test]
fn scratch_is_bounded_across_error_paths() {
    // EOF in the middle of a large declared payload: the 1 MiB scratch
    // the declared length grew must not stay pinned after the error.
    let mut wire = (1024u32 * 1024).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 4096]); // only 4 KiB of it arrives
    let mut accum = FrameAccum::new();
    let mut src = &wire[..];
    let err = accum.poll(&mut src).unwrap_err();
    assert!(matches!(err, FrameError::Io(_)), "EOF mid-frame");
    assert!(
        accum.scratch_capacity() <= SCRATCH_RETAIN,
        "error path retained {} bytes",
        accum.scratch_capacity()
    );
    assert!(!accum.mid_frame(), "partial state cleared after error");

    // Oversize header: rejected before any allocation at all.
    let huge = (MAX_FRAME + 1).to_le_bytes();
    let mut accum = FrameAccum::new();
    let mut src = &huge[..];
    assert!(matches!(accum.poll(&mut src), Err(FrameError::Oversize(_))));
    assert!(accum.scratch_capacity() <= SCRATCH_RETAIN);

    // And the accumulator still works after errors: a fresh valid
    // frame decodes normally.
    let wire = framed_stream(&[Request::Snapshot]);
    let mut src = &wire[..];
    assert_eq!(accum.poll(&mut src).unwrap(), FramePoll::Frame);
    assert_eq!(
        RequestRef::decode(accum.payload()).unwrap().into_owned(),
        Request::Snapshot
    );
}

#[test]
fn frame_reader_scratch_is_bounded_after_decode_errors() {
    // A large garbage frame decodes to an error; the reader's scratch
    // must be re-bounded by the time the connection reads again (the
    // lazy-finish contract), and the stream must stay frame-aligned.
    let garbage = vec![0x7F; 900 * 1024];
    let mut wire = Vec::new();
    ropuf_proto::append_frame(&mut wire, &garbage).unwrap();
    FrameWriter::new(&mut wire)
        .write_request(&Request::Snapshot)
        .unwrap();

    let mut reader = FrameReader::new(&wire[..]);
    assert!(matches!(reader.read_request(), Err(FrameError::Decode(_))));
    // Next read consumes the bad frame's buffer and re-bounds it…
    assert_eq!(reader.read_request().unwrap(), Some(Request::Snapshot));
    assert!(
        reader.scratch_capacity() <= SCRATCH_RETAIN,
        "decode-error path retained {} bytes",
        reader.scratch_capacity()
    );
    assert_eq!(reader.read_request().unwrap(), None);
}

#[test]
fn frame_reader_poll_api_matches_blocking_reads() {
    let requests = requests_from(&[vec![5; 9], vec![], vec![8; 3]]);
    let wire = framed_stream(&requests);
    let mut reader = FrameReader::new(&wire[..]);
    let mut decoded = Vec::new();
    loop {
        match reader.poll_frame().unwrap() {
            FramePoll::Frame => {
                decoded.push(
                    RequestRef::decode(reader.frame_payload())
                        .unwrap()
                        .into_owned(),
                );
                reader.finish_frame();
            }
            FramePoll::Eof => break,
            FramePoll::Pending => unreachable!("in-memory source never blocks"),
        }
    }
    assert_eq!(decoded, requests);
}
