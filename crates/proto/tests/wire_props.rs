//! Property tests for `ropuf-wire/v1`.
//!
//! Two families, per the serving-layer acceptance criteria:
//!
//! 1. **Roundtrip** — for every message type, `decode(encode(m)) == m`
//!    over randomized field values.
//! 2. **Hostility** — arbitrary byte soup, mutated valid encodings and
//!    every strict prefix of a valid encoding produce typed errors
//!    (or a different valid message, for mutations) — the decoder
//!    never panics and never over-reads.

use proptest::collection::vec;
use proptest::prelude::*;
use ropuf_proto::{
    AuthItem, ErrorCode, FrameReader, FrameWriter, Request, RequestRef, Response, WireAuthResponse,
    WireFlagReason, WireVerdict,
};

/// Deterministically expands a compact seed tuple into an [`AuthItem`]
/// (the vendored proptest has no composite strategies).
fn item_from(seed: u64, nonce: Vec<u8>, helper: Vec<u8>, shape: u8) -> AuthItem {
    AuthItem {
        device_id: seed,
        now: seed.rotate_left(17),
        nonce,
        response: if shape & 1 == 0 {
            WireAuthResponse::Failure
        } else {
            let mut tag = [0u8; 32];
            tag.iter_mut()
                .enumerate()
                .for_each(|(i, b)| *b = (seed as u8).wrapping_add(i as u8));
            WireAuthResponse::Tag(tag)
        },
        presented_helper: (shape & 2 == 0).then_some(helper),
    }
}

fn reason_from(code: u8) -> WireFlagReason {
    WireFlagReason::from_code(code % 4).expect("codes 0..=3 are valid")
}

fn verdict_from(shape: u8) -> WireVerdict {
    match shape % 3 {
        0 => WireVerdict::Accept,
        1 => WireVerdict::Reject,
        _ => WireVerdict::Flagged(reason_from(shape / 3)),
    }
}

proptest! {
    #[test]
    fn hello_and_enroll_roundtrip(
        protocol in any::<u16>(),
        device_id in any::<u64>(),
        scheme_tag in any::<u8>(),
        helper in vec(any::<u8>(), 0..300),
        digest_fill in any::<u8>(),
    ) {
        let requests = [
            Request::Hello { protocol, client: format!("client-{protocol}") },
            Request::Enroll {
                device_id,
                scheme_tag,
                helper,
                key_digest: [digest_fill; 32],
            },
            Request::QueryVerdict { device_id },
            Request::Snapshot,
            Request::SnapshotV2,
            Request::MetricsSnapshot,
            Request::TraceDump,
            Request::TimeSeriesDump,
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode());
            prop_assert_eq!(decoded.as_ref(), Ok(&request));
        }
    }

    #[test]
    fn authenticate_roundtrips(
        seed in any::<u64>(),
        nonce in vec(any::<u8>(), 0..64),
        helper in vec(any::<u8>(), 0..300),
        shape in any::<u8>(),
    ) {
        let request = Request::Authenticate(item_from(seed, nonce, helper, shape));
        let decoded = Request::decode(&request.encode());
            prop_assert_eq!(decoded.as_ref(), Ok(&request));
    }

    #[test]
    fn batch_authenticate_roundtrips(
        seed in any::<u64>(),
        shapes in vec(any::<u8>(), 0..12),
        helper in vec(any::<u8>(), 0..100),
    ) {
        let items: Vec<AuthItem> = shapes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                item_from(seed.wrapping_add(i as u64), vec![s; (s % 9) as usize], helper.clone(), s)
            })
            .collect();
        let request = Request::BatchAuthenticate { items };
        let decoded = Request::decode(&request.encode());
            prop_assert_eq!(decoded.as_ref(), Ok(&request));
    }

    #[test]
    fn responses_roundtrip(
        protocol in any::<u16>(),
        device_id in any::<u64>(),
        at in any::<u64>(),
        shapes in vec(any::<u8>(), 0..12),
        reason_code in any::<u8>(),
        error_code in 1u8..=9,
        text in vec(97u8..123, 0..40),
        blob in vec(any::<u8>(), 0..200),
    ) {
        let text = String::from_utf8(text).expect("ascii letters");
        let responses = [
            Response::HelloOk { protocol, server: text.clone() },
            Response::EnrollOk { device_id },
            Response::Verdict(verdict_from(reason_code)),
            Response::VerdictBatch(shapes.iter().map(|&s| verdict_from(s)).collect()),
            Response::FlagInfo { flagged: None },
            Response::FlagInfo { flagged: Some((at, reason_from(reason_code))) },
            Response::SnapshotText { json: text.clone() },
            Response::SnapshotBin { bytes: blob.clone() },
            Response::MetricsBin { bytes: blob.clone() },
            Response::TraceBin { bytes: blob.clone() },
            Response::TimeSeriesBin { bytes: blob },
            Response::Error {
                code: ErrorCode::from_code(error_code).expect("1..=9 are valid"),
                detail: text,
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode());
            prop_assert_eq!(decoded.as_ref(), Ok(&response));
        }
    }

    /// The allocation-free codec paths are bit-for-bit the allocating
    /// ones: `encode_into` a dirty reused buffer == fresh `encode`, and
    /// the borrowing `RequestRef::decode` agrees with `Request::decode`
    /// on both the message and (under truncation) the error.
    #[test]
    fn reused_buffer_and_borrowing_paths_match_allocating_paths(
        seed in any::<u64>(),
        nonce in vec(any::<u8>(), 0..64),
        helper in vec(any::<u8>(), 0..200),
        shapes in vec(any::<u8>(), 0..6),
        shape in any::<u8>(),
        cut_seed in any::<u64>(),
    ) {
        let requests = [
            Request::Authenticate(item_from(seed, nonce.clone(), helper.clone(), shape)),
            Request::BatchAuthenticate {
                items: shapes
                    .iter()
                    .map(|&s| item_from(seed ^ u64::from(s), nonce.clone(), helper.clone(), s))
                    .collect(),
            },
            Request::Hello { protocol: seed as u16, client: format!("c{seed}") },
            Request::Snapshot,
            Request::SnapshotV2,
            Request::MetricsSnapshot,
            Request::TraceDump,
            Request::TimeSeriesDump,
        ];
        // One deliberately dirty buffer reused across all encodes.
        let mut reused = vec![0xEEu8; 37];
        for request in &requests {
            let fresh = request.encode();
            request.encode_into(&mut reused);
            prop_assert_eq!(&reused, &fresh);

            // Borrowing decode agrees with the owned decode...
            let borrowed = RequestRef::decode(&fresh);
            let owned = Request::decode(&fresh);
            prop_assert_eq!(
                borrowed.clone().map(RequestRef::into_owned),
                owned.clone()
            );
            prop_assert_eq!(owned.as_ref().ok(), Some(request));
            // ...and a re-encode of the borrowed view is byte-stable.
            let mut re = Vec::new();
            borrowed.unwrap().encode_into(&mut re);
            prop_assert_eq!(&re, &fresh);

            // Same typed error on truncation.
            if !fresh.is_empty() {
                let cut = (cut_seed % fresh.len() as u64) as usize;
                prop_assert_eq!(
                    RequestRef::decode(&fresh[..cut]).map(RequestRef::into_owned),
                    Request::decode(&fresh[..cut])
                );
            }
        }
    }

    /// Frames written through a reused writer and read back through a
    /// reused reader roundtrip bit-for-bit with the allocating API, in
    /// sequence position, for mixed message sizes.
    #[test]
    fn frame_buffer_reuse_roundtrips_sequences(
        seed in any::<u64>(),
        sizes in vec(1usize..300, 1..8),
    ) {
        let requests: Vec<Request> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Request::Authenticate(item_from(
                seed.wrapping_add(i as u64),
                vec![i as u8; n],
                vec![!(i as u8); n / 2],
                i as u8,
            )))
            .collect();
        let mut wire = Vec::new();
        {
            // One writer: its internal encode buffer is reused across
            // every frame, shrinking and growing with the messages.
            let mut w = FrameWriter::new(&mut wire);
            for request in &requests {
                w.write_request(request).unwrap();
            }
        }
        // Reference wire bytes from the allocating encode.
        let mut reference = Vec::new();
        for request in &requests {
            let payload = request.encode();
            reference.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            reference.extend_from_slice(&payload);
        }
        prop_assert_eq!(&wire, &reference);

        // One reader: reused payload buffer, owned decode.
        let mut r = FrameReader::new(&wire[..]);
        for request in &requests {
            let got = r.read_request().unwrap();
            prop_assert_eq!(got.as_ref(), Some(request));
        }
        prop_assert_eq!(r.read_request().unwrap(), None);

        // Same stream through the borrowing read path.
        let mut r = FrameReader::new(&wire[..]);
        for request in &requests {
            let got = r.read_request_ref().unwrap().map(RequestRef::into_owned);
            prop_assert_eq!(got.as_ref(), Some(request));
        }
        prop_assert!(r.read_request_ref().unwrap().is_none(), "clean EOF");
    }

    /// Arbitrary byte soup never panics either decoder and never
    /// over-reads (an over-read would be a panic: the cursor is
    /// slice-backed).
    #[test]
    fn byte_soup_never_panics(soup in vec(any::<u8>(), 0..600)) {
        let _ = Request::decode(&soup);
        let _ = Response::decode(&soup);
        // The frame layer over the same soup: must terminate with
        // Ok(None), a frame, or a typed error — no panic, no hang.
        let mut reader = FrameReader::new(&soup[..]);
        for _ in 0..4 {
            if reader.read_request().is_err() {
                break;
            }
        }
    }

    /// Every strict prefix of a valid encoding fails with a typed
    /// error (strict framing means a shorter valid message can never
    /// hide inside a longer one's prefix).
    #[test]
    fn strict_prefixes_always_fail(
        seed in any::<u64>(),
        nonce in vec(any::<u8>(), 1..48),
        helper in vec(any::<u8>(), 1..200),
        shape in any::<u8>(),
    ) {
        let request = Request::Authenticate(item_from(seed, nonce, helper, shape));
        let bytes = request.encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                Request::decode(&bytes[..cut]).is_err(),
                "prefix of length {} decoded", cut
            );
        }
    }

    /// Single-byte corruption of a valid encoding either still decodes
    /// (the flipped byte was plain data) or fails with a typed error —
    /// never a panic.
    #[test]
    fn point_mutations_never_panic(
        seed in any::<u64>(),
        nonce in vec(any::<u8>(), 0..32),
        helper in vec(any::<u8>(), 0..100),
        shape in any::<u8>(),
        flip in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let request = Request::Authenticate(item_from(seed, nonce, helper, shape));
        let mut bytes = request.encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip | 1; // guaranteed to change the byte
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}
