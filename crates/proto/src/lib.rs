//! `ropuf-wire/v1` — the binary wire protocol of the ropuf serving
//! layer.
//!
//! The ROADMAP's north star is a verifier that "serves heavy traffic
//! from millions of users"; that needs a real serving surface, and a
//! serving surface needs a wire contract. This crate is that contract,
//! self-contained and dependency-free (the offline crate set has no
//! `serde`/`tokio`): message types, their byte encodings, and a
//! length-framed stream layer over `std::io::{Read, Write}` that both
//! the TCP server (`ropuf_server`) and its clients (loadgen, tests)
//! speak.
//!
//! # Format
//!
//! A frame is `[length: u32 le][payload]`, the payload exactly one
//! message: a one-byte type followed by the fields in declaration
//! order. All integers are little-endian; variable-length fields carry
//! explicit `u32` lengths. The same hostile-input posture as the
//! helper-data wire format (`ropuf_constructions::wire`, paper §VII-C)
//! applies one layer up:
//!
//! * decoding **never panics** and never reads out of bounds — every
//!   anomaly is a typed [`DecodeError`];
//! * every declared length/count is validated against both a semantic
//!   cap ([`codec::MAX_BYTES`], [`codec::MAX_ITEMS`], [`MAX_FRAME`])
//!   and the bytes actually present, **before** allocation;
//! * one frame is exactly one message: truncation and trailing bytes
//!   are errors.
//!
//! # Messages
//!
//! | direction | message | purpose |
//! |-----------|---------|---------|
//! | → | [`Request::Hello`] | version handshake |
//! | → | [`Request::Enroll`] | store `{scheme tag, helper, key digest}` |
//! | → | [`Request::Authenticate`] | one nonce/tag attempt |
//! | → | [`Request::BatchAuthenticate`] | many attempts, amortized locking |
//! | → | [`Request::QueryVerdict`] | a device's flag state |
//! | → | [`Request::Snapshot`] | `ropuf-verifier/v1` registry dump (legacy JSON) |
//! | → | [`Request::SnapshotV2`] | `ropuf-verifier/v2` binary registry snapshot |
//! | ← | [`Response::HelloOk`], [`Response::EnrollOk`], [`Response::Verdict`], [`Response::VerdictBatch`], [`Response::FlagInfo`], [`Response::SnapshotText`], [`Response::SnapshotBin`] | success answers |
//! | ← | [`Response::Error`] | typed failure ([`ErrorCode`]) — notably [`ErrorCode::DeviceFlagged`]: quarantined devices are rejected at the wire |
//!
//! # Example
//!
//! ```
//! use ropuf_proto::{FrameReader, FrameWriter, Request, PROTOCOL_VERSION};
//!
//! // Any Read/Write pair carries frames; here an in-memory buffer.
//! let mut wire = Vec::new();
//! FrameWriter::new(&mut wire)
//!     .write_request(&Request::Hello {
//!         protocol: PROTOCOL_VERSION,
//!         client: "example".into(),
//!     })
//!     .unwrap();
//! let decoded = FrameReader::new(&wire[..]).read_request().unwrap();
//! assert!(matches!(decoded, Some(Request::Hello { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod faults;
pub mod frame;
pub mod message;

pub use codec::DecodeError;
pub use faults::{derive_seed, FaultPlan, FaultStats, FaultyStream, RATE_ONE};
pub use frame::{
    append_frame, FrameAccum, FrameError, FramePoll, FrameReader, FrameWriter, MAX_FRAME,
    SCRATCH_RETAIN,
};
pub use message::{
    overload_detail, parse_retry_after_ms, AuthItem, AuthItemRef, ErrorCode, Request, RequestRef,
    Response, WireAuthResponse, WireFlagReason, WireVerdict, PROTOCOL_VERSION, WIRE_SCHEMA,
};
