//! Bounds-checked little-endian primitives.
//!
//! Everything on the wire is built from the few shapes here: fixed-
//! width little-endian integers, fixed 32-byte digests, and
//! `u32`-length-prefixed byte strings. [`Reader`] is a cursor that can
//! only fail with a typed [`DecodeError`] — it never panics and never
//! reads past its slice — and every declared length is checked against
//! both a semantic cap and the bytes actually remaining *before* any
//! allocation, so a forged length can neither over-read nor
//! over-allocate.

use std::fmt;

/// Largest length-prefixed byte field (helper blobs, nonces, names,
/// error details) a peer may declare. Generous against real traffic —
/// helper blobs are hundreds of bytes — while bounding what a forged
/// length can make the decoder allocate.
pub const MAX_BYTES: usize = 64 * 1024;

/// Largest element count a peer may declare for a repeated field
/// (batch items). Bounds allocation the same way [`MAX_BYTES`] does.
pub const MAX_ITEMS: usize = 4096;

/// Decoding failure. Every malformed input maps to one of these —
/// decoding never panics and never reads out of bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a field was complete.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A message decoded completely but bytes were left over (strict
    /// framing: one frame is exactly one message).
    TrailingBytes(usize),
    /// A declared length exceeds its cap or the remaining input.
    LengthOutOfBounds {
        /// Which field declared it.
        field: &'static str,
        /// The declared length or count.
        declared: u64,
        /// The largest acceptable value at this point.
        limit: u64,
    },
    /// Unknown message-type byte.
    UnknownMessage(u8),
    /// Unknown discriminant inside a message (verdict, response kind,
    /// flag reason, error code, option marker).
    UnknownDiscriminant {
        /// Which enum field carried it.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A text field is not valid UTF-8.
    BadUtf8(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "input ended early: field needs {needed} bytes, {remaining} left"
                )
            }
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete message")
            }
            DecodeError::LengthOutOfBounds {
                field,
                declared,
                limit,
            } => write!(
                f,
                "{field}: declared length {declared} exceeds limit {limit}"
            ),
            DecodeError::UnknownMessage(t) => write!(f, "unknown message type byte {t:#04x}"),
            DecodeError::UnknownDiscriminant { field, value } => {
                write!(f, "{field}: unknown discriminant {value:#04x}")
            }
            DecodeError::BadUtf8(field) => write!(f, "{field}: not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked read cursor over one frame payload.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors with [`DecodeError::TrailingBytes`] unless the cursor
    /// consumed its input exactly.
    pub fn finish(&self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(DecodeError::TrailingBytes(n)),
        }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Fixed 32-byte digest/tag.
    pub fn digest(&mut self) -> Result<[u8; 32], DecodeError> {
        Ok(self.take(32)?.try_into().expect("len 32"))
    }

    /// A `u32`-length-prefixed byte string **borrowed from the input**,
    /// capped at `min(cap, remaining)` — the zero-copy primitive behind
    /// [`Reader::bytes`]. Use it directly when the field is immediately
    /// re-parsed, hashed, or compared rather than kept.
    pub fn bytes_ref(&mut self, field: &'static str, cap: usize) -> Result<&'a [u8], DecodeError> {
        let declared = self.u32()? as usize;
        let limit = cap.min(self.remaining());
        if declared > limit {
            return Err(DecodeError::LengthOutOfBounds {
                field,
                declared: declared as u64,
                limit: limit as u64,
            });
        }
        self.take(declared)
    }

    /// A `u32`-length-prefixed byte string, copied out (copy-on-keep
    /// over [`Reader::bytes_ref`]), capped at `min(cap, remaining)`
    /// **before** allocation.
    pub fn bytes(&mut self, field: &'static str, cap: usize) -> Result<Vec<u8>, DecodeError> {
        self.bytes_ref(field, cap).map(<[u8]>::to_vec)
    }

    /// A length-prefixed UTF-8 string **borrowed from the input**.
    pub fn str_ref(&mut self, field: &'static str, cap: usize) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes_ref(field, cap)?).map_err(|_| DecodeError::BadUtf8(field))
    }

    /// A length-prefixed UTF-8 string, copied out.
    pub fn string(&mut self, field: &'static str, cap: usize) -> Result<String, DecodeError> {
        self.str_ref(field, cap).map(str::to_owned)
    }

    /// A `u32` element count for a repeated field, capped at
    /// `min(cap, remaining)` — an element occupies at least one byte,
    /// so a count beyond the remaining bytes is always forged.
    pub fn count(&mut self, field: &'static str, cap: usize) -> Result<usize, DecodeError> {
        let declared = self.u32()? as usize;
        let limit = cap.min(self.remaining());
        if declared > limit {
            return Err(DecodeError::LengthOutOfBounds {
                field,
                declared: declared as u64,
                limit: limit as u64,
            });
        }
        Ok(declared)
    }
}

/// Encode-side helpers (append-only, infallible).
pub trait Writer {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a `u32`-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `u32::MAX` — unreachable for fields
    /// that respect [`MAX_BYTES`].
    fn put_bytes(&mut self, bytes: &[u8]);
}

impl Writer for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("field exceeds u32 length prefix");
        self.put_u32(len);
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_little_endian() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        assert_eq!(buf[1..3], [0x34, 0x12], "u16 is little-endian");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        r.finish().unwrap();
    }

    #[test]
    fn eof_is_typed_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.u32(),
            Err(DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn forged_length_cannot_over_allocate() {
        // Declares 4 GiB of payload backed by nothing.
        let mut buf = Vec::new();
        buf.put_u32(u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.bytes("helper", MAX_BYTES),
            Err(DecodeError::LengthOutOfBounds {
                field: "helper",
                ..
            })
        ));
    }

    #[test]
    fn caps_apply_even_with_enough_bytes() {
        let mut buf = Vec::new();
        buf.put_bytes(&vec![7u8; 32]);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.bytes("nonce", 16),
            Err(DecodeError::LengthOutOfBounds { field: "nonce", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = Reader::new(&[0]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn utf8_is_validated() {
        let mut buf = Vec::new();
        buf.put_bytes(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.string("name", MAX_BYTES),
            Err(DecodeError::BadUtf8("name"))
        );
    }
}
