//! `ropuf-wire/v1` message types and their byte encodings.
//!
//! One frame carries exactly one message: a one-byte message type
//! followed by the type's fields in declaration order, all integers
//! little-endian, all variable-length fields `u32`-length-prefixed
//! (see [`codec`](crate::codec)). Requests use type bytes `0x01..`,
//! responses `0x81..`, so a stream audit can tell directions apart.
//! Decoding is strict: unknown type bytes, unknown discriminants,
//! forged lengths, truncation and trailing bytes are all typed
//! [`DecodeError`]s — never panics, never over-reads.

use crate::codec::{DecodeError, Reader, Writer, MAX_BYTES, MAX_ITEMS};

/// Protocol revision spoken by this crate. A [`Request::Hello`] with a
/// different value is answered with
/// [`ErrorCode::UnsupportedProtocol`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Human-readable name of the wire schema (mirrors the JSON schema
/// tags used by the campaign/verifier artifacts).
pub const WIRE_SCHEMA: &str = "ropuf-wire/v1";

mod ty {
    //! Message-type bytes.
    pub const HELLO: u8 = 0x01;
    pub const ENROLL: u8 = 0x02;
    pub const AUTHENTICATE: u8 = 0x03;
    pub const BATCH_AUTHENTICATE: u8 = 0x04;
    pub const QUERY_VERDICT: u8 = 0x05;
    pub const SNAPSHOT: u8 = 0x06;
    pub const SNAPSHOT_V2: u8 = 0x07;
    pub const METRICS_SNAPSHOT: u8 = 0x08;
    pub const TRACE_DUMP: u8 = 0x09;
    pub const TIMESERIES_DUMP: u8 = 0x0A;
    pub const LOOP_INFO: u8 = 0x0B;
    pub const HELLO_OK: u8 = 0x81;
    pub const ENROLL_OK: u8 = 0x82;
    pub const VERDICT: u8 = 0x83;
    pub const VERDICT_BATCH: u8 = 0x84;
    pub const FLAG_INFO: u8 = 0x85;
    pub const SNAPSHOT_TEXT: u8 = 0x86;
    pub const SNAPSHOT_BIN: u8 = 0x87;
    pub const METRICS_BIN: u8 = 0x88;
    pub const TRACE_BIN: u8 = 0x89;
    pub const TIMESERIES_BIN: u8 = 0x8A;
    pub const LOOP_INFO_OK: u8 = 0x8B;
    pub const ERROR: u8 = 0xEE;
}

/// Why a device was flagged, on the wire. Mirrors the verifier's
/// `FlagReason` without depending on it — the protocol crate stands
/// alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFlagReason {
    /// Presented helper parses but differs from the enrolled bytes.
    HelperMismatch,
    /// Presented helper no longer parses for the enrolled scheme.
    MalformedHelper,
    /// Query-rate budget exceeded.
    RateBudget,
    /// Too many consecutive failed authentications.
    FailureStreak,
}

impl WireFlagReason {
    /// Wire discriminant.
    pub fn code(self) -> u8 {
        match self {
            WireFlagReason::HelperMismatch => 0,
            WireFlagReason::MalformedHelper => 1,
            WireFlagReason::RateBudget => 2,
            WireFlagReason::FailureStreak => 3,
        }
    }

    /// Parses a wire discriminant.
    pub fn from_code(value: u8) -> Result<Self, DecodeError> {
        match value {
            0 => Ok(WireFlagReason::HelperMismatch),
            1 => Ok(WireFlagReason::MalformedHelper),
            2 => Ok(WireFlagReason::RateBudget),
            3 => Ok(WireFlagReason::FailureStreak),
            _ => Err(DecodeError::UnknownDiscriminant {
                field: "flag_reason",
                value,
            }),
        }
    }

    /// Short machine-readable label, matching the verifier's
    /// `FlagReason::label` strings.
    pub fn label(self) -> &'static str {
        match self {
            WireFlagReason::HelperMismatch => "helper-mismatch",
            WireFlagReason::MalformedHelper => "malformed-helper",
            WireFlagReason::RateBudget => "rate-budget",
            WireFlagReason::FailureStreak => "failure-streak",
        }
    }
}

/// Per-request verdict, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVerdict {
    /// The response verified and no detector tripped.
    Accept,
    /// The response did not verify — below the flagging bar.
    Reject,
    /// A detector tripped; the device is quarantined.
    Flagged(WireFlagReason),
}

impl WireVerdict {
    /// `true` for [`WireVerdict::Accept`].
    pub fn is_accept(self) -> bool {
        matches!(self, WireVerdict::Accept)
    }

    /// `true` for [`WireVerdict::Flagged`].
    pub fn is_flagged(self) -> bool {
        matches!(self, WireVerdict::Flagged(_))
    }

    fn encode(self, out: &mut Vec<u8>) {
        match self {
            WireVerdict::Accept => out.put_u8(0),
            WireVerdict::Reject => out.put_u8(1),
            WireVerdict::Flagged(reason) => {
                out.put_u8(2);
                out.put_u8(reason.code());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(WireVerdict::Accept),
            1 => Ok(WireVerdict::Reject),
            2 => Ok(WireVerdict::Flagged(WireFlagReason::from_code(r.u8()?)?)),
            value => Err(DecodeError::UnknownDiscriminant {
                field: "verdict",
                value,
            }),
        }
    }
}

/// What the authenticating device answered the nonce with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAuthResponse {
    /// Key reconstruction failed observably.
    Failure,
    /// HMAC tag over the nonce under the device's derived credential.
    Tag([u8; 32]),
}

impl WireAuthResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireAuthResponse::Failure => out.put_u8(0),
            WireAuthResponse::Tag(tag) => {
                out.put_u8(1);
                out.extend_from_slice(tag);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(WireAuthResponse::Failure),
            1 => Ok(WireAuthResponse::Tag(r.digest()?)),
            value => Err(DecodeError::UnknownDiscriminant {
                field: "auth_response",
                value,
            }),
        }
    }
}

/// One authentication attempt: the unit of both
/// [`Request::Authenticate`] and [`Request::BatchAuthenticate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthItem {
    /// Claimed device identity.
    pub device_id: u64,
    /// Logical timestamp (non-decreasing per device) driving the
    /// verifier's rate-budget window.
    pub now: u64,
    /// Challenge nonce this request answers.
    pub nonce: Vec<u8>,
    /// The device's answer.
    pub response: WireAuthResponse,
    /// The device's current helper NVM contents when the gateway can
    /// read them (`None` skips the integrity signal).
    pub presented_helper: Option<Vec<u8>>,
}

impl AuthItem {
    /// A borrowed view of this item (cheap — no byte copies).
    pub fn as_ref(&self) -> AuthItemRef<'_> {
        AuthItemRef {
            device_id: self.device_id,
            now: self.now,
            nonce: &self.nonce,
            response: self.response,
            presented_helper: self.presented_helper.as_deref(),
        }
    }
}

/// Borrowed twin of [`AuthItem`]: the byte fields point into the frame
/// payload (or a caller's buffers), so decoding one — and serving it —
/// copies nothing. Call [`AuthItemRef::to_owned`] to keep it past the
/// buffer's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthItemRef<'a> {
    /// Claimed device identity.
    pub device_id: u64,
    /// Logical timestamp (non-decreasing per device).
    pub now: u64,
    /// Challenge nonce this request answers.
    pub nonce: &'a [u8],
    /// The device's answer.
    pub response: WireAuthResponse,
    /// The device's current helper NVM contents, when readable.
    pub presented_helper: Option<&'a [u8]>,
}

impl<'a> AuthItemRef<'a> {
    /// Copies the borrowed fields into an owned [`AuthItem`].
    pub fn to_owned(&self) -> AuthItem {
        AuthItem {
            device_id: self.device_id,
            now: self.now,
            nonce: self.nonce.to_vec(),
            response: self.response,
            presented_helper: self.presented_helper.map(<[u8]>::to_vec),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u64(self.device_id);
        out.put_u64(self.now);
        out.put_bytes(self.nonce);
        self.response.encode(out);
        match self.presented_helper {
            None => out.put_u8(0),
            Some(helper) => {
                out.put_u8(1);
                out.put_bytes(helper);
            }
        }
    }

    fn decode(r: &mut Reader<'a>) -> Result<Self, DecodeError> {
        let device_id = r.u64()?;
        let now = r.u64()?;
        let nonce = r.bytes_ref("nonce", MAX_BYTES)?;
        let response = WireAuthResponse::decode(r)?;
        let presented_helper = match r.u8()? {
            0 => None,
            1 => Some(r.bytes_ref("presented_helper", MAX_BYTES)?),
            value => {
                return Err(DecodeError::UnknownDiscriminant {
                    field: "presented_helper_marker",
                    value,
                })
            }
        };
        Ok(Self {
            device_id,
            now,
            nonce,
            response,
            presented_helper,
        })
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version handshake; the first message on a connection.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        protocol: u16,
        /// Free-form client identification (UTF-8).
        client: String,
    },
    /// Enroll a device: the registry stores the derived credential,
    /// never the key.
    Enroll {
        /// Identity to enroll under.
        device_id: u64,
        /// Wire tag of the helper-data scheme.
        scheme_tag: u8,
        /// Helper blob as enrolled (integrity reference).
        helper: Vec<u8>,
        /// SHA-256 of the enrolled key bytes.
        key_digest: [u8; 32],
    },
    /// One authentication attempt.
    Authenticate(AuthItem),
    /// A batch of attempts, served under amortized shard locking.
    BatchAuthenticate {
        /// The attempts, verdicts come back in this order.
        items: Vec<AuthItem>,
    },
    /// Ask for a device's flag state.
    QueryVerdict {
        /// Device to look up.
        device_id: u64,
    },
    /// Ask for a `ropuf-verifier/v1` registry snapshot.
    Snapshot,
    /// Ask for a `ropuf-verifier/v2` binary registry snapshot (the
    /// compact, CRC-protected, flag-preserving format).
    SnapshotV2,
    /// Ask for a `ropuf-metrics/v1` telemetry snapshot covering every
    /// instrumented layer behind this connection (server + verifier).
    MetricsSnapshot,
    /// Ask for the server's slow-request trace ring as a
    /// `ropuf-trace/v1` blob.
    TraceDump,
    /// Ask for the server's retained time-series history (periodic
    /// delta snapshots) as a `ropuf-timeseries/v1` blob.
    TimeSeriesDump,
    /// Ask which event loop owns this connection. Multi-loop evented
    /// servers answer with the accepting loop's id; single-threaded
    /// backends (blocking, loopback) answer `(0, 1)`. Topology-aware
    /// clients use this to route a device's traffic to a connection on
    /// the loop that owns the device's registry shard.
    LoopInfo,
}

impl Request {
    /// A borrowed view of this request. Cheap for every variant except
    /// [`Request::BatchAuthenticate`], which allocates one small `Vec`
    /// of per-item views (never the item bytes themselves).
    pub fn as_ref(&self) -> RequestRef<'_> {
        match self {
            Request::Hello { protocol, client } => RequestRef::Hello {
                protocol: *protocol,
                client,
            },
            Request::Enroll {
                device_id,
                scheme_tag,
                helper,
                key_digest,
            } => RequestRef::Enroll {
                device_id: *device_id,
                scheme_tag: *scheme_tag,
                helper,
                key_digest: *key_digest,
            },
            Request::Authenticate(item) => RequestRef::Authenticate(item.as_ref()),
            Request::BatchAuthenticate { items } => RequestRef::BatchAuthenticate {
                items: items.iter().map(AuthItem::as_ref).collect(),
            },
            Request::QueryVerdict { device_id } => RequestRef::QueryVerdict {
                device_id: *device_id,
            },
            Request::Snapshot => RequestRef::Snapshot,
            Request::SnapshotV2 => RequestRef::SnapshotV2,
            Request::MetricsSnapshot => RequestRef::MetricsSnapshot,
            Request::TraceDump => RequestRef::TraceDump,
            Request::TimeSeriesDump => RequestRef::TimeSeriesDump,
            Request::LoopInfo => RequestRef::LoopInfo,
        }
    }

    /// Encodes into a fresh frame payload (type byte + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes into `out`, clearing it first — the buffer-reusing twin
    /// of [`Request::encode`]: a steady-state connection encodes every
    /// request into the same buffer with zero allocations. Encodes the
    /// owned fields directly (not via [`Request::as_ref`]) so even the
    /// batch variant stays allocation-free; the wire_props suite pins
    /// the two encoders byte-for-byte.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        // Only the batch variant needs its own arm: `as_ref` would
        // allocate a Vec of item views for it, while every other
        // variant borrows for free.
        if let Request::BatchAuthenticate { items } = self {
            out.clear();
            out.put_u8(ty::BATCH_AUTHENTICATE);
            let count = u32::try_from(items.len()).expect("batch exceeds u32");
            out.put_u32(count);
            for item in items {
                item.as_ref().encode(out);
            }
        } else {
            self.as_ref().encode_into(out);
        }
    }

    /// Decodes one frame payload, copying byte fields out (decode via
    /// [`RequestRef::decode`] to borrow them instead). Strict: the
    /// payload must be exactly one well-formed request.
    ///
    /// # Errors
    ///
    /// A typed [`DecodeError`] for any malformed input; this function
    /// never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        RequestRef::decode(payload).map(RequestRef::into_owned)
    }
}

/// Borrowed twin of [`Request`]: what the server hot path decodes. All
/// byte fields point into the frame payload, so decoding a request —
/// and authenticating from it — copies nothing; [`RequestRef::into_owned`]
/// is the copy-on-keep escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// See [`Request::Hello`].
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        protocol: u16,
        /// Free-form client identification (UTF-8).
        client: &'a str,
    },
    /// See [`Request::Enroll`].
    Enroll {
        /// Identity to enroll under.
        device_id: u64,
        /// Wire tag of the helper-data scheme.
        scheme_tag: u8,
        /// Helper blob as enrolled (integrity reference).
        helper: &'a [u8],
        /// SHA-256 of the enrolled key bytes.
        key_digest: [u8; 32],
    },
    /// See [`Request::Authenticate`].
    Authenticate(AuthItemRef<'a>),
    /// See [`Request::BatchAuthenticate`].
    BatchAuthenticate {
        /// The attempts, verdicts come back in this order.
        items: Vec<AuthItemRef<'a>>,
    },
    /// See [`Request::QueryVerdict`].
    QueryVerdict {
        /// Device to look up.
        device_id: u64,
    },
    /// See [`Request::Snapshot`].
    Snapshot,
    /// See [`Request::SnapshotV2`].
    SnapshotV2,
    /// See [`Request::MetricsSnapshot`].
    MetricsSnapshot,
    /// See [`Request::TraceDump`].
    TraceDump,
    /// See [`Request::TimeSeriesDump`].
    TimeSeriesDump,
    /// See [`Request::LoopInfo`].
    LoopInfo,
}

impl<'a> RequestRef<'a> {
    /// Copies every borrowed field into an owned [`Request`].
    pub fn into_owned(self) -> Request {
        match self {
            RequestRef::Hello { protocol, client } => Request::Hello {
                protocol,
                client: client.to_owned(),
            },
            RequestRef::Enroll {
                device_id,
                scheme_tag,
                helper,
                key_digest,
            } => Request::Enroll {
                device_id,
                scheme_tag,
                helper: helper.to_vec(),
                key_digest,
            },
            RequestRef::Authenticate(item) => Request::Authenticate(item.to_owned()),
            RequestRef::BatchAuthenticate { items } => Request::BatchAuthenticate {
                items: items.iter().map(AuthItemRef::to_owned).collect(),
            },
            RequestRef::QueryVerdict { device_id } => Request::QueryVerdict { device_id },
            RequestRef::Snapshot => Request::Snapshot,
            RequestRef::SnapshotV2 => Request::SnapshotV2,
            RequestRef::MetricsSnapshot => Request::MetricsSnapshot,
            RequestRef::TraceDump => Request::TraceDump,
            RequestRef::TimeSeriesDump => Request::TimeSeriesDump,
            RequestRef::LoopInfo => Request::LoopInfo,
        }
    }

    /// Encodes into `out`, clearing it first. Byte-identical to
    /// encoding the owned [`Request`] this view mirrors.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            RequestRef::Hello { protocol, client } => {
                out.put_u8(ty::HELLO);
                out.put_u16(*protocol);
                out.put_bytes(client.as_bytes());
            }
            RequestRef::Enroll {
                device_id,
                scheme_tag,
                helper,
                key_digest,
            } => {
                out.put_u8(ty::ENROLL);
                out.put_u64(*device_id);
                out.put_u8(*scheme_tag);
                out.put_bytes(helper);
                out.extend_from_slice(key_digest);
            }
            RequestRef::Authenticate(item) => {
                out.put_u8(ty::AUTHENTICATE);
                item.encode(out);
            }
            RequestRef::BatchAuthenticate { items } => {
                out.put_u8(ty::BATCH_AUTHENTICATE);
                let count = u32::try_from(items.len()).expect("batch exceeds u32");
                out.put_u32(count);
                for item in items {
                    item.encode(out);
                }
            }
            RequestRef::QueryVerdict { device_id } => {
                out.put_u8(ty::QUERY_VERDICT);
                out.put_u64(*device_id);
            }
            RequestRef::Snapshot => out.put_u8(ty::SNAPSHOT),
            RequestRef::SnapshotV2 => out.put_u8(ty::SNAPSHOT_V2),
            RequestRef::MetricsSnapshot => out.put_u8(ty::METRICS_SNAPSHOT),
            RequestRef::TraceDump => out.put_u8(ty::TRACE_DUMP),
            RequestRef::TimeSeriesDump => out.put_u8(ty::TIMESERIES_DUMP),
            RequestRef::LoopInfo => out.put_u8(ty::LOOP_INFO),
        }
    }

    /// Decodes one frame payload without copying byte fields (the
    /// batch-item list itself is the only allocation). Strictness and
    /// error behavior are identical to [`Request::decode`] — the owned
    /// decoder *is* this one plus copies.
    ///
    /// # Errors
    ///
    /// A typed [`DecodeError`] for any malformed input; this function
    /// never panics.
    pub fn decode(payload: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let request = match r.u8()? {
            ty::HELLO => RequestRef::Hello {
                protocol: r.u16()?,
                client: r.str_ref("client", MAX_BYTES)?,
            },
            ty::ENROLL => RequestRef::Enroll {
                device_id: r.u64()?,
                scheme_tag: r.u8()?,
                helper: r.bytes_ref("helper", MAX_BYTES)?,
                key_digest: r.digest()?,
            },
            ty::AUTHENTICATE => RequestRef::Authenticate(AuthItemRef::decode(&mut r)?),
            ty::BATCH_AUTHENTICATE => {
                let count = r.count("batch_items", MAX_ITEMS)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(AuthItemRef::decode(&mut r)?);
                }
                RequestRef::BatchAuthenticate { items }
            }
            ty::QUERY_VERDICT => RequestRef::QueryVerdict {
                device_id: r.u64()?,
            },
            ty::SNAPSHOT => RequestRef::Snapshot,
            ty::SNAPSHOT_V2 => RequestRef::SnapshotV2,
            ty::METRICS_SNAPSHOT => RequestRef::MetricsSnapshot,
            ty::TRACE_DUMP => RequestRef::TraceDump,
            ty::TIMESERIES_DUMP => RequestRef::TimeSeriesDump,
            ty::LOOP_INFO => RequestRef::LoopInfo,
            other => return Err(DecodeError::UnknownMessage(other)),
        };
        r.finish()?;
        Ok(request)
    }
}

/// Typed failure a server reports instead of a success response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Hello carried a protocol version this server does not speak.
    UnsupportedProtocol,
    /// Enroll named an id that is already enrolled.
    DuplicateDevice,
    /// The named device is not enrolled (flag queries only —
    /// authentication deliberately answers `Reject` instead, so the
    /// wire does not reveal enrollment status to guessers).
    UnknownDevice,
    /// The device is quarantined: its detector flagged it, and the
    /// flag latches. Carried by the wire-level rejection of further
    /// single-authentication traffic.
    DeviceFlagged,
    /// The frame decoded to no valid request.
    MalformedRequest,
    /// The server produced a response that exceeds the frame cap
    /// (e.g. a registry snapshot past `MAX_FRAME`); the request was
    /// served but the answer cannot travel this protocol revision.
    ResponseTooLarge,
    /// The server could not serve a well-formed request for an
    /// internal reason — e.g. its durable write-ahead log rejected an
    /// enrollment. The request was **not** applied; retrying is safe.
    Internal,
    /// Admission control shed the request before it was handled: the
    /// server is over its in-flight/out-buffer budget. The request was
    /// **not** applied. The detail carries `retry_after_ms=<n>` (see
    /// [`overload_detail`] / [`parse_retry_after_ms`]); clients should
    /// back off at least that long before retrying.
    Overloaded,
    /// The server latched its read-only degraded mode (durable WAL
    /// append/fsync failed): authentications keep serving from memory,
    /// but mutations (enrollments) are refused until an operator
    /// intervenes. The request was **not** applied; retrying against
    /// this server will keep answering `ReadOnly`.
    ReadOnly,
}

impl ErrorCode {
    /// Wire discriminant.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::UnsupportedProtocol => 1,
            ErrorCode::DuplicateDevice => 2,
            ErrorCode::UnknownDevice => 3,
            ErrorCode::DeviceFlagged => 4,
            ErrorCode::MalformedRequest => 5,
            ErrorCode::ResponseTooLarge => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Overloaded => 8,
            ErrorCode::ReadOnly => 9,
        }
    }

    /// Parses a wire discriminant.
    pub fn from_code(value: u8) -> Result<Self, DecodeError> {
        match value {
            1 => Ok(ErrorCode::UnsupportedProtocol),
            2 => Ok(ErrorCode::DuplicateDevice),
            3 => Ok(ErrorCode::UnknownDevice),
            4 => Ok(ErrorCode::DeviceFlagged),
            5 => Ok(ErrorCode::MalformedRequest),
            6 => Ok(ErrorCode::ResponseTooLarge),
            7 => Ok(ErrorCode::Internal),
            8 => Ok(ErrorCode::Overloaded),
            9 => Ok(ErrorCode::ReadOnly),
            _ => Err(DecodeError::UnknownDiscriminant {
                field: "error_code",
                value,
            }),
        }
    }
}

/// The detail string an [`ErrorCode::Overloaded`] answer carries:
/// `retry_after_ms=<n>`. Kept as plain text inside the existing error
/// frame so ropuf-wire/v1 parsers that ignore details stay compatible;
/// [`parse_retry_after_ms`] is the typed reader.
pub fn overload_detail(retry_after_ms: u32) -> String {
    format!("retry_after_ms={retry_after_ms}")
}

/// Parses the `retry_after_ms=<n>` detail of an
/// [`ErrorCode::Overloaded`] answer. `None` when the detail does not
/// carry a well-formed hint — callers fall back to their own backoff.
pub fn parse_retry_after_ms(detail: &str) -> Option<u32> {
    let value = detail.strip_prefix("retry_after_ms=")?;
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    value.parse().ok()
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful handshake.
    HelloOk {
        /// Server's [`PROTOCOL_VERSION`].
        protocol: u16,
        /// Free-form server identification (UTF-8).
        server: String,
    },
    /// The enrollment was recorded.
    EnrollOk {
        /// Echo of the enrolled id.
        device_id: u64,
    },
    /// Verdict for one [`Request::Authenticate`].
    Verdict(WireVerdict),
    /// Verdicts for one [`Request::BatchAuthenticate`], in item order.
    VerdictBatch(Vec<WireVerdict>),
    /// Answer to [`Request::QueryVerdict`].
    FlagInfo {
        /// `(timestamp, reason)` of the first flag; `None` when the
        /// device is enrolled and unflagged.
        flagged: Option<(u64, WireFlagReason)>,
    },
    /// A `ropuf-verifier/v1` registry snapshot.
    SnapshotText {
        /// The snapshot JSON document.
        json: String,
    },
    /// A `ropuf-verifier/v2` binary registry snapshot. The payload is
    /// opaque to the wire layer — it is the self-validating (magic +
    /// version + CRC) blob the verifier's store module defines.
    SnapshotBin {
        /// The snapshot bytes.
        bytes: Vec<u8>,
    },
    /// A `ropuf-metrics/v1` telemetry snapshot. Opaque to the wire
    /// layer, like [`Response::SnapshotBin`]: the blob carries its own
    /// magic, version and CRC (see `ropuf_telemetry::codec`).
    MetricsBin {
        /// The metrics blob.
        bytes: Vec<u8>,
    },
    /// A `ropuf-trace/v1` slow-request trace dump, equally opaque.
    TraceBin {
        /// The trace blob.
        bytes: Vec<u8>,
    },
    /// A `ropuf-timeseries/v1` retained-history dump, equally opaque.
    TimeSeriesBin {
        /// The time-series blob.
        bytes: Vec<u8>,
    },
    /// Answer to [`Request::LoopInfo`]: which event loop serves this
    /// connection, out of how many.
    LoopInfoOk {
        /// Id of the loop that owns this connection (`0`-based).
        loop_id: u32,
        /// Total event loops the server runs (`1` for single-threaded
        /// backends).
        loops: u32,
    },
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (UTF-8, for logs — codes are the
        /// contract).
        detail: String,
    },
}

impl Response {
    /// Encodes into a fresh frame payload (type byte + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes into `out`, clearing it first — the buffer-reusing twin
    /// of [`Response::encode`] the server workers answer through.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            Response::HelloOk { protocol, server } => {
                out.put_u8(ty::HELLO_OK);
                out.put_u16(*protocol);
                out.put_bytes(server.as_bytes());
            }
            Response::EnrollOk { device_id } => {
                out.put_u8(ty::ENROLL_OK);
                out.put_u64(*device_id);
            }
            Response::Verdict(verdict) => {
                out.put_u8(ty::VERDICT);
                verdict.encode(out);
            }
            Response::VerdictBatch(verdicts) => {
                out.put_u8(ty::VERDICT_BATCH);
                let count = u32::try_from(verdicts.len()).expect("batch exceeds u32");
                out.put_u32(count);
                for v in verdicts {
                    v.encode(out);
                }
            }
            Response::FlagInfo { flagged } => {
                out.put_u8(ty::FLAG_INFO);
                match flagged {
                    None => out.put_u8(0),
                    Some((at, reason)) => {
                        out.put_u8(1);
                        out.put_u64(*at);
                        out.put_u8(reason.code());
                    }
                }
            }
            Response::SnapshotText { json } => {
                out.put_u8(ty::SNAPSHOT_TEXT);
                out.put_bytes(json.as_bytes());
            }
            Response::SnapshotBin { bytes } => {
                out.put_u8(ty::SNAPSHOT_BIN);
                out.put_bytes(bytes);
            }
            Response::MetricsBin { bytes } => {
                out.put_u8(ty::METRICS_BIN);
                out.put_bytes(bytes);
            }
            Response::TraceBin { bytes } => {
                out.put_u8(ty::TRACE_BIN);
                out.put_bytes(bytes);
            }
            Response::TimeSeriesBin { bytes } => {
                out.put_u8(ty::TIMESERIES_BIN);
                out.put_bytes(bytes);
            }
            Response::LoopInfoOk { loop_id, loops } => {
                out.put_u8(ty::LOOP_INFO_OK);
                out.put_u32(*loop_id);
                out.put_u32(*loops);
            }
            Response::Error { code, detail } => {
                out.put_u8(ty::ERROR);
                out.put_u8(code.code());
                out.put_bytes(detail.as_bytes());
            }
        }
    }

    /// Decodes one frame payload. Strict, like [`Request::decode`].
    ///
    /// # Errors
    ///
    /// A typed [`DecodeError`] for any malformed input; this function
    /// never panics.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let response = match r.u8()? {
            ty::HELLO_OK => Response::HelloOk {
                protocol: r.u16()?,
                server: r.string("server", MAX_BYTES)?,
            },
            ty::ENROLL_OK => Response::EnrollOk {
                device_id: r.u64()?,
            },
            ty::VERDICT => Response::Verdict(WireVerdict::decode(&mut r)?),
            ty::VERDICT_BATCH => {
                let count = r.count("batch_verdicts", MAX_ITEMS)?;
                let mut verdicts = Vec::with_capacity(count);
                for _ in 0..count {
                    verdicts.push(WireVerdict::decode(&mut r)?);
                }
                Response::VerdictBatch(verdicts)
            }
            ty::FLAG_INFO => Response::FlagInfo {
                flagged: match r.u8()? {
                    0 => None,
                    1 => Some((r.u64()?, WireFlagReason::from_code(r.u8()?)?)),
                    value => {
                        return Err(DecodeError::UnknownDiscriminant {
                            field: "flag_marker",
                            value,
                        })
                    }
                },
            },
            ty::SNAPSHOT_TEXT => Response::SnapshotText {
                // Snapshots may legitimately exceed MAX_BYTES; the
                // frame-size cap is the allocation bound here.
                json: r.string("snapshot", crate::frame::MAX_FRAME as usize)?,
            },
            ty::SNAPSHOT_BIN => Response::SnapshotBin {
                bytes: r.bytes("snapshot_v2", crate::frame::MAX_FRAME as usize)?,
            },
            ty::METRICS_BIN => Response::MetricsBin {
                bytes: r.bytes("metrics", crate::frame::MAX_FRAME as usize)?,
            },
            ty::TRACE_BIN => Response::TraceBin {
                bytes: r.bytes("trace", crate::frame::MAX_FRAME as usize)?,
            },
            ty::TIMESERIES_BIN => Response::TimeSeriesBin {
                bytes: r.bytes("timeseries", crate::frame::MAX_FRAME as usize)?,
            },
            ty::LOOP_INFO_OK => Response::LoopInfoOk {
                loop_id: r.u32()?,
                loops: r.u32()?,
            },
            ty::ERROR => Response::Error {
                code: ErrorCode::from_code(r.u8()?)?,
                detail: r.string("detail", MAX_BYTES)?,
            },
            other => return Err(DecodeError::UnknownMessage(other)),
        };
        r.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_item() -> AuthItem {
        AuthItem {
            device_id: 42,
            now: 7,
            nonce: b"nonce-0".to_vec(),
            response: WireAuthResponse::Tag([9; 32]),
            presented_helper: Some(vec![0x4C, 1, 2, 3]),
        }
    }

    #[test]
    fn every_request_roundtrips() {
        let requests = vec![
            Request::Hello {
                protocol: PROTOCOL_VERSION,
                client: "loadgen".into(),
            },
            Request::Enroll {
                device_id: 5,
                scheme_tag: b'L',
                helper: vec![1, 2, 3],
                key_digest: [7; 32],
            },
            Request::Authenticate(sample_item()),
            Request::BatchAuthenticate {
                items: vec![
                    sample_item(),
                    AuthItem {
                        presented_helper: None,
                        response: WireAuthResponse::Failure,
                        ..sample_item()
                    },
                ],
            },
            Request::QueryVerdict { device_id: 1 },
            Request::Snapshot,
            Request::SnapshotV2,
            Request::MetricsSnapshot,
            Request::TraceDump,
            Request::TimeSeriesDump,
            Request::LoopInfo,
        ];
        for request in requests {
            let bytes = request.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn every_response_roundtrips() {
        let responses = vec![
            Response::HelloOk {
                protocol: 1,
                server: "ropuf-server".into(),
            },
            Response::EnrollOk { device_id: 9 },
            Response::Verdict(WireVerdict::Accept),
            Response::Verdict(WireVerdict::Flagged(WireFlagReason::RateBudget)),
            Response::VerdictBatch(vec![
                WireVerdict::Accept,
                WireVerdict::Reject,
                WireVerdict::Flagged(WireFlagReason::HelperMismatch),
            ]),
            Response::FlagInfo { flagged: None },
            Response::FlagInfo {
                flagged: Some((77, WireFlagReason::FailureStreak)),
            },
            Response::SnapshotText {
                json: "{\"schema\": \"ropuf-verifier/v1\"}".into(),
            },
            Response::SnapshotBin {
                bytes: b"RPUFSNP2\x02\x00rest-is-opaque-here".to_vec(),
            },
            Response::MetricsBin {
                bytes: b"RPUFMET1\x01\x00opaque-to-this-layer".to_vec(),
            },
            Response::TraceBin {
                bytes: b"RPUFTRC1\x01\x00opaque-to-this-layer".to_vec(),
            },
            Response::TimeSeriesBin {
                bytes: b"RPUFTSR1\x01\x00opaque-to-this-layer".to_vec(),
            },
            Response::LoopInfoOk {
                loop_id: 3,
                loops: 4,
            },
            Response::Error {
                code: ErrorCode::DeviceFlagged,
                detail: "quarantined".into(),
            },
        ];
        for response in responses {
            let bytes = response.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn unknown_type_bytes_are_typed_errors() {
        assert_eq!(
            Request::decode(&[0x7F]),
            Err(DecodeError::UnknownMessage(0x7F))
        );
        assert_eq!(
            Response::decode(&[0x02, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(DecodeError::UnknownMessage(0x02)),
            "request bytes are not valid responses"
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Snapshot.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn forged_batch_count_is_rejected_before_allocation() {
        let mut bytes = vec![0x04]; // BatchAuthenticate
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes),
            Err(DecodeError::LengthOutOfBounds {
                field: "batch_items",
                ..
            })
        ));
    }

    #[test]
    fn error_code_discriminants_are_stable() {
        for code in [
            ErrorCode::UnsupportedProtocol,
            ErrorCode::DuplicateDevice,
            ErrorCode::UnknownDevice,
            ErrorCode::DeviceFlagged,
            ErrorCode::MalformedRequest,
            ErrorCode::ResponseTooLarge,
            ErrorCode::Internal,
            ErrorCode::Overloaded,
            ErrorCode::ReadOnly,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Ok(code));
        }
        assert!(ErrorCode::from_code(0).is_err());
        assert!(ErrorCode::from_code(10).is_err());
        assert!(ErrorCode::from_code(99).is_err());
    }

    #[test]
    fn overload_detail_roundtrips() {
        assert_eq!(parse_retry_after_ms(&overload_detail(0)), Some(0));
        assert_eq!(parse_retry_after_ms(&overload_detail(25)), Some(25));
        assert_eq!(
            parse_retry_after_ms(&overload_detail(u32::MAX)),
            Some(u32::MAX)
        );
        assert_eq!(parse_retry_after_ms(""), None);
        assert_eq!(parse_retry_after_ms("retry_after_ms="), None);
        assert_eq!(parse_retry_after_ms("retry_after_ms=12x"), None);
        assert_eq!(parse_retry_after_ms("shed class=scrape"), None);
    }
}
