//! Deterministic fault injection at the byte-stream layer.
//!
//! Chaos testing is only trustworthy when every run replays
//! bit-for-bit: a failure found at seed `S` must reproduce at seed `S`
//! forever. This module provides that determinism for the transport:
//! a [`FaultPlan`] is a SplitMix64-driven schedule of byte-stream
//! misbehavior, and a [`FaultyStream`] applies it to any
//! `Read`/`Write` pair — short reads and writes (re-chunking the
//! stream arbitrarily), injected delays, and connection resets. The
//! framing layer ([`crate::frame`]) is proven chunking-invariant, so
//! partial I/O alone never changes what decodes; resets and delays are
//! what exercise the retry and deadline machinery above.
//!
//! The plan draws one decision per I/O operation from its own
//! generator, so the fault sequence depends only on `(seed, rates,
//! operation index)` — never on wall-clock time or scheduling. Two
//! streams never share a plan; derive per-stream seeds with
//! [`derive_seed`].
//!
//! Injected faults are counted in a shared [`FaultStats`] so harnesses
//! can report `faults.injected{kind}` next to their success rates.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Rate denominator: a fault configured at rate `r` fires on a given
/// operation with probability `r / 65536` (drawn deterministically
/// from the plan's generator).
pub const RATE_ONE: u32 = 1 << 16;

/// SplitMix64 — the same generator the rest of the workspace seeds
/// with, reimplemented locally so the wire crate stays dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a per-stream fault seed from a master seed, so one chaos
/// run's connections each replay their own deterministic schedule.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_add(0xC0FF_EE)))
}

/// Everything a [`FaultPlan`] injected, counted by kind. Shared
/// (`Arc`) between the streams of one chaos run and its reporter.
#[derive(Debug, Default)]
pub struct FaultStats {
    partial_reads: AtomicU64,
    partial_writes: AtomicU64,
    delays: AtomicU64,
    resets: AtomicU64,
}

impl FaultStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(kind, count)` pairs in a fixed order — the
    /// `faults.injected{kind}` feed.
    pub fn snapshot(&self) -> [(&'static str, u64); 4] {
        [
            ("partial_read", self.partial_reads.load(Ordering::Relaxed)),
            ("partial_write", self.partial_writes.load(Ordering::Relaxed)),
            ("delay", self.delays.load(Ordering::Relaxed)),
            ("reset", self.resets.load(Ordering::Relaxed)),
        ]
    }

    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.snapshot().iter().map(|(_, n)| n).sum()
    }

    /// Injected connection resets.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }
}

/// What the plan decided for one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    /// Pass the operation through untouched.
    None,
    /// Deliver/accept at most this many bytes.
    Partial(usize),
    /// Sleep this long, then pass through.
    Delay(Duration),
    /// Fail with `ConnectionReset`; the stream is dead afterwards.
    Reset,
}

/// A seeded, fully deterministic schedule of byte-stream faults.
///
/// A fresh plan injects nothing; enable fault families with the
/// `with_*` builders. Random-rate faults draw from the plan's own
/// SplitMix64 stream (one draw per operation); the `*_reset_at`
/// builders additionally pin a reset to an exact operation index —
/// the surgical tool equivalence tests use to kill a connection at a
/// known, replayable point.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    partial_rate: u32,
    delay_rate: u32,
    delay: Duration,
    reset_rate: u32,
    read_reset_at: Option<u64>,
    write_reset_at: Option<u64>,
    read_ops: u64,
    write_ops: u64,
    dead: bool,
    stats: Option<Arc<FaultStats>>,
}

impl FaultPlan {
    /// A plan that injects nothing until faults are enabled.
    pub fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(seed),
            partial_rate: 0,
            delay_rate: 0,
            delay: Duration::from_micros(100),
            reset_rate: 0,
            read_reset_at: None,
            write_reset_at: None,
            read_ops: 0,
            write_ops: 0,
            dead: false,
            stats: None,
        }
    }

    /// Truncates reads and writes to 1–8 bytes at `rate` / [`RATE_ONE`].
    pub fn with_partial_io(mut self, rate: u32) -> Self {
        self.partial_rate = rate.min(RATE_ONE);
        self
    }

    /// Sleeps `delay` before an operation at `rate` / [`RATE_ONE`].
    pub fn with_delays(mut self, rate: u32, delay: Duration) -> Self {
        self.delay_rate = rate.min(RATE_ONE);
        self.delay = delay;
        self
    }

    /// Resets the connection at `rate` / [`RATE_ONE`] per operation
    /// (read and write alike). After a reset every further operation
    /// fails — the stream is dead, exactly like a real torn socket.
    pub fn with_resets(mut self, rate: u32) -> Self {
        self.reset_rate = rate.min(RATE_ONE);
        self
    }

    /// Pins a reset to the `nth` read operation (0-based).
    pub fn with_read_reset_at(mut self, nth: u64) -> Self {
        self.read_reset_at = Some(nth);
        self
    }

    /// Pins a reset to the `nth` write operation (0-based).
    pub fn with_write_reset_at(mut self, nth: u64) -> Self {
        self.write_reset_at = Some(nth);
        self
    }

    /// Counts every injected fault into `stats`.
    pub fn with_stats(mut self, stats: Arc<FaultStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// `true` once this plan has injected a reset.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn draw(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    fn count(&self, bump: impl Fn(&FaultStats) -> &AtomicU64) {
        if let Some(stats) = &self.stats {
            bump(stats).fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Decides the fault (if any) for the next operation. One draw per
    /// operation keeps the schedule a pure function of the seed and
    /// the operation index.
    fn decide(&mut self, is_read: bool) -> FaultAction {
        if self.dead {
            return FaultAction::Reset;
        }
        let op = if is_read {
            let op = self.read_ops;
            self.read_ops += 1;
            op
        } else {
            let op = self.write_ops;
            self.write_ops += 1;
            op
        };
        let pinned = if is_read {
            self.read_reset_at
        } else {
            self.write_reset_at
        };
        let roll = self.draw();
        if pinned == Some(op) {
            self.dead = true;
            return FaultAction::Reset;
        }
        // Three independent 16-bit lanes of one draw: reset wins over
        // delay wins over partial, so rates compose predictably.
        if (roll & 0xFFFF) < u64::from(self.reset_rate) {
            self.dead = true;
            return FaultAction::Reset;
        }
        if ((roll >> 16) & 0xFFFF) < u64::from(self.delay_rate) {
            return FaultAction::Delay(self.delay);
        }
        if ((roll >> 32) & 0xFFFF) < u64::from(self.partial_rate) {
            return FaultAction::Partial(1 + ((roll >> 48) & 0x7) as usize);
        }
        FaultAction::None
    }
}

/// The reset error every injected connection death surfaces as.
fn reset_error() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
}

/// A `Read`/`Write` wrapper that misbehaves on the [`FaultPlan`]'s
/// schedule: short reads/writes, delays, and resets. Wrap a client's
/// `TcpStream` (or any in-memory stream in tests) and drive traffic
/// through it unchanged — the plan decides where reality bends.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self { inner, plan }
    }

    /// The wrapped stream (e.g. to set socket options).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The plan's current state (e.g. [`FaultPlan::is_dead`]).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.plan.decide(true) {
            FaultAction::Reset => {
                self.plan.count(|s| &s.resets);
                Err(reset_error())
            }
            FaultAction::Delay(d) => {
                self.plan.count(|s| &s.delays);
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            FaultAction::Partial(n) => {
                self.plan.count(|s| &s.partial_reads);
                let cap = n.min(buf.len()).max(1).min(buf.len());
                self.inner.read(&mut buf[..cap])
            }
            FaultAction::None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.plan.decide(false) {
            FaultAction::Reset => {
                self.plan.count(|s| &s.resets);
                Err(reset_error())
            }
            FaultAction::Delay(d) => {
                self.plan.count(|s| &s.delays);
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            FaultAction::Partial(n) => {
                self.plan.count(|s| &s.partial_writes);
                let cap = n.min(buf.len()).max(1).min(buf.len().max(1));
                if buf.is_empty() {
                    self.inner.write(buf)
                } else {
                    self.inner.write(&buf[..cap])
                }
            }
            FaultAction::None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.plan.dead {
            return Err(reset_error());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_plan_is_transparent() {
        let data = b"hello fault layer".to_vec();
        let mut stream = FaultyStream::new(&data[..], FaultPlan::new(7));
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);

        let mut sink = Vec::new();
        let mut stream = FaultyStream::new(&mut sink, FaultPlan::new(7));
        stream.write_all(&data).unwrap();
        stream.flush().unwrap();
        assert_eq!(sink, data);
    }

    #[test]
    fn schedules_replay_bit_for_bit() {
        // Two plans from the same seed make identical decisions.
        let mk = || {
            FaultPlan::new(42)
                .with_partial_io(RATE_ONE / 2)
                .with_resets(RATE_ONE / 64)
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..512 {
            let is_read = i % 3 != 0;
            assert_eq!(a.decide(is_read), b.decide(is_read), "op {i}");
        }
        // A different seed diverges somewhere.
        let mut c = FaultPlan::new(43)
            .with_partial_io(RATE_ONE / 2)
            .with_resets(RATE_ONE / 64);
        let mut a = mk();
        let diverged = (0..512).any(|_| a.decide(true) != c.decide(true));
        assert!(diverged, "seeds 42 and 43 never diverged in 512 ops");
    }

    #[test]
    fn partial_io_still_delivers_everything() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let plan = FaultPlan::new(9).with_partial_io(RATE_ONE);
        let mut stream = FaultyStream::new(&data[..], plan);
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, data, "short reads reorder nothing");

        let mut sink = Vec::new();
        let plan = FaultPlan::new(9).with_partial_io(RATE_ONE);
        let mut stream = FaultyStream::new(&mut sink, plan);
        stream.write_all(&data).unwrap();
        assert_eq!(sink, data, "short writes reorder nothing");
    }

    #[test]
    fn pinned_reset_kills_the_stream_at_the_exact_op() {
        let data = vec![0xAB; 64];
        let stats = Arc::new(FaultStats::new());
        let plan = FaultPlan::new(1)
            .with_read_reset_at(2)
            .with_stats(Arc::clone(&stats));
        let mut stream = FaultyStream::new(&data[..], plan);
        let mut buf = [0u8; 8];
        stream.read_exact(&mut buf).unwrap(); // op 0
        stream.read_exact(&mut buf).unwrap(); // op 1
        let err = stream.read(&mut buf).unwrap_err(); // op 2: reset
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(stream.plan().is_dead());
        // Dead means dead: every further op fails too, writes included.
        assert!(stream.read(&mut buf).is_err());
        assert_eq!(stats.resets(), 2);
        assert_eq!(stats.total(), stats.resets());
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1000, 0);
        let b = derive_seed(1000, 1);
        let again = derive_seed(1000, 0);
        assert_eq!(a, again, "derivation is a pure function");
        assert_ne!(a, b, "stream ids get distinct schedules");
    }
}
