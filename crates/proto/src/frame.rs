//! Length-framed streaming over `std::io`.
//!
//! A frame is `[length: u32 le][payload: length bytes]`; the payload
//! is exactly one encoded message. [`FrameReader`] / [`FrameWriter`]
//! turn any `Read`/`Write` pair (a `TcpStream`, a pipe, an in-memory
//! buffer) into a message stream. The length prefix is capped at
//! [`MAX_FRAME`] **before** any allocation, so a hostile peer cannot
//! make the reader balloon; a clean EOF *between* frames is a normal
//! end-of-stream ([`FrameReader::read_request`] returns `Ok(None)`),
//! while EOF *inside* a frame is an error.

use std::io::{self, Read, Write};

use crate::codec::DecodeError;
use crate::message::{Request, RequestRef, Response};

/// Largest frame a peer may declare (4 MiB): comfortably above any
/// real message — the largest are registry snapshots — while bounding
/// what a forged length can allocate.
pub const MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Largest capacity the reused frame scratch buffers retain between
/// frames (64 KiB, comfortably above every routine message). One
/// oversized frame — a multi-megabyte snapshot, or a hostile peer
/// deliberately sending `MAX_FRAME` bytes — may grow a buffer to 4
/// MiB for that frame, but the capacity is released afterwards instead
/// of staying pinned for the connection's lifetime. Exported so every
/// layer reusing message buffers (client encode scratch, loopback
/// response scratch) applies the same bound.
pub const SCRATCH_RETAIN: usize = 64 * 1024;

/// Caps a scratch buffer's retained capacity at [`SCRATCH_RETAIN`]
/// (contents past the bound are discarded — call between messages,
/// not while the buffer holds live data).
pub fn bound_scratch(buf: &mut Vec<u8>) {
    if buf.capacity() > SCRATCH_RETAIN {
        buf.truncate(SCRATCH_RETAIN);
        buf.shrink_to(SCRATCH_RETAIN);
    }
}

/// Streaming failure: transport, framing, or message decoding.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes EOF mid-frame).
    Io(io::Error),
    /// The peer declared a frame larger than [`MAX_FRAME`].
    Oversize(u32),
    /// The frame arrived intact but its payload is not a well-formed
    /// message.
    Decode(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::Oversize(n) => {
                write!(f, "peer declared a {n}-byte frame (cap {MAX_FRAME})")
            }
            FrameError::Decode(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

impl FrameError {
    /// `true` when the failure is a malformed frame/message from the
    /// peer (worth answering with a typed wire error) rather than a
    /// dead transport.
    pub fn is_peer_fault(&self) -> bool {
        matches!(self, FrameError::Oversize(_) | FrameError::Decode(_))
    }
}

/// Reads length-prefixed message frames from any [`Read`].
///
/// The reader owns a payload scratch buffer that every
/// `read_request`/`read_response`/`read_request_ref` call reuses, so a
/// steady-state connection reads frames with zero allocations.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    scratch: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }

    /// Reads one raw frame payload into `buf` (cleared first, capacity
    /// reused); `Ok(false)` on clean EOF between frames.
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] on transport failure or EOF mid-frame,
    /// [`FrameError::Oversize`] on a forged length prefix (checked
    /// **before** the buffer grows).
    pub fn read_frame_into(&mut self, buf: &mut Vec<u8>) -> Result<bool, FrameError> {
        // Release capacity a previous oversized frame may have pinned;
        // the buffer is refilled below regardless.
        bound_scratch(buf);
        let mut len_bytes = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut len_bytes)? {
            false => return Ok(false),
            true => {}
        }
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME {
            return Err(FrameError::Oversize(len));
        }
        buf.clear();
        buf.resize(len as usize, 0);
        self.inner.read_exact(buf)?;
        Ok(true)
    }

    /// Reads one raw frame payload; `Ok(None)` on clean EOF between
    /// frames. Allocating twin of [`FrameReader::read_frame_into`].
    ///
    /// # Errors
    ///
    /// See [`FrameReader::read_frame_into`].
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let mut payload = Vec::new();
        match self.read_frame_into(&mut payload)? {
            true => Ok(Some(payload)),
            false => Ok(None),
        }
    }

    /// Reads and decodes one [`Request`]; `Ok(None)` on clean EOF. The
    /// frame buffer is reused across calls; the decoded request owns
    /// its bytes.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; malformed payloads are
    /// [`FrameError::Decode`], never a panic.
    pub fn read_request(&mut self) -> Result<Option<Request>, FrameError> {
        // Restore the scratch before propagating any error, so a bad
        // frame doesn't silently forfeit the buffer's capacity.
        let mut scratch = std::mem::take(&mut self.scratch);
        let have = self.read_frame_into(&mut scratch);
        self.scratch = scratch;
        match have? {
            false => Ok(None),
            true => Ok(Some(Request::decode(&self.scratch)?)),
        }
    }

    /// Reads and decodes one [`RequestRef`] borrowing from the reader's
    /// internal frame buffer; `Ok(None)` on clean EOF. The zero-copy
    /// server path: frame read and decode both reuse buffers, so
    /// serving a request allocates nothing on its way in.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; malformed payloads are
    /// [`FrameError::Decode`], never a panic.
    pub fn read_request_ref(&mut self) -> Result<Option<RequestRef<'_>>, FrameError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let have = self.read_frame_into(&mut scratch);
        self.scratch = scratch;
        match have? {
            false => Ok(None),
            true => Ok(Some(RequestRef::decode(&self.scratch)?)),
        }
    }

    /// Reads and decodes one [`Response`]; `Ok(None)` on clean EOF. The
    /// frame buffer is reused across calls; the decoded response owns
    /// its bytes.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; malformed payloads are
    /// [`FrameError::Decode`], never a panic.
    pub fn read_response(&mut self) -> Result<Option<Response>, FrameError> {
        // Same restore-before-`?` dance as `read_request`.
        let mut scratch = std::mem::take(&mut self.scratch);
        let have = self.read_frame_into(&mut scratch);
        self.scratch = scratch;
        match have? {
            false => Ok(None),
            true => Ok(Some(Response::decode(&self.scratch)?)),
        }
    }
}

/// Fills `buf` completely, distinguishing clean EOF before the first
/// byte (`Ok(false)`) from EOF mid-read (an error).
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<bool, io::Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended {filled} bytes into a frame header"),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes length-prefixed message frames to any [`Write`].
///
/// The writer owns an encode scratch buffer that every
/// `write_request`/`write_response` call reuses, so a steady-state
/// connection writes frames with zero allocations.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }

    /// Writes one raw payload as a frame and flushes.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversize`] when the payload exceeds [`MAX_FRAME`]
    /// (nothing is written), [`FrameError::Io`] on transport failure.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&n| n <= MAX_FRAME)
            .ok_or(FrameError::Oversize(
                payload.len().min(u32::MAX as usize) as u32
            ))?;
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(payload)?;
        self.inner.flush()?;
        Ok(())
    }

    /// Encodes and writes one [`Request`], reusing the writer's encode
    /// buffer.
    ///
    /// # Errors
    ///
    /// See [`FrameWriter::write_frame`].
    pub fn write_request(&mut self, request: &Request) -> Result<(), FrameError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        request.encode_into(&mut scratch);
        let result = self.write_frame(&scratch);
        bound_scratch(&mut scratch);
        self.scratch = scratch;
        result
    }

    /// Encodes and writes one [`Response`], reusing the writer's encode
    /// buffer.
    ///
    /// # Errors
    ///
    /// See [`FrameWriter::write_frame`].
    pub fn write_response(&mut self, response: &Response) -> Result<(), FrameError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        response.encode_into(&mut scratch);
        let result = self.write_frame(&scratch);
        bound_scratch(&mut scratch);
        self.scratch = scratch;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ErrorCode, WireVerdict, PROTOCOL_VERSION};

    #[test]
    fn frames_stream_through_a_buffer() {
        let mut wire = Vec::new();
        {
            let mut w = FrameWriter::new(&mut wire);
            w.write_request(&Request::Hello {
                protocol: PROTOCOL_VERSION,
                client: "t".into(),
            })
            .unwrap();
            w.write_request(&Request::Snapshot).unwrap();
        }
        let mut r = FrameReader::new(&wire[..]);
        assert!(matches!(
            r.read_request().unwrap(),
            Some(Request::Hello { .. })
        ));
        assert_eq!(r.read_request().unwrap(), Some(Request::Snapshot));
        assert_eq!(r.read_request().unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn responses_stream_too() {
        let mut wire = Vec::new();
        FrameWriter::new(&mut wire)
            .write_response(&Response::Verdict(WireVerdict::Accept))
            .unwrap();
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(
            r.read_response().unwrap(),
            Some(Response::Verdict(WireVerdict::Accept))
        );
    }

    #[test]
    fn truncated_frame_is_an_io_error_not_a_hang_or_panic() {
        let mut wire = Vec::new();
        FrameWriter::new(&mut wire)
            .write_response(&Response::Error {
                code: ErrorCode::MalformedRequest,
                detail: "x".into(),
            })
            .unwrap();
        for cut in 1..wire.len() {
            let mut r = FrameReader::new(&wire[..cut]);
            assert!(
                matches!(r.read_response(), Err(FrameError::Io(_))),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversize_header_rejected_before_allocation() {
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = FrameReader::new(&huge[..]);
        assert!(matches!(r.read_frame(), Err(FrameError::Oversize(_))));
    }

    #[test]
    fn oversize_payload_refused_on_write() {
        let mut sink = Vec::new();
        let mut w = FrameWriter::new(&mut sink);
        let too_big = vec![0u8; MAX_FRAME as usize + 1];
        assert!(matches!(
            w.write_frame(&too_big),
            Err(FrameError::Oversize(_))
        ));
        assert!(sink.is_empty(), "nothing half-written");
    }

    #[test]
    fn peer_fault_classification() {
        assert!(FrameError::Oversize(9).is_peer_fault());
        assert!(FrameError::Decode(DecodeError::UnknownMessage(0)).is_peer_fault());
        assert!(!FrameError::Io(io::Error::other("x")).is_peer_fault());
    }
}
